"""Shared helpers for the figure benchmarks."""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
