"""Shared helpers for the figure benchmarks.

Besides the ``publish`` text series, every passing bench test is journaled
through :class:`repro.obs.BenchJournal` into ``BENCH_figures.json`` at the
repo root — one JSON line per test per run (elapsed wall-clock plus the
metric deltas observed: full scans, region reads, model fits), so successive
PRs accumulate a timing trajectory instead of overwriting a single number.
Records carry the run identity (``run_id``, git sha, hostname, python — see
:mod:`repro.obs.runinfo`) plus the worker count, so
``python -m repro.obs sentinel`` can group and baseline them per run.
"""

import time
from pathlib import Path

import pytest

from repro.exec import get_default_config
from repro.obs import BenchJournal, get_registry

RESULTS_DIR = Path(__file__).parent / "results"

_JOURNAL = BenchJournal(Path(__file__).parent.parent / "BENCH_figures.json")


def publish(name: str, text: str) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def pytest_collection_modifyitems(items):
    """Every test under benchmarks/ carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call":
        item._obs_call_report = report


@pytest.fixture(autouse=True)
def _journal_bench(request):
    """Journal each bench test: elapsed time + metric deltas while it ran."""
    registry = get_registry()
    before = registry.as_dict()
    t0 = time.perf_counter()
    yield
    elapsed = time.perf_counter() - t0
    report = getattr(request.node, "_obs_call_report", None)
    if report is None or not report.passed:
        return
    _JOURNAL.record(
        name=request.node.nodeid.split("/")[-1],
        elapsed_s=elapsed,
        metrics=registry.diff(before),
        workers=get_default_config().workers,
    )
