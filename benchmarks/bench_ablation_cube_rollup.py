"""Ablation: Theorem 1's suff-stats rollup vs refitting per cube subset.

The optimized cube merges per-base-cell sufficient statistics up the item
hierarchy lattice; the single-scan cube refits a model per (region, subset).
Identical results (tested); this bench quantifies the saving and a second
ablation shows the tree's prefix-stat numeric-split fast path.
"""

import time

import pytest

from repro.core import BellwetherCubeBuilder, BellwetherTreeBuilder
from repro.datasets import make_scalability
from repro.experiments import render_grid

from .conftest import publish


def test_ablation_suffstats_rollup(benchmark):
    ds = make_scalability(n_items=1_500, n_regions=24, hierarchy_leaves=4, seed=0)
    builder = BellwetherCubeBuilder(
        ds.task, ds.store, ds.hierarchies, min_subset_size=20
    )
    start = time.perf_counter()
    builder.build("optimized")
    opt_s = time.perf_counter() - start
    start = time.perf_counter()
    builder.build("single_scan")
    scan_s = time.perf_counter() - start
    publish(
        "ablation_cube_rollup",
        render_grid(
            "Ablation — cube model errors: suff-stats rollup vs refit",
            ("n_subsets", "rollup_s", "refit_s", "speedup"),
            [(len(builder.significant_subsets), opt_s, scan_s, scan_s / opt_s)],
        ),
    )
    assert opt_s < scan_s

    benchmark.pedantic(lambda: builder.build("optimized"), rounds=1, iterations=1)


def test_ablation_tree_prefix_stats(benchmark):
    ds = make_scalability(
        n_items=1_500, n_regions=16, n_numeric_features=6, seed=0
    )
    kwargs = dict(
        split_attrs=ds.task.item_feature_attrs,
        min_items=150,
        max_depth=2,
        max_numeric_splits=8,
    )
    fast = BellwetherTreeBuilder(ds.task, ds.store, use_prefix_stats=True, **kwargs)
    slow = BellwetherTreeBuilder(ds.task, ds.store, use_prefix_stats=False, **kwargs)
    start = time.perf_counter()
    fast.build("rf")
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    slow.build("rf")
    slow_s = time.perf_counter() - start
    publish(
        "ablation_tree_prefix",
        render_grid(
            "Ablation — numeric splits: prefix suff-stats vs refit per side",
            ("n_features", "prefix_s", "refit_s", "ratio"),
            [(6, fast_s, slow_s, slow_s / fast_s)],
        ),
    )
    # The two-way prefix evaluation avoids one of the two fits per split;
    # it must never be slower by more than measurement noise.
    assert fast_s < slow_s * 1.2

    benchmark.pedantic(lambda: fast.build("rf"), rounds=1, iterations=1)
