"""Figure 11 bench: efficiency/scalability of the construction algorithms."""

import numpy as np
import pytest

from repro.core import BellwetherCubeBuilder, BellwetherTreeBuilder
from repro.datasets import make_scalability
from repro.experiments import run_fig11a, run_fig11b, run_fig11c

from .conftest import publish


def _linearity(xs, ys) -> float:
    """R² of a linear fit — the paper's 'scales linearly' claim."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    coeffs = np.polyfit(xs, ys, 1)
    pred = np.polyval(coeffs, xs)
    ss_res = ((ys - pred) ** 2).sum()
    ss_tot = ((ys - ys.mean()) ** 2).sum()
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def test_fig11a_naive_vs_scan_oriented(benchmark, tmp_path_factory):
    """Disk-resident: naive algorithms lose by a growing margin."""
    scratch = tmp_path_factory.mktemp("fig11a")
    result = run_fig11a(
        region_counts=(6, 10, 14), n_items=400, scratch_dir=scratch
    )
    publish("fig11a", result.render())
    s = result.series
    # scan-oriented beats naive at every size, and the gap grows
    for k in range(len(result.xs)):
        assert s["single-scan cube"][k] < s["naive cube"][k]
        assert s["optimized cube"][k] < s["naive cube"][k]
        assert s["RF tree"][k] < s["naive tree"][k]
    gap_first = s["naive cube"][0] - s["single-scan cube"][0]
    gap_last = s["naive cube"][-1] - s["single-scan cube"][-1]
    assert gap_last > gap_first

    # payload: one naive-cube build at the smallest size
    from repro.storage import DiskStore

    ds = make_scalability(n_items=400, n_regions=6, seed=0, hierarchy_leaves=3)
    disk = DiskStore.from_memory(scratch / "payload", ds.store)

    def naive_build():
        return BellwetherCubeBuilder(
            ds.task, disk, ds.hierarchies, min_subset_size=40
        ).build("naive")

    benchmark.pedantic(naive_build, rounds=1, iterations=1)


def test_fig11b_cube_scales_linearly(benchmark):
    """Both cube algorithms scale ~linearly; optimized stays ahead."""
    result = run_fig11b(region_counts=(16, 32, 48, 64), n_items=1_200)
    publish("fig11b", result.render())
    for name, seconds in result.series.items():
        assert _linearity(result.xs, seconds) > 0.9, name
    for k in range(len(result.xs)):
        assert (
            result.series["optimized cube"][k]
            <= result.series["single-scan cube"][k]
        )

    ds = make_scalability(n_items=1_200, n_regions=32, seed=0, hierarchy_leaves=3)

    def optimized_build():
        return BellwetherCubeBuilder(
            ds.task, ds.store, ds.hierarchies, min_subset_size=50
        ).build("optimized")

    benchmark.pedantic(optimized_build, rounds=1, iterations=1)


def test_fig11c_rf_tree_scales_linearly(benchmark):
    result = run_fig11c(region_counts=(16, 32, 48, 64), n_items=1_200)
    publish("fig11c", result.render())
    assert _linearity(result.xs, result.series["RF tree"]) > 0.9

    ds = make_scalability(n_items=1_200, n_regions=32, seed=0, hierarchy_leaves=3)

    def rf_build():
        return BellwetherTreeBuilder(
            ds.task, ds.store, split_attrs=ds.task.item_feature_attrs,
            min_items=100, max_depth=3, max_numeric_splits=4,
        ).build("rf")

    benchmark.pedantic(rf_build, rounds=1, iterations=1)
