"""Columnar backend + materialized cube tables: warm builds must be cheap.

The fig11 out-of-core configuration, shrunk to bench scale: the entire
training data is written through both storage backends, the optimized cube
is built cold (one full fact scan), the per-level suffstats tables are
materialized once, and then the warm path — load tables + one batched solve
per level — is timed against the scratch npz build.  The warm path must
read **zero** fact rows and reproduce the scratch cube bit for bit; at the
full 10M-row fig11f scale the same path is journaled at >= 10x (see
EXPERIMENTS.md), here a conservative 3x gates regressions.
"""

import time

import numpy as np

from repro.core import BellwetherCubeBuilder
from repro.datasets import write_scalability
from repro.experiments import render_grid
from repro.incremental import build_cube_tables
from repro.obs import get_registry

from .conftest import publish


def _counter(name: str) -> int:
    return int(get_registry().counter_values().get(name, 0))


def test_bench_columnar_warm_tables_vs_scratch(benchmark, tmp_path):
    """Warm table build >= 3x faster than a scratch npz cube build."""
    times: dict[str, float] = {}
    cubes = {}
    builders = {}
    for backend in ("npz", "columnar"):
        ds = write_scalability(
            tmp_path / backend / "store",
            n_items=400,
            n_regions=48,
            seed=0,
            backend=backend,
        )
        builder = BellwetherCubeBuilder(
            ds.task, ds.store, ds.hierarchies, min_subset_size=50
        )
        builders[backend] = builder
        start = time.perf_counter()
        cubes[backend] = builder.build(method="optimized")
        times[f"scratch_{backend}_s"] = time.perf_counter() - start
        start = time.perf_counter()
        build_cube_tables(builder, tmp_path / backend / "tables")
        times[f"tables_{backend}_s"] = time.perf_counter() - start

    # warm path on the columnar backend: tables hit + batched replay
    builder = builders["columnar"]
    scans_before = _counter("store.full_scans")
    reads_before = _counter("store.region_reads")
    start = time.perf_counter()
    tables = build_cube_tables(builder, tmp_path / "columnar" / "tables")
    warm_cube = builder.build_from_tables(tables)
    times["warm_s"] = time.perf_counter() - start
    assert _counter("store.full_scans") == scans_before
    assert _counter("store.region_reads") == reads_before

    # bit-for-bit: warm == scratch, and both backends agree
    for backend in ("npz", "columnar"):
        scratch = cubes[backend]
        assert scratch.subsets == warm_cube.subsets
        for subset in scratch.subsets:
            a, b = scratch.entry(subset), warm_cube.entry(subset)
            assert a.region == b.region
            if a.error is not None:
                assert (a.error.rmse, a.error.sse, a.error.dof) == (
                    b.error.rmse, b.error.sse, b.error.dof
                )

    speedup = times["scratch_npz_s"] / times["warm_s"]
    publish(
        "columnar_warm_tables",
        render_grid(
            "Columnar backend — warm cube tables vs scratch builds (seconds)",
            ("scratch_npz_s", "scratch_columnar_s", "tables_columnar_s",
             "warm_s", "speedup_vs_npz"),
            [(times["scratch_npz_s"], times["scratch_columnar_s"],
              times["tables_columnar_s"], times["warm_s"], speedup)],
        ),
    )
    assert times["scratch_npz_s"] > 3 * times["warm_s"]

    def _one_warm_build():
        builder.build_from_tables(
            build_cube_tables(builder, tmp_path / "columnar" / "tables")
        )

    benchmark.pedantic(_one_warm_build, rounds=1, iterations=1)


def test_bench_columnar_chunked_scan(benchmark, tmp_path):
    """Bounded-memory chunked scans cover every row, counted per chunk."""
    ds = write_scalability(
        tmp_path / "store", n_items=500, n_regions=64, seed=1,
        backend="columnar",
    )
    chunk_rows = 128
    chunks_before = _counter("store.columnar.chunks_read")

    def _scan_once() -> int:
        rows = 0
        for __, chunk in ds.store.scan_chunks(chunk_rows=chunk_rows):
            assert chunk.n_examples <= chunk_rows
            rows += chunk.n_examples
        return rows

    start = time.perf_counter()
    rows = _scan_once()
    chunked_s = time.perf_counter() - start
    assert rows == ds.n_examples_total
    chunks = _counter("store.columnar.chunks_read") - chunks_before
    assert chunks == 64 * int(np.ceil(500 / chunk_rows))

    start = time.perf_counter()
    assert sum(b.n_examples for __, b in ds.store.scan()) == rows
    block_s = time.perf_counter() - start

    publish(
        "columnar_chunked_scan",
        render_grid(
            "Columnar backend — chunked vs whole-block full scan (seconds)",
            ("examples", "chunks", "chunked_s", "block_s"),
            [(rows, chunks, chunked_s, block_s)],
        ),
    )
    benchmark.pedantic(_scan_once, rounds=1, iterations=1)
