"""Figure 12 bench: cost drivers of the optimized cube and the RF tree."""

import numpy as np
import pytest

from repro.core import BellwetherCubeBuilder, BellwetherTreeBuilder
from repro.datasets import make_scalability
from repro.experiments import run_fig12a, run_fig12b

from .conftest import publish


def _linearity(xs, ys) -> float:
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    coeffs = np.polyfit(xs, ys, 1)
    pred = np.polyval(coeffs, xs)
    ss_res = ((ys - pred) ** 2).sum()
    ss_tot = ((ys - ys.mean()) ** 2).sum()
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def test_fig12a_cube_linear_in_significant_subsets(benchmark):
    result = run_fig12a(leaf_counts=(2, 4, 6, 8), n_items=1_000)
    publish("fig12a", result.render())
    assert _linearity(result.xs, result.seconds) > 0.9
    # runtime strictly grows with the subset count
    assert result.seconds == sorted(result.seconds)

    ds = make_scalability(n_items=1_000, n_regions=24, hierarchy_leaves=4, seed=0)

    def build():
        return BellwetherCubeBuilder(
            ds.task, ds.store, ds.hierarchies, min_subset_size=1
        ).build("optimized")

    benchmark.pedantic(build, rounds=1, iterations=1)


def test_fig12b_rf_tree_linear_in_item_features(benchmark):
    result = run_fig12b(feature_counts=(2, 4, 8, 12), n_items=1_000)
    publish("fig12b", result.render())
    assert _linearity(result.xs, result.seconds) > 0.9
    assert result.seconds[-1] > result.seconds[0]

    ds = make_scalability(n_items=1_000, n_regions=16, n_numeric_features=8, seed=0)

    def build():
        return BellwetherTreeBuilder(
            ds.task, ds.store, split_attrs=ds.task.item_feature_attrs,
            min_items=150, max_depth=2, max_numeric_splits=4,
        ).build("rf")

    benchmark.pedantic(build, rounds=1, iterations=1)
