"""Figure 8 bench: item-centric prediction (basic vs tree vs cube) on
the heterogeneous mail-order data.
"""

import numpy as np
import pytest

from repro.core import BellwetherTreeBuilder, build_store
from repro.datasets import make_mailorder
from repro.experiments import run_fig8
from repro.ml import TrainingSetEstimator
from repro.storage import FilteredStore

from .conftest import publish


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(n_items=120, seed=3, n_folds=5)


def test_fig8_tree_and_cube_improve_at_low_budgets(benchmark, fig8):
    """The paper: tree/cube improve on basic in the 10-30 budget band."""
    publish("fig08", fig8.render())
    low = [i for i, b in enumerate(fig8.budgets) if b <= 30.0]
    assert low
    # tree beats basic across the low-budget band
    for i in low:
        assert fig8.tree[i] < fig8.basic[i], f"tree loses at {fig8.budgets[i]}"
    # cube beats basic on most of the band (the paper's improvement is mild)
    wins = sum(fig8.cube[i] < fig8.basic[i] for i in low)
    assert wins >= len(low) - 1
    # the advantage shrinks at the top budget (paper: improvement fades)
    rel_low = fig8.tree[low[-1]] / fig8.basic[low[-1]]
    rel_high = fig8.tree[-1] / fig8.basic[-1]
    assert rel_high > rel_low

    # payload: one RF tree construction under the band's top budget
    ds = make_mailorder(
        n_items=120, seed=3, heterogeneous=True,
        error_estimator=TrainingSetEstimator(),
    )
    store, costs, __ = build_store(ds.task)
    feasible = [r for r in store.regions() if costs[r] <= 30.0]
    view = FilteredStore(store, feasible)

    def build_tree():
        return BellwetherTreeBuilder(
            ds.task, view, split_attrs=("category", "rdexpense"),
            min_items=20, max_depth=3, max_numeric_splits=4,
        ).build("rf")

    tree = benchmark.pedantic(build_tree, rounds=1, iterations=1)
    assert tree.leaves()
