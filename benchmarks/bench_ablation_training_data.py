"""Ablation: CUBE-rewrite training-set generation vs per-region queries.

DESIGN.md Section 5: the Section 4.2 rewrite computes all regions' training
sets from one grouped pass + rollup; the naive strategy re-aggregates the
fact table per region.  Same output (tested in the unit suite); this bench
shows the speedup and its growth with the region count.
"""

import time

import pytest

from repro.core import TrainingDataGenerator
from repro.datasets import make_mailorder

from .conftest import publish
from repro.experiments import render_grid


@pytest.fixture(scope="module")
def generator():
    ds = make_mailorder(n_items=150, seed=0)
    return TrainingDataGenerator(ds.task)


def test_ablation_cube_rewrite_beats_naive(benchmark, generator):
    rows = []
    start = time.perf_counter()
    generator.generate(method="cube")
    cube_s = time.perf_counter() - start
    start = time.perf_counter()
    generator.generate(method="naive")
    naive_s = time.perf_counter() - start
    rows.append((len(generator.all_regions()), cube_s, naive_s, naive_s / cube_s))
    publish(
        "ablation_training_data",
        render_grid(
            "Ablation — training-set generation: cube rewrite vs naive",
            ("n_regions", "cube_s", "naive_s", "speedup"),
            rows,
        ),
    )
    assert cube_s < naive_s

    benchmark.pedantic(
        lambda: generator.generate(method="cube"), rounds=1, iterations=1
    )
