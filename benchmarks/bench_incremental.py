"""Incremental maintenance: delta refresh vs full rebuild on the fig11 config.

After one month of orders is appended to a deployed store, the incremental
layer must bring the basic-search profile and the optimized cube current
with ≥ 3× less work than rebuilding from scratch — measured both as
operations (full scans + solved stacked problems + model fits, via the
``repro.obs`` counters) and as wall-clock — while producing bit-for-bit
identical picks.
"""

import time

from repro.core import BasicBellwetherSearch, BellwetherCubeBuilder
from repro.datasets import make_mailorder
from repro.experiments import render_grid
from repro.incremental import month_append_delta, month_split_store
from repro.ml import TrainingSetEstimator
from repro.obs import get_registry

from .conftest import publish

_OP_COUNTERS = (
    "store.full_scans",
    "ml.linear.batched_problems",
    "ml.linear.fits",
)


def _ops(before: dict) -> int:
    values = get_registry().counter_values()
    return sum(int(values.get(k, 0) - before.get(k, 0)) for k in _OP_COUNTERS)


def test_bench_incremental_refresh_vs_rebuild(benchmark):
    """Fig-11 append config: refresh must beat the rebuild by >= 3x."""
    ds = make_mailorder(
        n_items=600, n_months=10, seed=0,
        error_estimator=TrainingSetEstimator(),
    )
    gen, regions, store = month_split_store(ds.task, base_month=9)
    search = BasicBellwetherSearch(ds.task, store)
    search.evaluate_all()
    maintainer = BellwetherCubeBuilder(
        ds.task, store, ds.hierarchies
    ).incremental()
    maintainer.refresh()
    store.apply_delta(month_append_delta(gen, regions, 10))

    registry = get_registry()
    before = registry.counter_values()
    start = time.perf_counter()
    scratch_profile = BasicBellwetherSearch(ds.task, store).evaluate_all()
    scratch_cube = BellwetherCubeBuilder(
        ds.task, store, ds.hierarchies
    ).build("optimized")
    rebuild_s = time.perf_counter() - start
    rebuild_ops = _ops(before)

    before = registry.counter_values()
    start = time.perf_counter()
    incr_profile = search.refresh()
    incr_cube = maintainer.refresh()
    refresh_s = time.perf_counter() - start
    refresh_ops = _ops(before)

    # Same answers, bit for bit.
    assert [(r.region, r.rmse, r.cost, r.coverage) for r in incr_profile] == [
        (r.region, r.rmse, r.cost, r.coverage) for r in scratch_profile
    ]
    assert incr_cube.subsets == scratch_cube.subsets
    for subset in incr_cube.subsets:
        a, b = incr_cube.entry(subset), scratch_cube.entry(subset)
        assert a.region == b.region
        assert (a.error is None) == (b.error is None)
        if a.error is not None:
            assert (a.error.rmse, a.error.sse, a.error.dof) == (
                b.error.rmse, b.error.sse, b.error.dof
            )

    publish(
        "incremental_refresh",
        render_grid(
            "Incremental maintenance — one-month append: refresh vs rebuild",
            ("rebuild_ops", "refresh_ops", "rebuild_s", "refresh_s",
             "ops_ratio", "time_ratio"),
            [(rebuild_ops, refresh_ops, rebuild_s, refresh_s,
              rebuild_ops / max(refresh_ops, 1), rebuild_s / refresh_s)],
        ),
    )
    assert rebuild_ops >= 3 * refresh_ops
    assert rebuild_s > 3 * refresh_s

    def _one_refresh():
        store.apply_delta(month_append_delta(gen, regions, 10))
        search.refresh()
        maintainer.refresh()

    benchmark.pedantic(_one_refresh, rounds=1, iterations=1)
