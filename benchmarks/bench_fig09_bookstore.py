"""Figure 9 bench: the bookstore negative result — no clear bellwether."""

import numpy as np
import pytest

from repro.core import BasicBellwetherSearch, build_store
from repro.datasets import make_bookstore
from repro.experiments import run_fig9
from repro.ml import CrossValidationEstimator

from .conftest import publish


@pytest.fixture(scope="module")
def fig9():
    return run_fig9(n_items=150, seed=7, n_folds=3)


def test_fig9a_error_flattens_with_budget(benchmark, fig9):
    """Panel (a): error improves then flattens; never beats Avg by Fig-7
    margins because no region is special."""
    publish("fig09", fig9.render())
    bel = [p.bel_err for p in fig9.sweep_points]
    assert all(a >= b - 1e-9 for a, b in zip(bel, bel[1:]))  # non-increasing
    # the relative improvement over the sweep is far milder than mail order's
    assert bel[-1] > 0.4 * bel[0]

    ds = make_bookstore(
        n_items=150, seed=7,
        error_estimator=CrossValidationEstimator(n_folds=10, seed=7),
    )
    store, costs, __ = build_store(ds.task)

    def scan_once():
        return BasicBellwetherSearch(ds.task, store, costs=costs).run(budget=100.0)

    result = benchmark.pedantic(scan_once, rounds=1, iterations=1)
    assert result.found


def test_fig9b_no_unique_bellwether(benchmark, fig9):
    """Panel (b): a sizable fraction of regions stays indistinguishable."""
    points = fig9.sweep_points
    # through the low/mid budgets, ties abound (vs ~0.01 on mail order)
    mid = [p for p in points if p.budget <= 60.0]
    assert max(p.frac_indist[0.99] for p in mid) > 0.3
    assert np.mean([p.frac_indist[0.99] for p in mid]) > 0.15

    benchmark.pedantic(
        lambda: [p.frac_indist for p in points], rounds=3, iterations=1
    )


def test_fig9c_no_clear_winner(benchmark, fig9):
    """Panel (c): basic / tree / cube are comparable — nobody dominates."""
    basic = np.asarray(fig9.basic)
    tree = np.asarray(fig9.tree)
    cube = np.asarray(fig9.cube)
    # neither item-centric method achieves the Figure-8-style large win
    assert (tree > 0.6 * basic).all()
    assert (cube > 0.6 * basic).all()
    # and none is catastrophically worse either (all within 2x)
    assert (tree < 2.0 * basic).all()
    assert (cube < 2.0 * basic).all()

    benchmark.pedantic(
        lambda: (basic.mean(), tree.mean(), cube.mean()), rounds=3, iterations=1
    )
