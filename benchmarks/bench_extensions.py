"""Benches for the Section 3.4 extensions (beyond the paper's evaluation).

These quantify the headroom the paper conjectured: combinations of regions
can beat the best single region at equal budget, and schema-driven feature
selection recovers the hand-written feature set's signal.
"""

import numpy as np
import pytest

from repro.core import (
    BasicBellwetherSearch,
    GreedyCombinationSearch,
    LinearCriterion,
    MultiInstanceBellwetherSearch,
    TrainingDataGenerator,
    build_store,
    select_features,
)
from repro.datasets import make_mailorder
from repro.experiments import render_grid
from repro.ml import TrainingSetEstimator

from .conftest import publish


@pytest.fixture(scope="module")
def setup():
    ds = make_mailorder(n_items=100, seed=0, error_estimator=TrainingSetEstimator())
    gen = TrainingDataGenerator(ds.task)
    store, costs, coverage = build_store(ds.task)
    return ds, gen, store, costs


def test_combinatorial_beats_single_region(benchmark, setup):
    """At equal budget, a greedy combination never loses to a single region."""
    ds, gen, store, costs = setup
    comb = GreedyCombinationSearch(ds.task, gen, ds.cell_costs)
    rows = []
    for budget in (15.0, 25.0, 40.0):
        single = comb.run(budget=budget, max_regions=1)
        combo = comb.run(budget=budget, max_regions=3)
        rows.append(
            (budget, single.rmse, combo.rmse, len(combo.regions),
             single.rmse / combo.rmse)
        )
        assert combo.rmse <= single.rmse + 1e-9
    publish(
        "ext_combinatorial",
        render_grid(
            "Extension — combinatorial vs single-region bellwether (RMSE)",
            ("budget", "single", "combination", "n_regions", "gain"),
            rows,
        ),
    )
    benchmark.pedantic(
        lambda: comb.run(budget=25.0, max_regions=2), rounds=1, iterations=1
    )


def test_linear_criterion_traces_cost_frontier(benchmark, setup):
    """Sweeping w_cost walks the error/cost trade-off monotonically."""
    ds, gen, store, costs = setup
    rows = []
    last_cost = np.inf
    for w_cost in (0.0, 10.0, 100.0, 1000.0):
        task = ds.task.with_criterion(LinearCriterion(w_cost=w_cost))
        best = BasicBellwetherSearch(task, store, costs=costs).run().bellwether
        rows.append((w_cost, str(best.region), best.cost, best.rmse))
        assert best.cost <= last_cost + 1e-9
        last_cost = best.cost
    publish(
        "ext_linear_criterion",
        render_grid(
            "Extension — linear criterion cost/error frontier",
            ("w_cost", "region", "cost", "rmse"),
            rows,
        ),
    )
    benchmark.pedantic(
        lambda: BasicBellwetherSearch(
            ds.task.with_criterion(LinearCriterion(w_cost=10.0)),
            store,
            costs=costs,
        ).run(),
        rounds=1,
        iterations=1,
    )


def test_autofeatures_recover_signal(benchmark, setup):
    """Greedy selection over the schema finds profit-based features first."""
    ds, gen, store, costs = setup
    result = select_features(ds.task, max_features=3, n_probe_regions=6, seed=0)
    publish(
        "ext_autofeatures",
        render_grid(
            "Extension — automatic feature generation (greedy forward)",
            ("step", "feature", "probe_rmse"),
            [
                (k + 1, f.alias, e)
                for k, (f, e) in enumerate(
                    zip(result.selected, result.probe_errors)
                )
            ],
        ),
    )
    assert any("profit" in f.alias for f in result.selected)
    assert list(result.probe_errors) == sorted(result.probe_errors, reverse=True)

    benchmark.pedantic(
        lambda: select_features(
            ds.task, max_features=1, n_probe_regions=4, seed=1
        ),
        rounds=1,
        iterations=1,
    )


def test_multi_instance_close_to_aggregated(benchmark, setup):
    """The MI reduction lands near the aggregated pipeline's best region."""
    ds, gen, store, costs = setup
    mi = MultiInstanceBellwetherSearch(ds.task, ["profit", "quantity"])
    best_mi = mi.run(budget=30.0)
    best_agg = BasicBellwetherSearch(ds.task, store, costs=costs).run(
        budget=30.0
    ).bellwether
    publish(
        "ext_multi_instance",
        render_grid(
            "Extension — multi-instance vs aggregated bellwether at budget 30",
            ("method", "region", "rmse"),
            [
                ("aggregated", str(best_agg.region), best_agg.rmse),
                ("multi-instance", str(best_mi.region), best_mi.rmse),
            ],
        ),
    )
    # both land on an early-MD window: the plant dominates either way
    assert str(best_mi.region.values[1]) == "MD"
    assert str(best_agg.region.values[1]) == "MD"

    benchmark.pedantic(
        lambda: mi.evaluate(best_mi.region), rounds=1, iterations=1
    )
