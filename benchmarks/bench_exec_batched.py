"""Execution layer: batched solves and worker fan-out vs the serial paths.

The batched optimized cube collects per-cell sufficient statistics and
issues one ``np.linalg.solve`` over the whole lattice level; the serial
reference (``method="optimized_serial"``) solves per (subset, region) pair.
Both produce bit-identical cubes (tested in tier 1); this bench gates the
speedup the rewrite exists for and journals the trajectory.  A second test
times the parallel training-data fan-out against serial generation and
checks the stores match exactly.
"""

import time

import numpy as np

from repro.core import BellwetherCubeBuilder, TrainingDataGenerator
from repro.datasets import make_mailorder, make_scalability
from repro.exec import ParallelConfig
from repro.experiments import render_grid
from repro.obs import get_registry

from .conftest import publish


def test_bench_batched_cube_vs_serial(benchmark):
    """Fig-11 medium config: batched level solves must be >= 3x serial."""
    ds = make_scalability(n_items=1_500, n_regions=32, hierarchy_leaves=3, seed=0)
    builder = BellwetherCubeBuilder(
        ds.task, ds.store, ds.hierarchies, min_subset_size=50
    )
    builder.build("optimized")  # warm caches so both timings are steady-state
    solves = get_registry().counter("ml.linear.batched_solves")
    before = solves.value
    start = time.perf_counter()
    builder.build("optimized")
    batched_s = time.perf_counter() - start
    level_solves = solves.value - before
    start = time.perf_counter()
    builder.build("optimized_serial")
    serial_s = time.perf_counter() - start
    publish(
        "exec_batched_cube",
        render_grid(
            "Execution layer — optimized cube: batched vs per-pair solves",
            ("n_levels", "level_solves", "batched_s", "serial_s", "speedup"),
            [(builder.n_levels, level_solves, batched_s, serial_s,
              serial_s / batched_s)],
        ),
    )
    # one batched solve per lattice level, and the payoff it buys
    assert level_solves <= builder.n_levels
    assert serial_s > 3 * batched_s

    benchmark.pedantic(lambda: builder.build("optimized"), rounds=1, iterations=1)


def test_bench_parallel_training_data(benchmark):
    """Worker fan-out of training-data generation: identical blocks, timed."""
    ds = make_mailorder(n_items=400, n_months=10, seed=0)
    gen = TrainingDataGenerator(ds.task)
    start = time.perf_counter()
    serial = gen.generate(method="cube")
    serial_s = time.perf_counter() - start
    cfg = ParallelConfig(workers=2)
    start = time.perf_counter()
    fanned = gen.generate(method="cube", parallel=cfg)
    parallel_s = time.perf_counter() - start
    regions = list(serial.regions())
    assert regions == list(fanned.regions())
    for region in regions:
        a, b = serial.read(region), fanned.read(region)
        assert np.array_equal(a.x, b.x, equal_nan=True)
        assert np.array_equal(a.y, b.y, equal_nan=True)
    publish(
        "exec_parallel_traindata",
        render_grid(
            "Execution layer — training-data generation: serial vs 2 workers",
            ("n_regions", "serial_s", "workers2_s", "ratio"),
            [(len(regions), serial_s, parallel_s, serial_s / parallel_s)],
        ),
    )

    benchmark.pedantic(
        lambda: gen.generate(method="cube", parallel=cfg), rounds=1, iterations=1
    )
