"""Figure 7 bench: basic bellwether analysis of the (synthetic) mail order data.

Regenerates all three panels' series and checks the paper's qualitative
claims; the benchmark payload is the basic search's store scan.
"""

import numpy as np
import pytest

from repro.core import BasicBellwetherSearch, build_store
from repro.datasets import make_mailorder
from repro.experiments import run_fig7
from repro.ml import CrossValidationEstimator

from .conftest import publish


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(n_items=150, seed=0)


@pytest.fixture(scope="module")
def search_setup():
    ds = make_mailorder(
        n_items=150, seed=0,
        error_estimator=CrossValidationEstimator(n_folds=10, seed=0),
    )
    store, costs, coverage = build_store(ds.task)
    return ds, store, costs


def test_fig7a_bellwether_error_vs_budget(benchmark, fig7, search_setup):
    """Panel (a): Bel Err falls with budget, converges, beats Avg and Smp."""
    publish("fig07", fig7.render())
    points = fig7.cv_points
    bel = [p.bel_err for p in points]
    # error is (weakly) decreasing and converges: the last three budgets tie
    assert all(a >= b - 1e-9 for a, b in zip(bel, bel[1:]))
    assert bel[-1] == pytest.approx(bel[-3], rel=0.15)
    # the bellwether beats the average region everywhere, by far at the knee
    for p in points:
        assert p.bel_err < p.avg_err
    assert points[-1].bel_err < 0.5 * points[-1].avg_err
    # and beats random sampling at every budget where sampling succeeds
    for p in points:
        if np.isfinite(p.smp_err):
            assert p.bel_err <= p.smp_err * 1.05
    # the converged bellwether is an early-MD window (the planted [1-8, MD])
    interval, state = points[-1].bellwether.values
    assert state == "MD"

    ds, store, costs = search_setup
    def scan_once():
        search = BasicBellwetherSearch(ds.task, store, costs=costs)
        return search.run(budget=85.0)
    result = benchmark.pedantic(scan_once, rounds=1, iterations=1)
    assert result.found


def test_fig7b_bellwether_uniqueness(benchmark, fig7):
    """Panel (b): the bellwether is near-unique in the mid-budget band."""
    points = fig7.cv_points
    mid = [p for p in points if 35.0 <= p.budget <= 85.0]
    for p in mid:
        assert p.frac_indist[0.95] < 0.10, f"not unique at budget {p.budget}"
        assert p.frac_indist[0.99] < 0.15
    # looser at the starved low end, as in the paper's left edge
    assert points[0].frac_indist[0.99] >= points[-1].frac_indist[0.99]

    # payload: recomputing the uniqueness profile from the error estimates
    result_points = points
    def uniqueness_profile():
        return [
            (p.budget, p.frac_indist.get(0.95), p.frac_indist.get(0.99))
            for p in result_points
        ]
    benchmark.pedantic(uniqueness_profile, rounds=3, iterations=1)


def test_fig7c_training_error_tracks_cv(benchmark, fig7):
    """Panel (c): training-set error reproduces the CV panel almost exactly."""
    cv = {p.budget: p for p in fig7.cv_points}
    tr = {p.budget: p for p in fig7.training_points}
    for budget in cv:
        assert tr[budget].bel_err == pytest.approx(cv[budget].bel_err, rel=0.2)
        # the same bellwether region at the converged end
    assert tr[85.0].bellwether == cv[85.0].bellwether

    # payload: the cheap estimator itself (the reason panel (c) exists)
    from repro.ml import TrainingSetEstimator
    rng = np.random.default_rng(0)
    x = rng.normal(size=(150, 6))
    y = x @ rng.normal(size=6) + rng.normal(size=150)
    estimator = TrainingSetEstimator()
    benchmark.pedantic(lambda: estimator.estimate(x, y), rounds=5, iterations=2)
