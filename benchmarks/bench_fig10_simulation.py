"""Figure 10 bench: cube/basic/tree on the Section 7.3 simulation."""

import numpy as np
import pytest

from repro.core import compare_methods
from repro.datasets import make_simulation
from repro.experiments import run_fig10a, run_fig10b
from repro.ml import TrainingSetEstimator

from .conftest import publish


@pytest.fixture(scope="module")
def fig10a():
    return run_fig10a(n_datasets=3, n_items=400, n_folds=3)


@pytest.fixture(scope="module")
def fig10b():
    return run_fig10b(n_datasets=3, n_items=400, n_folds=3)


def test_fig10a_error_vs_noise(benchmark, fig10a):
    """Tree/cube beat basic; the gap closes as noise grows."""
    publish("fig10a", fig10a.render())
    basic = np.asarray(fig10a.basic)
    tree = np.asarray(fig10a.tree)
    cube = np.asarray(fig10a.cube)
    # at low noise both item-centric methods clearly win
    assert tree[0] < basic[0]
    assert cube[0] < basic[0]
    # errors grow with noise for every method
    assert basic[-1] > basic[0] and tree[-1] > tree[0]
    # the relative gap at the top noise is small (paper: difference shrinks)
    assert tree[-1] / basic[-1] > 0.85
    assert cube[-1] / basic[-1] > 0.85

    # payload: one full method comparison on a fresh dataset
    ds = make_simulation(
        n_items=300, n_tree_nodes=15, noise=0.5, seed=123,
        error_estimator=TrainingSetEstimator(),
    )

    def run_once():
        return compare_methods(
            ds.task, ds.store, hierarchies=ds.hierarchies, n_folds=3,
            tree_kwargs=dict(min_items=25, max_depth=4),
            cube_kwargs=dict(min_subset_size=15),
        )

    out = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert set(out) == {"basic", "tree", "cube"}


def test_fig10b_error_vs_complexity(benchmark, fig10b):
    """Tree/cube beat basic at low complexity; improvement shrinks after."""
    publish("fig10b", fig10b.render())
    basic = np.asarray(fig10b.basic)
    tree = np.asarray(fig10b.tree)
    cube = np.asarray(fig10b.cube)
    # large advantage on the simplest generator
    assert tree[0] < 0.6 * basic[0]
    assert cube[0] < 0.9 * basic[0]
    # the advantage shrinks as the generating tree grows
    rel_tree = tree / basic
    assert rel_tree[-1] > rel_tree[0]

    benchmark.pedantic(
        lambda: (basic.tolist(), tree.tolist(), cube.tolist()),
        rounds=3,
        iterations=1,
    )
