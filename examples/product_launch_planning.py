"""Item-centric bellwethers for planning product launches.

Run with:  python examples/product_launch_planning.py

Different kinds of products have different bellwether regions (laptops might
read best in Maryland, garden tools in New York — the paper's Section 3.3
motivation).  A *bellwether tree* learns those segments from item-table
features; a *bellwether cube* exposes them along predefined item
hierarchies, supporting rollup/drilldown exploration.
"""

from repro.core import (
    BellwetherCubeBuilder,
    BellwetherTreeBuilder,
    build_store,
    compare_methods,
)
from repro.datasets import make_mailorder
from repro.ml import TrainingSetEstimator
from repro.storage import FilteredStore

BUDGET = 30.0


def main() -> None:
    # Heterogeneous ground truth: each category has its own planted region.
    ds = make_mailorder(
        n_items=120, seed=3, heterogeneous=True,
        error_estimator=TrainingSetEstimator(),
    )
    print("planted bellwethers by category:")
    for category, (state, window) in sorted(ds.planted.items()):
        print(f"  {category:12s} -> [1-{window}, {state}]")

    store, costs, coverage = build_store(ds.task)
    feasible = [r for r in store.regions() if costs[r] <= BUDGET]
    view = FilteredStore(store, feasible)
    print(f"\nregions affordable at budget {BUDGET:g}: {len(feasible)}")

    # ------------------------------------------------------ bellwether tree
    tree = BellwetherTreeBuilder(
        ds.task, view, split_attrs=("category", "rdexpense"),
        min_items=20, max_depth=3, max_numeric_splits=4,
    ).build("rf")
    print("\nbellwether tree (RainForest construction):")
    print(tree.describe())

    item = ds.item_table["item"][0]
    print(f"\nitem {item} ({ds.item_table['category'][0]}): "
          f"collect data from {tree.region_for(item)}, "
          f"predicted total profit {tree.predict(item):,.0f}")

    # ------------------------------------------------------ bellwether cube
    cube = BellwetherCubeBuilder(
        ds.task, view, ds.hierarchies, min_subset_size=10
    ).build("optimized")
    print("\nbellwether cube, category-level rollup view:")
    for entry in cube.crosstab((2, 0)):  # categories x all R&D bands
        print(f"  {str(entry.subset):28s} {entry.n_items:3d} items -> "
              f"{entry.region} (rmse {entry.error.rmse:,.0f})")

    # ------------------------------------------- method comparison (Fig 8)
    out = compare_methods(
        ds.task, view, hierarchies=ds.hierarchies,
        split_attrs=("category", "rdexpense"), n_folds=5, seed=0,
        tree_kwargs=dict(min_items=20, max_depth=3, max_numeric_splits=4),
        cube_kwargs=dict(min_subset_size=10),
    )
    print(f"\n10-fold item-prediction RMSE at budget {BUDGET:g}:")
    for method, rmse in out.items():
        print(f"  {method:6s} {rmse:,.0f}")


if __name__ == "__main__":
    main()
