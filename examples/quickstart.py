"""Quickstart: find a bellwether region on a small mail-order dataset.

Run with:  python examples/quickstart.py

The scenario (Section 3.1 of the paper): a company wants to predict each new
item's total profit without selling it everywhere for the whole period.  It
looks for a cheap (time window, location) *bellwether region* whose early
sales predict the global total.
"""

from repro.core import BasicBellwetherSearch, budget_sweep, build_store, render_table
from repro.datasets import make_mailorder


def main() -> None:
    # 1. A synthetic mail-order star schema: orders(item, month, state,
    #    catalog, quantity, profit) + a catalog reference table, with a
    #    bellwether planted at [first 8 months, Maryland].
    ds = make_mailorder(n_items=120, seed=0)
    print(f"database: {ds.db}")
    print(f"candidate regions: {ds.space.n_regions}")

    # 2. Materialize the entire training data: one table per region with a
    #    row per item — query-generated features plus the query-generated
    #    target (total profit).  This is the paper's Section 4.2 rewrite.
    store, costs, coverage = build_store(ds.task)
    print(f"training blocks: {len(store.regions())} regions")
    print(f"features: {store.feature_names}")

    # 3. Search under a data-collection budget.
    search = BasicBellwetherSearch(ds.task, store, costs=costs)
    result = search.run(budget=60.0)
    best = result.bellwether
    print(f"\nbellwether under budget 60: {best.region}")
    print(f"  cost {best.cost:.1f}, coverage {best.coverage:.0%}, "
          f"cv-rmse {best.rmse:,.0f}")
    print(f"  regions statistically tied with it (95%): "
          f"{result.indistinguishable_fraction(0.95):.1%}")

    # 4. Sweep budgets to see the paper's Figure 7(a) curve shape.
    points = budget_sweep(search, [5, 15, 25, 35, 45, 55, 65, 75, 85])
    print("\nbudget sweep:")
    print(render_table(points))

    # 5. Use the bellwether model to predict a new item's total profit from
    #    its (cheap) regional features alone.
    model = search.fit_model(best.region)
    block = store.read(best.region)
    item = block.item_ids[0]
    predicted = model.predict(block.x[0])[0]
    actual = block.y[0]
    print(f"\nitem {item}: predicted total profit {predicted:,.0f} "
          f"(actual {actual:,.0f}) from {best.region} data only")


if __name__ == "__main__":
    main()
