"""Bellwether analysis over your own star schema, end to end.

Run with:  python examples/custom_star_schema.py

Everything the library needs is built here by hand — fact/reference tables,
dimensions, cost model, target and feature queries — so this file doubles as
a template for plugging in real data (e.g. loaded with repro.table.load_csv).
The scenario: a streaming service wants to predict a show's total
first-quarter watch hours from one cheap (week-window, platform-group)
slice of telemetry.
"""

import numpy as np

from repro.core import (
    AggregateTargetQuery,
    BasicBellwetherSearch,
    BellwetherTask,
    Criterion,
    DistinctJoinAggregate,
    FactAggregate,
    JoinAggregate,
    build_store,
)
from repro.dimensions import (
    HierarchicalDimension,
    IntervalDimension,
    ProductCostModel,
    RegionSpace,
)
from repro.ml import CrossValidationEstimator
from repro.table import Database, Reference, Table


def build_database(rng: np.random.Generator, n_shows: int = 60) -> tuple:
    """A synthetic telemetry star schema; swap in load_csv for real data."""
    platforms = ["ios", "android", "web", "tv_os", "console"]
    weeks = 13
    # Shows vary in popularity; mobile platforms see them first.
    popularity = rng.lognormal(3.0, 0.7, n_shows)
    rows = {"show": [], "week": [], "platform": [], "campaign": [], "hours": []}
    for s in range(1, n_shows + 1):
        for w in range(1, weeks + 1):
            for p in platforms:
                if rng.random() < 0.25:
                    continue  # telemetry gaps
                early_mobile = 1.6 if p in ("ios", "android") and w <= 4 else 1.0
                hours = popularity[s - 1] * early_mobile * rng.lognormal(0, 0.5)
                rows["show"].append(s)
                rows["week"].append(w)
                rows["platform"].append(p)
                rows["campaign"].append(int(rng.integers(0, 8)))
                rows["hours"].append(hours)
    fact = Table(rows)
    campaigns = Table(
        {"campaign": np.arange(8), "spend": rng.uniform(5, 50, 8).round(1)}
    )
    shows = Table(
        {
            "show": np.arange(1, n_shows + 1),
            "genre": rng.choice(["drama", "comedy", "docu"], n_shows).astype(object),
            "episodes": rng.integers(6, 14, n_shows),
        }
    )
    db = Database(fact, [Reference("campaigns", campaigns, "campaign")])
    db.check_integrity()
    return db, shows, weeks, platforms


def main() -> None:
    rng = np.random.default_rng(42)
    db, shows, weeks, platforms = build_database(rng)

    # Dimensions: prefix week windows x a platform hierarchy.
    time = IntervalDimension("week", weeks, unit="week")
    platform = HierarchicalDimension.from_spec(
        "platform",
        {"mobile": ["ios", "android"], "big_screen": ["tv_os", "console"],
         "browser": ["web"]},
        level_names=("All", "Group", "Platform"),
    )
    space = RegionSpace([time, platform])

    # Cost: weeks x instrumentation weight per platform.
    cost = ProductCostModel(
        space,
        {"ios": 1.0, "android": 1.2, "web": 0.6, "tv_os": 2.0, "console": 2.5},
    )

    task = BellwetherTask(
        db,
        space,
        shows,
        "show",
        target=AggregateTargetQuery("sum", "hours", "show"),
        regional_features=[
            FactAggregate("sum", "hours", "reg_hours"),
            FactAggregate("count", "hours", "reg_sessions"),
            JoinAggregate("max", "spend", "reg_max_spend", reference="campaigns"),
            DistinctJoinAggregate(
                "sum", "spend", "reg_campaign_spend", reference="campaigns"
            ),
        ],
        item_feature_attrs=("genre", "episodes"),
        cost_model=cost,
        criterion=Criterion(min_coverage=0.5),
        error_estimator=CrossValidationEstimator(n_folds=10, seed=0),
    )

    store, costs, coverage = build_store(task)
    search = BasicBellwetherSearch(task, store, costs=costs)
    for budget in (4.0, 8.0, 16.0):
        result = search.run(budget=budget)
        if not result.found:
            print(f"budget {budget:5.1f}: no feasible region")
            continue
        b = result.bellwether
        print(
            f"budget {budget:5.1f}: {str(b.region):22s} cost {b.cost:5.1f}  "
            f"cv-rmse {b.rmse:8.1f}  ties@95% "
            f"{result.indistinguishable_fraction(0.95):.0%}"
        )


if __name__ == "__main__":
    main()
