"""Tour of the paper's Section 3.4 extensions, implemented end to end.

Run with:  python examples/extensions_tour.py

Covers:
1. the linear optimization criterion (error + w·cost − w·coverage);
2. combinatorial bellwether analysis (combinations of regions);
3. multi-instance bellwether analysis (bags instead of aggregates);
4. relational bellwether analysis (models consuming sub-databases);
5. automatic feature generation (schema-driven query enumeration
   + greedy selection);
6. generalized window dimensions (sliding windows instead of prefixes);
7. validation-set pruning for bellwether trees.
"""

from repro.core import (
    AggregatingRelationalLearner,
    BasicBellwetherSearch,
    BellwetherTask,
    BellwetherTreeBuilder,
    FactAggregate,
    GreedyCombinationSearch,
    LinearCriterion,
    MultiInstanceBellwetherSearch,
    RelationalBellwetherSearch,
    TrainingDataGenerator,
    build_store,
    select_features,
)
from repro.datasets import make_mailorder
from repro.dimensions import RegionSpace, WindowedIntervalDimension
from repro.ml import TrainingSetEstimator


def main() -> None:
    ds = make_mailorder(n_items=80, seed=0, error_estimator=TrainingSetEstimator())
    store, costs, coverage = build_store(ds.task)
    gen = TrainingDataGenerator(ds.task)

    # 1 ------------------------------------------------- linear criterion
    print("== 1. linear optimization criterion")
    for w_cost in (0.0, 50.0, 500.0):
        task = ds.task.with_criterion(LinearCriterion(w_cost=w_cost))
        best = BasicBellwetherSearch(task, store, costs=costs).run().bellwether
        print(f"  w_cost={w_cost:6g}: {str(best.region):12s} "
              f"cost {best.cost:6.1f}  rmse {best.rmse:8.0f}")

    # 2 --------------------------------------------- combinatorial search
    print("\n== 2. combinatorial bellwether (combinations of regions)")
    comb = GreedyCombinationSearch(ds.task, gen, ds.cell_costs)
    single = comb.run(budget=25.0, max_regions=1)
    combo = comb.run(budget=25.0, max_regions=3)
    print(f"  best single region : {single.regions[0]} rmse {single.rmse:,.0f}")
    print(f"  greedy combination : {[str(r) for r in combo.regions]} "
          f"rmse {combo.rmse:,.0f} (cost {combo.cost:.1f}, union-priced)")

    # 3 ---------------------------------------------------- multi-instance
    print("\n== 3. multi-instance bellwether (bags of transactions)")
    mi = MultiInstanceBellwetherSearch(ds.task, ["profit", "quantity"])
    best = mi.run(budget=30.0)
    bags = mi.bags_for_region(best.region)
    sample = next(iter(bags.items()))
    print(f"  best region {best.region}, rmse {best.rmse:,.0f}; "
          f"item {sample[0]} bag holds {len(sample[1])} instances")

    # 4 -------------------------------------------------------- relational
    print("\n== 4. relational bellwether (models consume sub-databases)")
    learner = AggregatingRelationalLearner(
        [FactAggregate("sum", "profit", "p"), FactAggregate("count", "profit", "n")],
        id_column="item",
    )
    rel = RelationalBellwetherSearch(ds.task, learner)
    cheap = [r for r in ds.space.all_regions() if ds.task.cost(r) <= 25][:30]
    best = rel.run(budget=25.0, candidate_regions=cheap, n_folds=3)
    subdb = rel.subdatabase(best.region)
    print(f"  best region {best.region}, rmse {best.rmse:,.0f}; "
          f"its sub-database: {subdb}")

    # 5 --------------------------------------- automatic feature generation
    print("\n== 5. automatic feature generation")
    result = select_features(ds.task, max_features=3, n_probe_regions=6, seed=0)
    for feature, err in zip(result.selected, result.probe_errors):
        print(f"  + {feature.alias:28s} probe rmse -> {err:,.0f}")

    # 6 ----------------------------------------------------- window shapes
    print("\n== 6. sliding windows instead of prefixes")
    sliding = WindowedIntervalDimension.sliding("month", 10, width=3)
    space = RegionSpace([sliding, ds.space.dimensions[1]])
    task = BellwetherTask(
        ds.task.db, space, ds.item_table, "item",
        target=ds.task.target, regional_features=ds.task.regional_features,
        item_feature_attrs=ds.task.item_feature_attrs,
        error_estimator=TrainingSetEstimator(),
    )
    w_store, __, __ = build_store(task)
    best = BasicBellwetherSearch(task, w_store).run().bellwether
    print(f"  best sliding window: {best.region} rmse {best.rmse:,.0f} "
          f"(candidates: {space.n_regions} windowed regions)")

    # 7 ------------------------------------------------------------ pruning
    print("\n== 7. validation-set pruning of bellwether trees")
    from repro.storage import FilteredStore

    het = make_mailorder(n_items=80, seed=3, heterogeneous=True,
                         error_estimator=TrainingSetEstimator())
    het_store, het_costs, __ = build_store(het.task)
    view = FilteredStore(
        het_store, [r for r in het_store.regions() if het_costs[r] <= 30.0]
    )
    builder = BellwetherTreeBuilder(
        het.task, view, split_attrs=("category", "rdexpense"),
        min_items=8, max_depth=3, max_numeric_splits=6,
        min_relative_goodness=0.0,
    )
    grown = builder.build("rf")
    pruned = builder.build_pruned("rf", validation_fraction=0.3, seed=0)
    print(f"  grown tree: {len(grown.leaves())} leaves -> "
          f"pruned: {len(pruned.leaves())} leaves "
          f"(real category structure survives; noise splits go)")


if __name__ == "__main__":
    main()
