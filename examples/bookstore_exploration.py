"""When there is no bellwether: exploratory analysis on the bookstore data.

Run with:  python examples/bookstore_exploration.py

The paper's bookstore dataset (Section 7.2) produced no clear bellwether.
This example shows how to *detect* that situation with the uniqueness
analysis — the honest answer is sometimes "no cheap region reads the market".
"""

from repro.core import (
    BasicBellwetherSearch,
    RandomSamplingBaseline,
    TrainingDataGenerator,
    budget_sweep,
    build_store,
    render_table,
)
from repro.datasets import make_bookstore, make_mailorder


def uniqueness_report(name: str, ds, budgets) -> None:
    gen = TrainingDataGenerator(ds.task)
    store, costs, coverage = build_store(ds.task)
    search = BasicBellwetherSearch(ds.task, store, costs=costs)
    sampling = RandomSamplingBaseline(ds.task, ds.cell_costs, generator=gen)
    points = budget_sweep(search, budgets, sampling=sampling, sampling_trials=2)
    print(f"\n=== {name} ===")
    print(render_table(points))
    ties = [p.frac_indist[0.99] for p in points]
    if max(ties) > 0.2:
        print("-> large indistinguishable fractions: NO clear bellwether; "
              "collecting from the returned region is not better than many "
              "alternatives.")
    else:
        print("-> the bellwether is near-unique: a genuinely informative "
              "region exists at these budgets.")


def main() -> None:
    bookstore = make_bookstore(n_items=150, seed=7)
    uniqueness_report(
        "book store (no planted bellwether)",
        bookstore,
        budgets=[10, 20, 40, 60, 80, 100],
    )
    mailorder = make_mailorder(n_items=120, seed=0)
    uniqueness_report(
        "mail order (planted [1-8, MD])",
        mailorder,
        budgets=[15, 35, 55, 75],
    )


if __name__ == "__main__":
    main()
