"""Query-driven approximate answering (the learned AQP tier).

The exact serving stack (:mod:`repro.serve` over the PR 7 cube tables)
answers warm queries without fact scans but still pays a rollup-sized
compute bill per query.  This package adds the ML-AQP tier on top (Savva
et al., 2020; adaptive variant 2019): every exact evaluation the server
performs is journaled as workload (:class:`WorkloadJournal`), a
deterministic learned surface is trained on that workload
(:func:`train_surface` / :class:`SurfaceModel`), and subsequent
``mode=approx`` queries are answered from the surface with a declared
tolerance — falling back to the exact path on any miss
(:class:`ApproxMiss`) and retraining when the store version or the
workload drifts (:class:`AqpEngine`).
"""

from .engine import AqpEngine
from .features import SubsetEncoder
from .journal import SCHEMA, WorkloadJournal
from .surface import (
    ApproxMiss,
    AqpBellwetherAnswer,
    AqpConfig,
    SurfaceModel,
    train_surface,
)

__all__ = [
    "ApproxMiss",
    "AqpBellwetherAnswer",
    "AqpConfig",
    "AqpEngine",
    "SCHEMA",
    "SubsetEncoder",
    "SurfaceModel",
    "train_surface",
    "WorkloadJournal",
]
