"""The learned Error(r | S) surface and its honesty bookkeeping.

Training (:func:`train_surface`) replays the workload journal's distinct
item subsets through the *exact* search at the current store version, then
fits one ridge regression per region: quantized subset features
(:class:`~repro.aqp.features.SubsetEncoder`) -> that region's exact rmse.
Everything else a bellwether answer needs — per-region example counts for
the subset, cost, coverage, feasibility under the criterion — is computed
*exactly* from a per-(region, item) counts matrix built once at train time
from region reads.  Only the rmse ordinate is learned, which is what makes
the approximate tier honest:

* the feasible region set of an approx answer equals the exact path's
  feasible set bit-for-bit (same counts, same costs, same criterion);
* an infeasible approx query is exactly as infeasible as the exact query;
* the declared tolerance bounds the rmse deviation: per quantized key the
  model remembers the worst training residual per region, and only answers
  when every feasible region has a finite remembered bound, so a replay of
  a journaled subset at the trained version deviates by at most that
  residual — and the estimate pads it with a safety factor, an
  unseen-mass prior that shrinks as the key accumulates observations, and
  an additive floor.

The ridge penalty scales with the row count (``lam = ridge * n_rows``), so
replicating the training workload k-fold leaves the solution — and hence
every residual bound — unchanged while the prior term shrinks: the
tolerance estimate is monotone non-increasing under workload replication,
the property the Hypothesis suite pins.

`/predict` answers cannot be bounded by an rmse residual (they are
per-item value vectors), so those are served from **artifacts**: exact
payloads replayed at train time for every journaled predict query, keyed
by (items, budget, region).  An artifact answer is bit-for-bit the exact
answer at the trained store version; anything off-artifact is a miss and
falls back.

Nothing here is stochastic — training is a deterministic function of the
journal and the store version; ``seed`` is stamped for provenance and so
downstream samplers can key off it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError, ReproError
from repro.ml import fit_ridge_per_row

from .features import SubsetEncoder

__all__ = [
    "ApproxMiss",
    "AqpBellwetherAnswer",
    "AqpConfig",
    "SurfaceModel",
    "train_surface",
]


class ApproxMiss(ReproError):
    """The model declines this query; the caller must take the exact path.

    ``reason`` is machine-readable and lands on the response + counters:
    ``unseen_key`` / ``uncovered_region`` / ``tolerance`` /
    ``version_drift`` / ``no_model`` / ``journal_error``.
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason


@dataclass(frozen=True)
class AqpConfig:
    """Knobs of the learned surface (all deterministic)."""

    ridge: float = 1e-3        # per-row L2 penalty on the region regressions
    safety: float = 2.0        # multiplier on the remembered worst residual
    floor: float = 1e-9        # additive tolerance floor
    u0: float = 0.05           # unseen-mass prior, decays as 1/(1 + n_key)
    quantization: int = 8      # feature grid resolution
    seed: int = 0              # provenance stamp; training is deterministic
    auto_retrain: bool = True  # retrain behind the write lock on drift
    drift_window: int = 16     # recent queries considered by the detector
    drift_threshold: float = 0.5  # miss-rate above which drift is declared

    def __post_init__(self) -> None:
        if self.ridge < 0 or self.floor < 0 or self.u0 < 0:
            raise ConfigError("ridge/floor/u0 must be non-negative")
        if self.safety < 1.0:
            raise ConfigError(
                f"safety must be >= 1 (it pads a worst residual), "
                f"got {self.safety}"
            )
        if not 0.0 < self.drift_threshold <= 1.0:
            raise ConfigError("drift_threshold must be in (0, 1]")


@dataclass(frozen=True)
class AqpBellwetherAnswer:
    """A bellwether answer from the surface (all fields query-ready)."""

    found: bool
    region_index: int | None
    cost: float | None
    coverage: float | None
    n_examples: int | None
    rmse: float | None           # predicted
    estimated_error: float       # the self-estimate e
    feasible: tuple[tuple[int, float], ...]  # (region index, predicted rmse)


def _artifact_key(items, budget, region_key) -> tuple:
    """Hashable identity of a predict query for artifact lookup."""
    ids = None if items is None else tuple(int(i) for i in items)
    b = None if budget is None else float(budget)
    r = None if region_key is None else json.dumps(region_key, sort_keys=True)
    return (ids, b, r)


class SurfaceModel:
    """An immutable trained surface; answers queries or raises ApproxMiss."""

    def __init__(
        self,
        *,
        model_version: int,
        store_version: int,
        task,
        encoder: SubsetEncoder,
        regions: tuple,
        costs: np.ndarray,
        counts: np.ndarray,
        min_examples: int,
        coefs: np.ndarray,
        bounds: dict,
        key_counts: dict,
        artifacts: dict,
        config: AqpConfig,
        n_records: int,
    ):
        self.model_version = int(model_version)
        self.store_version = int(store_version)
        self.task = task
        self.encoder = encoder
        self.regions = regions
        self.costs = costs
        self.counts = counts
        self.min_examples = int(min_examples)
        self.coefs = coefs
        self.bounds = bounds
        self.key_counts = key_counts
        self.artifacts = artifacts
        self.config = config
        self.n_records = int(n_records)

    # ------------------------------------------------------------- estimates

    def _estimate(self, key, feasible_idx: np.ndarray) -> float:
        """The self-estimate e for a query with this key and feasible set."""
        bound = self.bounds.get(key)
        if bound is None:
            raise ApproxMiss("unseen_key", f"key {key} never trained on")
        worst = bound[feasible_idx]
        if not np.all(np.isfinite(worst)):
            raise ApproxMiss(
                "uncovered_region",
                "a feasible region has no residual bound for this key",
            )
        n_key = self.key_counts.get(key, 0)
        c = self.config
        return float(
            c.safety * worst.max(initial=0.0)
            + c.u0 / (1.0 + n_key)
            + c.floor
        )

    # ------------------------------------------------------------ bellwether

    def answer_bellwether(
        self, budget, items, tolerance=None
    ) -> AqpBellwetherAnswer:
        """Answer from the surface, or raise :class:`ApproxMiss`.

        Feasibility, cost, coverage and example counts are exact; only the
        rmse ordinate is predicted.  Raises ``ApproxMiss`` when the key was
        never trained, a feasible region lacks a bound, or the
        self-estimate exceeds the requested tolerance.
        """
        key = self.encoder.key(items)
        if items is None:
            n_sr = self.counts.sum(axis=1)
            n_total = self.encoder.n_items
        else:
            cols = self.encoder.columns_of(items)
            n_sr = self.counts[:, cols].sum(axis=1)
            n_total = len(cols)
        candidates = np.flatnonzero(n_sr >= self.min_examples)
        criterion = (
            self.task.criterion
            if budget is None
            else self.task.criterion.with_budget(budget)
        )
        coverage = n_sr / max(n_total, 1)
        feasible_idx = np.asarray(
            [
                j
                for j in candidates
                if criterion.admits(float(self.costs[j]), float(coverage[j]))
            ],
            dtype=np.int64,
        )
        if len(feasible_idx) == 0:
            return AqpBellwetherAnswer(
                found=False,
                region_index=None,
                cost=None,
                coverage=None,
                n_examples=None,
                rmse=None,
                estimated_error=0.0,
                feasible=(),
            )
        est = self._estimate(key, feasible_idx)
        if tolerance is not None and est > tolerance:
            raise ApproxMiss(
                "tolerance",
                f"self-estimate {est:.3g} exceeds requested "
                f"tolerance {tolerance:.3g}",
            )
        x = np.concatenate(([1.0], self.encoder.encode(items)))
        preds = np.maximum(self.coefs[feasible_idx] @ x, 0.0)
        objective = np.asarray(
            [
                criterion.objective(
                    float(preds[k]),
                    float(self.costs[j]),
                    float(coverage[j]),
                )
                for k, j in enumerate(feasible_idx)
            ]
        )
        best = int(np.argmin(objective))  # first minimum, like min()
        j = int(feasible_idx[best])
        return AqpBellwetherAnswer(
            found=True,
            region_index=j,
            cost=float(self.costs[j]),
            coverage=float(coverage[j]),
            n_examples=int(n_sr[j]),
            rmse=float(preds[best]),
            estimated_error=est,
            feasible=tuple(
                (int(jj), float(preds[k]))
                for k, jj in enumerate(feasible_idx)
            ),
        )

    # --------------------------------------------------------------- predict

    def answer_predict(self, items, budget, region_key) -> dict:
        """The exact replayed payload for a journaled predict query.

        Artifact answers are bit-for-bit the exact path's output at the
        trained store version; an unknown (items, budget, region) triple is
        an ``unseen_key`` miss.
        """
        payload = self.artifacts.get(_artifact_key(items, budget, region_key))
        if payload is None:
            raise ApproxMiss(
                "unseen_key", "predict query not in the trained workload"
            )
        return payload

    # ---------------------------------------------------------------- status

    def status(self) -> dict:
        return {
            "model_version": self.model_version,
            "store_version": self.store_version,
            "n_trained_keys": len(self.bounds),
            "n_artifacts": len(self.artifacts),
            "n_records": self.n_records,
            "n_regions": len(self.regions),
            "config": {
                "ridge": self.config.ridge,
                "safety": self.config.safety,
                "floor": self.config.floor,
                "u0": self.config.u0,
                "quantization": self.config.quantization,
                "seed": self.config.seed,
            },
        }


# ---------------------------------------------------------------- training


def _counts_matrix(store, encoder: SubsetEncoder) -> np.ndarray:
    """Exact per-(region, item) example counts, from region reads only."""
    counts = np.zeros((len(store.regions()), encoder.n_items), dtype=np.int64)
    for j, region in enumerate(store.regions()):
        block = store.read(region)
        if block.n_examples:
            cols = encoder.columns_of(block.item_ids)
            counts[j] = np.bincount(cols, minlength=encoder.n_items)
    return counts


def train_surface(
    *,
    search,
    journal_records: list[dict],
    encoder: SubsetEncoder,
    config: AqpConfig,
    model_version: int,
    costs: dict | None = None,
    predict_fn=None,
) -> SurfaceModel:
    """Fit a :class:`SurfaceModel` on the journaled workload.

    ``search`` must be the server's warm :class:`BasicBellwetherSearch` at
    the store version the model is stamped with; training calls its
    ``evaluate_all`` for every distinct journaled subset, so subsets the
    exact path already served come straight from its profile cache.
    ``predict_fn(items, region_key, budget)`` (optional) replays journaled
    predict queries into exact artifacts.
    """
    store = search.store
    task = search.task
    regions = tuple(store.regions())
    index_of = {r: j for j, r in enumerate(regions)}
    known_costs = costs or {}
    cost_vec = np.asarray(
        [
            float(known_costs.get(region, task.cost(region)))
            for region in regions
        ]
    )
    counts = _counts_matrix(store, encoder)
    d = encoder.n_features

    # Distinct training subsets (None = all items), observation counts per
    # quantized key, and the journaled predict queries to replay.
    subsets: dict[tuple | None, list | None] = {}
    key_counts: dict[tuple, int] = {}
    predict_specs: dict[tuple, tuple] = {}
    for rec in journal_records:
        if rec["kind"] == "delta":
            continue
        items = rec.get("items")
        ids = None if items is None else tuple(int(i) for i in items)
        subsets.setdefault(ids, None if ids is None else list(ids))
        key = encoder.key(ids)
        key_counts[key] = key_counts.get(key, 0) + 1
        if rec["kind"] == "predict":
            akey = _artifact_key(ids, rec.get("budget"), rec.get("region"))
            predict_specs[akey] = (ids, rec.get("budget"), rec.get("region"))

    # Exact profiles per subset -> per-region design rows and targets.
    rows_x: dict[int, list] = {j: [] for j in range(len(regions))}
    rows_y: dict[int, list] = {j: [] for j in range(len(regions))}
    profiles = []
    for ids, id_list in subsets.items():
        profile = search.evaluate_all(item_ids=id_list)
        x = np.concatenate(([1.0], encoder.encode(id_list)))
        key = encoder.key(id_list)
        profiles.append((key, x, profile))
        for rr in profile:
            j = index_of[rr.region]
            rows_x[j].append(x)
            rows_y[j].append(float(rr.rmse))

    # Per-region ridge; the penalty scales with the row count so workload
    # replication leaves the fit (and its residuals) invariant.
    coefs = np.zeros((len(regions), d + 1))
    for j in range(len(regions)):
        if not rows_x[j]:
            continue
        coefs[j] = fit_ridge_per_row(
            np.asarray(rows_x[j]), np.asarray(rows_y[j]), config.ridge
        )

    # Per-key worst residual per region (inf where the key never saw the
    # region as a candidate).
    bounds: dict[tuple, np.ndarray] = {}
    for key, x, profile in profiles:
        bound = bounds.setdefault(
            key, np.full(len(regions), np.inf)
        )
        for rr in profile:
            j = index_of[rr.region]
            resid = abs(float(rr.rmse) - max(float(coefs[j] @ x), 0.0))
            bound[j] = resid if not np.isfinite(bound[j]) else max(
                bound[j], resid
            )

    # Exact predict artifacts (None = the query no longer answers at this
    # version; skipped, so a replay misses and falls back).
    artifacts: dict[tuple, dict] = {}
    if predict_fn is not None:
        for akey, (ids, budget, region_key) in predict_specs.items():
            payload = predict_fn(
                None if ids is None else list(ids), region_key, budget
            )
            if payload is not None:
                artifacts[akey] = payload

    return SurfaceModel(
        model_version=model_version,
        store_version=int(store.version),
        task=task,
        encoder=encoder,
        regions=regions,
        costs=cost_vec,
        counts=counts,
        min_examples=int(search.min_examples),
        coefs=coefs,
        bounds=bounds,
        key_counts=key_counts,
        artifacts=artifacts,
        config=config,
        n_records=len(journal_records),
    )
