"""Versioned workload journal: the training data of the approximate tier.

Every exact (region, subset, budget) -> (error, winner) evaluation the
server performs is appended here as one JSON line, stamped with the store
version it was computed at.  The learned surface trains on these records;
the adaptive-retraining literature (Savva et al., 2019) calls this the
*query workload stream*.

Format: line 1 is a header ``{"schema": "aqp-workload-v1"}``; each further
line is one record.  The file is append-only and the append is guarded by
an internal lock, because journal writes happen on the server's read path
(many concurrent reader threads may be journalling at once).  Reads are
strict: a truncated tail or an undecodable line raises
:class:`~repro.storage.StorageError` — the engine reacts by degrading to
exact-only serving rather than training on garbage.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.runtime import AQP_JOURNAL_IO, TrackedLock
from repro.obs import get_registry
from repro.obs.catalog import AQP_JOURNAL_ERRORS, AQP_JOURNAL_RECORDS
from repro.storage import StorageError

__all__ = ["SCHEMA", "WorkloadJournal"]

SCHEMA = "aqp-workload-v1"

#: Record kinds the journal accepts.
KINDS = ("bellwether", "predict", "delta")


class WorkloadJournal:
    """Append-only JSONL journal of exact evaluations, by store version."""

    def __init__(self, path):
        self.path = Path(path)
        self._lock = TrackedLock(AQP_JOURNAL_IO)
        self._records = get_registry().counter(AQP_JOURNAL_RECORDS)
        self._errors = get_registry().counter(AQP_JOURNAL_ERRORS)

    # -------------------------------------------------------------- writing

    def append(self, record: dict) -> None:
        """Append one record (adds the header first if the file is new)."""
        kind = record.get("kind")
        if kind not in KINDS:
            raise StorageError(f"journal record kind {kind!r} not in {KINDS}")
        if "store_version" not in record:
            raise StorageError("journal record missing store_version")
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists()
                with open(self.path, "a", encoding="utf-8") as fh:
                    if fresh:
                        fh.write(json.dumps({"schema": SCHEMA}) + "\n")
                    fh.write(line + "\n")
            except OSError as exc:
                self._errors.inc()
                raise StorageError(
                    f"cannot append to workload journal {self.path}: {exc}"
                ) from exc
        self._records.inc()

    def log_bellwether(
        self, *, store_version: int, budget, items, winner: str | None
    ) -> None:
        self.append(
            {
                "kind": "bellwether",
                "store_version": int(store_version),
                "budget": None if budget is None else float(budget),
                "items": None if items is None else [int(i) for i in items],
                "winner": winner,
            }
        )

    def log_predict(
        self, *, store_version: int, budget, items, region=None
    ) -> None:
        """``region`` is the JSON region key (``region_to_json``) or None."""
        self.append(
            {
                "kind": "predict",
                "store_version": int(store_version),
                "budget": None if budget is None else float(budget),
                "items": None if items is None else [int(i) for i in items],
                "region": region,
            }
        )

    def log_delta(self, *, store_version: int) -> None:
        """Mark a store-version shift (an ``apply_delta``) in the stream."""
        self.append({"kind": "delta", "store_version": int(store_version)})

    # -------------------------------------------------------------- reading

    def read(self) -> list[dict]:
        """All records, strictly validated; ``[]`` if the file is absent."""
        if not self.path.exists():
            return []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
        except OSError as exc:
            self._errors.inc()
            raise StorageError(f"cannot read workload journal: {exc}") from exc
        # A well-formed journal ends with a newline, so the final split
        # element is empty; anything else is a torn append.
        if lines and lines[-1] == "":
            lines.pop()
        else:
            self._errors.inc()
            raise StorageError(
                f"workload journal {self.path} has a truncated final line"
            )
        if not lines:
            self._errors.inc()
            raise StorageError(f"workload journal {self.path} is empty")
        records: list[dict] = []
        for lineno, line in enumerate(lines, start=1):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                self._errors.inc()
                raise StorageError(
                    f"workload journal {self.path} line {lineno} is not "
                    f"valid JSON: {exc}"
                ) from exc
            if lineno == 1:
                if not isinstance(obj, dict) or obj.get("schema") != SCHEMA:
                    self._errors.inc()
                    raise StorageError(
                        f"workload journal {self.path} has bad header "
                        f"{obj!r} (want schema {SCHEMA!r})"
                    )
                continue
            if (
                not isinstance(obj, dict)
                or obj.get("kind") not in KINDS
                or "store_version" not in obj
            ):
                self._errors.inc()
                raise StorageError(
                    f"workload journal {self.path} line {lineno} is not a "
                    f"valid record: {obj!r}"
                )
            records.append(obj)
        return records

    def queries(self) -> list[dict]:
        """Only the query records (``delta`` markers filtered out)."""
        return [r for r in self.read() if r["kind"] != "delta"]

    def __len__(self) -> int:
        return len(self.read())
