"""Quantized subset features for the learned error surface.

The approximate tier (ML-AQP style: Savva et al., 2020) never touches the
fact data at query time, so an item-subset query S must be described by a
small, fixed-width feature vector.  :class:`SubsetEncoder` maps S onto the
item hierarchies' *base cells* (the finest lattice level of Section 6.1):
one inclusion fraction per base cell — what share of that cell's items the
query covers — plus the overall subset fraction, every coordinate snapped
to a ``1/quantization`` grid.

Quantization is what makes the workload learnable and the model honest:

* similar subsets collide onto the same **key** (the tuple of quantized
  codes), so a handful of journaled queries cover a whole neighbourhood of
  future ones;
* the trained key set is finite (``(q+1)^d``), so the serving gate can ask
  "was this key observed in training?" and fall back to the exact path on
  a miss instead of extrapolating.

The encoding is a pure function of the item table and the hierarchies —
no randomness, no data scan — so two encoders built from the same task are
interchangeable and a model round-trips across processes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError

__all__ = ["SubsetEncoder"]


class SubsetEncoder:
    """Encode item subsets as quantized per-base-cell inclusion fractions.

    Parameters
    ----------
    task:
        The problem definition; supplies the item ids (column order of the
        encoding) and the item table.
    hierarchies:
        Optional :class:`~repro.dimensions.ItemHierarchies`; with them each
        item lands in its base cell (finest lattice level), without them
        the whole item set is one cell and the encoding degenerates to the
        subset-size fraction alone.
    quantization:
        Grid resolution q: fractions are snapped to multiples of ``1/q``.
    """

    def __init__(self, task, hierarchies=None, quantization: int = 8):
        if quantization < 1:
            raise ConfigError(
                f"quantization must be >= 1, got {quantization}"
            )
        self.quantization = int(quantization)
        ids = np.asarray(task.item_ids)
        self._ids = ids.astype(np.int64)
        self._col_of_id = {int(i): j for j, i in enumerate(self._ids)}
        if hierarchies is not None:
            cell_of_item, cells = hierarchies.encode_items(task.item_table)
            self._cell_of_item = cell_of_item.astype(np.int64)
            self.n_cells = len(cells)
        else:
            self._cell_of_item = np.zeros(len(ids), dtype=np.int64)
            self.n_cells = 1
        self._cell_sizes = np.bincount(
            self._cell_of_item, minlength=self.n_cells
        ).astype(np.float64)

    @property
    def n_items(self) -> int:
        return len(self._ids)

    @property
    def n_features(self) -> int:
        """Feature width d: one fraction per base cell + the size fraction."""
        return self.n_cells + 1

    # ------------------------------------------------------------- encoding

    def columns_of(self, items) -> np.ndarray:
        """Item-table column indices of the given ids (validated)."""
        try:
            return np.asarray(
                [self._col_of_id[int(i)] for i in items], dtype=np.int64
            )
        except KeyError as exc:
            raise ConfigError(f"unknown item id {exc.args[0]}") from exc

    def codes(self, items) -> np.ndarray:
        """Quantized integer codes in ``0..q`` per feature coordinate."""
        q = self.quantization
        if items is None:
            fracs = np.ones(self.n_features, dtype=np.float64)
        else:
            cols = self.columns_of(items)
            per_cell = np.bincount(
                self._cell_of_item[cols], minlength=self.n_cells
            ).astype(np.float64)
            sizes = np.where(self._cell_sizes > 0, self._cell_sizes, 1.0)
            fracs = np.append(per_cell / sizes, len(cols) / self.n_items)
        return np.rint(np.clip(fracs, 0.0, 1.0) * q).astype(np.int64)

    def key(self, items) -> tuple[int, ...]:
        """The hashable quantized key the serving gate checks for warmth."""
        return tuple(int(c) for c in self.codes(items))

    def encode(self, items) -> np.ndarray:
        """The float feature vector (quantized codes back on the unit grid)."""
        return self.codes(items).astype(np.float64) / self.quantization

    def signature(self) -> dict:
        """Geometry stamp: models trained under one signature interoperate."""
        return {
            "n_items": int(self.n_items),
            "n_cells": int(self.n_cells),
            "quantization": int(self.quantization),
        }
