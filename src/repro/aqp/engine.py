"""The AQP engine: journal + model lifecycle + drift detection.

One :class:`AqpEngine` lives inside a :class:`~repro.serve.ServerState`.
It owns the workload journal and the current :class:`SurfaceModel`, but it
is **not** internally synchronized for model access — the server holds its
read lock while answering and its write lock while retraining, so the
model reference swap is as safe as every other piece of serving state.
What the engine does guard (with the serve layer's instrument lock, passed
in) is the metrics registry, which is single-threaded by design.

Drift has two faces here:

* **version drift** — the store moved past the model's trained version
  (an ``apply_delta``); detected per query, answered exactly, and repaired
  by the server retraining behind the write lock;
* **workload drift** — recent queries keep missing the trained key set;
  detected by a windowed miss-rate and surfaced via
  :attr:`drift_detected`, the adaptive-retraining trigger of Savva et
  al. (2019).

A journal that fails to read (truncated, corrupt) flips the engine into
**degraded** mode: every approx query misses with ``journal_error`` and is
served exactly until a later retrain succeeds.
"""

from __future__ import annotations

import threading
from collections import deque
from pathlib import Path

from repro.obs import get_registry
from repro.obs.catalog import (
    AQP_APPROX_ANSWERS,
    AQP_DRIFT_RETRAINS,
    AQP_FALLBACKS,
    AQP_QUERIES,
    AQP_TRAINS,
)
from repro.storage import StorageError

from .features import SubsetEncoder
from .journal import WorkloadJournal
from .surface import ApproxMiss, AqpConfig, SurfaceModel, train_surface

__all__ = ["AqpEngine"]

_REGISTRY = get_registry()
_QUERIES = _REGISTRY.counter(AQP_QUERIES)
_APPROX_ANSWERS = _REGISTRY.counter(AQP_APPROX_ANSWERS)
_FALLBACKS = _REGISTRY.counter(AQP_FALLBACKS)
_TRAINS = _REGISTRY.counter(AQP_TRAINS)
_DRIFT_RETRAINS = _REGISTRY.counter(AQP_DRIFT_RETRAINS)


class AqpEngine:
    """Owns the workload journal and the (swappable) trained surface."""

    def __init__(
        self,
        aqp_dir,
        *,
        task,
        hierarchies=None,
        config: AqpConfig | None = None,
        instrument_lock: threading.Lock | None = None,
    ):
        self.dir = Path(aqp_dir)
        self.config = config or AqpConfig()
        self.journal = WorkloadJournal(self.dir / "workload.jsonl")
        self.encoder = SubsetEncoder(
            task, hierarchies, quantization=self.config.quantization
        )
        self.model: SurfaceModel | None = None
        self.degraded = False
        self._ilock = instrument_lock or threading.Lock()
        self._next_model_version = 1
        self._recent_misses: deque[bool] = deque(
            maxlen=self.config.drift_window
        )

    # -------------------------------------------------------------- counters

    def _note_query(self) -> None:
        with self._ilock:
            _QUERIES.inc()

    def _note_hit(self) -> None:
        with self._ilock:
            _APPROX_ANSWERS.inc()
            self._recent_misses.append(False)

    def note_fallback(self) -> None:
        """One approx-requested query answered by the exact path."""
        with self._ilock:
            _FALLBACKS.inc()
            self._recent_misses.append(True)

    # ----------------------------------------------------------------- drift

    @property
    def drift_detected(self) -> bool:
        """Windowed miss-rate above threshold = the workload moved."""
        with self._ilock:
            window = list(self._recent_misses)
        if len(window) < self.config.drift_window:
            return False
        rate = sum(window) / len(window)
        return rate > self.config.drift_threshold

    # --------------------------------------------------------------- answers

    def _gate(self, store_version: int) -> SurfaceModel:
        """The model, if it may answer at this store version."""
        if self.degraded:
            raise ApproxMiss(
                "journal_error", "journal unreadable; serving exact-only"
            )
        model = self.model
        if model is None:
            raise ApproxMiss("no_model", "no trained surface yet")
        if model.store_version != int(store_version):
            raise ApproxMiss(
                "version_drift",
                f"model trained at store v{model.store_version}, "
                f"store is at v{store_version}",
            )
        return model

    def try_answer_bellwether(self, store_version: int, budget, ids, tolerance):
        """Surface answer or :class:`ApproxMiss` (caller holds the read lock)."""
        self._note_query()
        model = self._gate(store_version)
        answer = model.answer_bellwether(budget, ids, tolerance)
        self._note_hit()
        return model, answer

    def try_answer_predict(self, store_version: int, ids, budget, region_key):
        """Artifact answer or :class:`ApproxMiss` (caller holds the read lock)."""
        self._note_query()
        model = self._gate(store_version)
        payload = model.answer_predict(ids, budget, region_key)
        self._note_hit()
        return model, payload

    # -------------------------------------------------------------- training

    def train(
        self,
        search,
        *,
        costs=None,
        predict_fn=None,
        drift: bool = False,
    ) -> SurfaceModel:
        """(Re)train from the journal.  Caller holds the write lock.

        A journal read failure flips degraded mode (exact-only serving)
        and re-raises the :class:`~repro.storage.StorageError`.
        """
        try:
            records = self.journal.read()
        except StorageError:
            self.degraded = True
            raise
        model = train_surface(
            search=search,
            journal_records=records,
            encoder=self.encoder,
            config=self.config,
            model_version=self._next_model_version,
            costs=costs,
            predict_fn=predict_fn,
        )
        self._next_model_version += 1
        self.model = model
        self.degraded = False
        with self._ilock:
            _TRAINS.inc()
            if drift:
                _DRIFT_RETRAINS.inc()
            self._recent_misses.clear()
        return model

    # ---------------------------------------------------------------- status

    def status(self) -> dict:
        with self._ilock:
            window = list(self._recent_misses)
        return {
            "enabled": True,
            "degraded": self.degraded,
            "trained": self.model is not None,
            "journal_path": str(self.journal.path),
            "drift_window_misses": sum(window),
            "drift_window_size": len(window),
            "model": None if self.model is None else self.model.status(),
        }
