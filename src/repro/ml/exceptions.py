"""Exceptions for the ML substrate."""

from repro.exceptions import ReproError


class ModelError(ReproError):
    """Base class for modeling errors."""


class FitError(ModelError):
    """A model could not be fit (too few examples, shape mismatch, ...)."""


class NotFittedError(ModelError):
    """predict() was called before fit()."""
