"""Exceptions for the ML substrate."""


class ModelError(Exception):
    """Base class for modeling errors."""


class FitError(ModelError):
    """A model could not be fit (too few examples, shape mismatch, ...)."""


class NotFittedError(ModelError):
    """predict() was called before fit()."""
