"""ML substrate: WLS/OLS regression, sufficient statistics, error estimation."""

from .classify import (
    ClassificationCVEstimator,
    GaussianNB,
    GaussianNBStats,
    TrainingSetClassificationEstimator,
    misclassification_rate,
)
from .exceptions import FitError, ModelError, NotFittedError
from .linear import LinearRegression, fit_ridge_per_row
from .metrics import (
    CrossValidationEstimator,
    ErrorEstimate,
    ErrorEstimator,
    TrainingSetEstimator,
    default_model_factory,
    mse,
    rmse,
)
from .regression_tree import RegressionTree
from .suffstats import (
    LinearSuffStats,
    RowProducts,
    StackedSuffStats,
    add_intercept,
    prefix_stats,
)

__all__ = [
    "ClassificationCVEstimator",
    "CrossValidationEstimator",
    "GaussianNB",
    "GaussianNBStats",
    "TrainingSetClassificationEstimator",
    "misclassification_rate",
    "ErrorEstimate",
    "ErrorEstimator",
    "FitError",
    "LinearRegression",
    "LinearSuffStats",
    "ModelError",
    "NotFittedError",
    "RegressionTree",
    "RowProducts",
    "StackedSuffStats",
    "TrainingSetEstimator",
    "add_intercept",
    "default_model_factory",
    "fit_ridge_per_row",
    "mse",
    "prefix_stats",
    "rmse",
]
