"""Classification models with mergeable sufficient statistics.

Section 6.4's first route: for classification models, per-subset error
computation reduces to data-cube aggregation whenever the model is
*distributively or algebraically decomposable* (citing the prediction-cubes
work).  Gaussian naive Bayes is the textbook decomposable classifier — its
sufficient statistics are per-class counts, sums and sums of squares, which
merge by addition exactly like Theorem 1's regression statistics.

This module provides:

* :class:`GaussianNBStats` — the mergeable statistic (``+`` = union of
  disjoint example sets);
* :class:`GaussianNB` — the classifier, fit from raw data or statistics;
* misclassification-rate estimators mirroring the regression ones, so
  classification bellwether tasks plug into the same searches (the
  ``ErrorEstimate.rmse`` field then carries the misclassification rate).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError

from .exceptions import FitError, NotFittedError
from .metrics import ErrorEstimate

_VAR_FLOOR = 1e-9


@dataclass(frozen=True)
class GaussianNBStats:
    """Per-class first and second moments — a distributive statistic.

    Attributes are keyed by dense class index: ``counts[c]``,
    ``sums[c, j]`` and ``sumsq[c, j]`` over examples of class ``c``.
    """

    classes: tuple[float, ...]
    counts: np.ndarray  # (k,)
    sums: np.ndarray    # (k, p)
    sumsq: np.ndarray   # (k, p)

    @classmethod
    def from_data(cls, x: np.ndarray, y: np.ndarray) -> "GaussianNBStats":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise FitError(f"bad shapes x={x.shape} y={y.shape}")
        classes = tuple(sorted(set(float(v) for v in y)))
        k, p = len(classes), x.shape[1]
        counts = np.zeros(k)
        sums = np.zeros((k, p))
        sumsq = np.zeros((k, p))
        index = {c: i for i, c in enumerate(classes)}
        for c, i in index.items():
            mask = y == c
            counts[i] = mask.sum()
            sums[i] = x[mask].sum(axis=0)
            sumsq[i] = (x[mask] ** 2).sum(axis=0)
        return cls(classes, counts, sums, sumsq)

    @classmethod
    def zeros(cls, classes: tuple[float, ...], p: int) -> "GaussianNBStats":
        k = len(classes)
        return cls(classes, np.zeros(k), np.zeros((k, p)), np.zeros((k, p)))

    def __add__(self, other: "GaussianNBStats") -> "GaussianNBStats":
        """Merge statistics of disjoint example sets (class-aligned union)."""
        classes = tuple(sorted(set(self.classes) | set(other.classes)))
        p = self.sums.shape[1]
        if other.sums.shape[1] != p:
            raise FitError("cannot merge stats with different feature counts")
        merged = GaussianNBStats.zeros(classes, p)
        counts = merged.counts.copy()
        sums = merged.sums.copy()
        sumsq = merged.sumsq.copy()
        for part in (self, other):
            for i, c in enumerate(part.classes):
                j = classes.index(c)
                counts[j] += part.counts[i]
                sums[j] += part.sums[i]
                sumsq[j] += part.sumsq[i]
        return GaussianNBStats(classes, counts, sums, sumsq)

    @property
    def n(self) -> int:
        return int(self.counts.sum())


class GaussianNB:
    """Gaussian naive Bayes, fit from data or pre-merged statistics."""

    def __init__(self):
        self._stats: GaussianNBStats | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianNB":
        self._stats = GaussianNBStats.from_data(x, y)
        if len(self._stats.classes) < 1:
            raise FitError("no classes in training data")
        return self

    def fit_stats(self, stats: GaussianNBStats) -> "GaussianNB":
        if stats.n == 0:
            raise FitError("cannot fit on empty statistics")
        self._stats = stats
        return self

    @property
    def is_fitted(self) -> bool:
        return self._stats is not None

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._stats is None:
            raise NotFittedError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        s = self._stats
        present = s.counts > 0
        log_post = np.full((x.shape[0], len(s.classes)), -np.inf)
        total = s.counts.sum()
        for i in np.flatnonzero(present):
            n = s.counts[i]
            mean = s.sums[i] / n
            var = np.maximum(s.sumsq[i] / n - mean**2, _VAR_FLOOR)
            log_lik = -0.5 * (
                np.log(2 * np.pi * var) + (x - mean) ** 2 / var
            ).sum(axis=1)
            log_post[:, i] = np.log(n / total) + log_lik
        chosen = np.argmax(log_post, axis=1)
        return np.array([s.classes[c] for c in chosen])


def misclassification_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise FitError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    return float(np.mean(y_true != y_pred))


ClassifierFactory = Callable[[], GaussianNB]


class ClassificationCVEstimator:
    """k-fold cross-validated misclassification rate.

    Returns an :class:`~repro.ml.ErrorEstimate` whose ``rmse`` field carries
    the error *rate*, so classification tasks reuse every bellwether search
    unchanged (Definition 1 only requires an error measure to minimize).
    """

    def __init__(
        self,
        n_folds: int = 10,
        seed: int = 0,
        model_factory: ClassifierFactory = GaussianNB,
    ):
        if n_folds < 2:
            raise ConfigError(f"n_folds must be >= 2, got {n_folds}")
        self.n_folds = n_folds
        self.seed = seed
        self.model_factory = model_factory

    def estimate(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray | None = None
    ) -> ErrorEstimate:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        n = len(y)
        if n < 2:
            return TrainingSetClassificationEstimator(
                self.model_factory
            ).estimate(x, y)
        k = min(self.n_folds, n)
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        folds = np.array_split(order, k)
        rates: list[float] = []
        for test in folds:
            train = np.ones(n, dtype=bool)
            train[test] = False
            model = self.model_factory().fit(x[train], y[train])
            rates.append(misclassification_rate(y[test], model.predict(x[test])))
        return ErrorEstimate(
            rmse=float(np.mean(rates)),
            kind="cv",
            fold_rmses=tuple(rates),
            dof=k - 1,
        )


class TrainingSetClassificationEstimator:
    """Training-set misclassification rate (one fit, no refits)."""

    def __init__(self, model_factory: ClassifierFactory = GaussianNB):
        self.model_factory = model_factory

    def estimate(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray | None = None
    ) -> ErrorEstimate:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        model = self.model_factory().fit(x, y)
        rate = misclassification_rate(y, model.predict(x))
        return ErrorEstimate(rmse=rate, kind="training")
