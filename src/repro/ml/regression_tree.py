"""A compact CART-style regression tree.

Two roles in this reproduction:

* a conventional predictive model to contrast with bellwether trees (which
  store a *bellwether region* per leaf rather than a constant prediction);
* the machinery behind the Section 7.3 synthetic generator, which labels
  items with a random decision tree.

Numeric features only; splits minimize the weighted child variance
(equivalently, maximize variance reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import FitError, NotFittedError


@dataclass
class _Node:
    prediction: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """Binary regression tree minimizing squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_leaf:
        Minimum examples per leaf.
    """

    def __init__(self, max_depth: int = 6, min_leaf: int = 5):
        if max_depth < 0 or min_leaf < 1:
            raise FitError("max_depth must be >= 0 and min_leaf >= 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._root: _Node | None = None

    def fit(self, x: np.ndarray, y: np.ndarray, w: np.ndarray | None = None) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise FitError(f"bad shapes x={x.shape} y={y.shape}")
        if x.shape[0] == 0:
            raise FitError("cannot fit on zero examples")
        self._root = self._build(x, y, depth=0)
        return self

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> tuple[int, float, float] | None:
        """(feature, threshold, sse_after) of the best split, or None."""
        n, p = x.shape
        total_sse = float(((y - y.mean()) ** 2).sum())
        best: tuple[int, float, float] | None = None
        for j in range(p):
            order = np.argsort(x[:, j], kind="stable")
            xs = x[order, j]
            ys = y[order]
            # prefix sums for O(1) per-split SSE
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total_sum, total_sq = csum[-1], csq[-1]
            for k in range(self.min_leaf, n - self.min_leaf + 1):
                if k < n and xs[k - 1] == xs[k]:
                    continue  # not a valid cut point
                left_sse = csq[k - 1] - csum[k - 1] ** 2 / k
                right_n = n - k
                right_sum = total_sum - csum[k - 1]
                right_sse = (total_sq - csq[k - 1]) - right_sum**2 / right_n
                sse_after = float(left_sse + right_sse)
                if best is None or sse_after < best[2]:
                    threshold = (xs[k - 1] + xs[k]) / 2.0 if k < n else xs[k - 1]
                    best = (j, float(threshold), sse_after)
        if best is None or best[2] >= total_sse - 1e-12:
            return None
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_leaf:
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        j, threshold, __ = split
        mask = x[:, j] < threshold
        if not mask.any() or mask.all():
            return node
        node.feature = j
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] < node.threshold else node.right
            out[i] = node.prediction
        return out

    @property
    def n_leaves(self) -> int:
        if self._root is None:
            raise NotFittedError("tree is not fitted")
        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)
        return count(self._root)

    @property
    def depth(self) -> int:
        if self._root is None:
            raise NotFittedError("tree is not fitted")
        def d(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))
        return d(self._root)
