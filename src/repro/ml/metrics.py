"""Error measures and estimators: cross-validation and training-set error.

Section 2 of the paper defines both estimates; Section 7 uses 10-fold
cross-validation RMSE for the headline experiments and training-set error for
Figure 7(c), arguing that for linear models the two behave almost
identically (our Fig 7c bench reproduces that claim).

Every estimator returns an :class:`ErrorEstimate` carrying enough information
to build a confidence interval:

* cross-validation — a t-interval over the per-fold errors (the paper's
  "confidence interval of the cross-validation error ... based on the
  variance of the n error values");
* training-set — a chi-square interval from ``SSE/σ² ~ χ²(n−p)``.

Confidence intervals drive Figure 7(b)/9(b)'s uniqueness analysis and the
bellwether cube's lowest-upper-confidence-bound prediction rule.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.exceptions import ConfigError

from .exceptions import FitError
from .linear import LinearRegression

ModelFactory = Callable[[], LinearRegression]


def default_model_factory() -> LinearRegression:
    return LinearRegression()


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise FitError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    return float(np.mean((y_true - y_pred) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mse(y_true, y_pred)))


@dataclass(frozen=True)
class ErrorEstimate:
    """A point error estimate plus what is needed for confidence intervals."""

    rmse: float
    kind: str  # "cv" or "training"
    fold_rmses: tuple[float, ...] | None = None
    sse: float | None = None
    dof: int = 0

    def interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Two-sided confidence interval for the true error."""
        if not 0.0 < confidence < 1.0:
            raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
        if self.fold_rmses is not None and len(self.fold_rmses) >= 2:
            folds = np.asarray(self.fold_rmses)
            k = len(folds)
            se = float(folds.std(ddof=1)) / np.sqrt(k)
            t = sps.t.ppf(0.5 + confidence / 2.0, df=k - 1)
            return (max(self.rmse - t * se, 0.0), self.rmse + t * se)
        if self.sse is not None and self.dof > 0:
            hi_q = sps.chi2.ppf(0.5 - confidence / 2.0, df=self.dof)
            lo_q = sps.chi2.ppf(0.5 + confidence / 2.0, df=self.dof)
            if self.sse == 0.0:
                return (0.0, 0.0)
            return (
                float(np.sqrt(self.sse / lo_q)),
                float(np.sqrt(self.sse / hi_q)) if hi_q > 0 else float("inf"),
            )
        return (self.rmse, self.rmse)

    def upper(self, confidence: float = 0.95) -> float:
        return self.interval(confidence)[1]

    def lower(self, confidence: float = 0.95) -> float:
        return self.interval(confidence)[0]

    def contains(self, value: float, confidence: float = 0.95) -> bool:
        """Is ``value`` inside the interval (i.e. indistinguishable)?"""
        lo, hi = self.interval(confidence)
        return lo <= value <= hi


class ErrorEstimator:
    """Interface: estimate the error of a model family on a dataset."""

    def estimate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray | None = None,
    ) -> ErrorEstimate:
        raise NotImplementedError


class CrossValidationEstimator(ErrorEstimator):
    """k-fold cross-validation RMSE (paper default: k = 10).

    Folds are a seeded shuffle, so estimates are deterministic.  When the
    dataset has fewer than ``n_folds`` examples, the fold count drops to the
    example count (leave-one-out); with fewer than 2 examples the estimator
    degrades to training-set error.
    """

    def __init__(
        self,
        n_folds: int = 10,
        seed: int = 0,
        model_factory: ModelFactory = default_model_factory,
    ):
        if n_folds < 2:
            raise ConfigError(f"n_folds must be >= 2, got {n_folds}")
        self.n_folds = n_folds
        self.seed = seed
        self.model_factory = model_factory

    def estimate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray | None = None,
    ) -> ErrorEstimate:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = len(y)
        if n < 2:
            return TrainingSetEstimator(self.model_factory).estimate(x, y, w)
        k = min(self.n_folds, n)
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        folds = np.array_split(order, k)
        fold_rmses: list[float] = []
        for test_idx in folds:
            train_mask = np.ones(n, dtype=bool)
            train_mask[test_idx] = False
            model = self.model_factory()
            model.fit(
                x[train_mask],
                y[train_mask],
                None if w is None else np.asarray(w)[train_mask],
            )
            pred = model.predict(x[test_idx])
            fold_rmses.append(rmse(y[test_idx], pred))
        folds_arr = np.asarray(fold_rmses)
        return ErrorEstimate(
            rmse=float(folds_arr.mean()),
            kind="cv",
            fold_rmses=tuple(fold_rmses),
            dof=k - 1,
        )


class TrainingSetEstimator(ErrorEstimator):
    """Training-set RMSE with residual degrees of freedom ``n − p``.

    Cheap: one fit, no refits — roughly ``n_folds`` times cheaper than
    cross-validation, as Section 2 notes.
    """

    def __init__(self, model_factory: ModelFactory = default_model_factory):
        self.model_factory = model_factory

    def estimate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray | None = None,
    ) -> ErrorEstimate:
        model = self.model_factory()
        model.fit(np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64), w)
        stats = model.stats
        return ErrorEstimate(
            rmse=stats.rmse(),
            kind="training",
            sse=stats.sse(),
            dof=stats.dof,
        )
