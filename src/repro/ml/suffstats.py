"""Sufficient statistics for weighted least squares — Theorem 1.

The paper's key efficiency result (Section 6.4, Theorem 1): the weighted sum
of squared errors of a WLS linear model is an *algebraic* aggregate of the
item set ``S``:

    g(S)  = <Y'WY, X'WX, X'WY>           (plus n and Σw for bookkeeping)
    q({g(S_k)}) = ΣY'WY − (ΣX'WY)'(ΣX'WX)^{-1}(ΣX'WY)

so statistics computed on disjoint partitions merge by component-wise
addition.  :class:`LinearSuffStats` implements ``g`` (:meth:`from_data`), the
merge (``+``), the model solve (:meth:`solve`) and ``q`` (:meth:`sse`).

This is what lets the optimized bellwether cube fit one model per cube subset
of items without ever revisiting the raw rows: base-cell statistics roll up
the item-hierarchy lattice exactly like SUM/COUNT roll up a data cube.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import FitError


@dataclass(frozen=True)
class LinearSuffStats:
    """Sufficient statistics of a weighted linear regression problem.

    Attributes
    ----------
    ytwy:
        The scalar ``Y'WY``.
    xtwx:
        The ``(p, p)`` matrix ``X'WX``.
    xtwy:
        The ``(p,)`` vector ``X'WY``.
    n:
        Number of examples aggregated.
    sum_w:
        Total example weight.
    """

    ytwy: float
    xtwx: np.ndarray
    xtwy: np.ndarray
    n: int
    sum_w: float

    # ------------------------------------------------------------------ build

    @classmethod
    def from_data(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray | None = None,
    ) -> "LinearSuffStats":
        """Compute ``g(S)`` for a block of examples.

        ``x`` is ``(n, p)``; callers wanting an intercept must include a
        constant column (see :func:`add_intercept`).
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise FitError(f"x must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise FitError(f"y has shape {y.shape}, expected ({x.shape[0]},)")
        if w is None:
            xw = x
            yw = y
            sum_w = float(x.shape[0])
        else:
            w = np.asarray(w, dtype=np.float64)
            if w.shape != y.shape:
                raise FitError(f"w has shape {w.shape}, expected {y.shape}")
            if (w <= 0).any():
                raise FitError("weights must be strictly positive")
            xw = x * w[:, None]
            yw = y * w
            sum_w = float(w.sum())
        return cls(
            ytwy=float(yw @ y),
            xtwx=x.T @ xw,
            xtwy=x.T @ yw,
            n=x.shape[0],
            sum_w=sum_w,
        )

    @classmethod
    def zeros(cls, p: int) -> "LinearSuffStats":
        """The identity element for merging (an empty example set)."""
        return cls(0.0, np.zeros((p, p)), np.zeros(p), 0, 0.0)

    @property
    def p(self) -> int:
        return self.xtwx.shape[0]

    # ------------------------------------------------------------------ merge

    def __add__(self, other: "LinearSuffStats") -> "LinearSuffStats":
        if self.p != other.p:
            raise FitError(f"cannot merge stats with p={self.p} and p={other.p}")
        return LinearSuffStats(
            ytwy=self.ytwy + other.ytwy,
            xtwx=self.xtwx + other.xtwx,
            xtwy=self.xtwy + other.xtwy,
            n=self.n + other.n,
            sum_w=self.sum_w + other.sum_w,
        )

    def __sub__(self, other: "LinearSuffStats") -> "LinearSuffStats":
        """Remove a disjoint block (used by leave-one-fold-out training)."""
        if self.p != other.p:
            raise FitError(f"cannot subtract stats with p={self.p} and p={other.p}")
        return LinearSuffStats(
            ytwy=self.ytwy - other.ytwy,
            xtwx=self.xtwx - other.xtwx,
            xtwy=self.xtwy - other.xtwy,
            n=self.n - other.n,
            sum_w=self.sum_w - other.sum_w,
        )

    # ------------------------------------------------------------------ solve

    def solve(self, ridge: float = 0.0) -> np.ndarray:
        """β_WLS = (X'WX)^{-1} X'WY, via pseudo-inverse when singular.

        ``ridge`` adds ``ridge * I`` to the normal matrix, which both
        regularizes and guards against exact singularity when requested.
        """
        if self.n == 0:
            raise FitError("cannot solve with zero examples")
        a = self.xtwx
        if ridge > 0.0:
            a = a + ridge * np.eye(self.p)
        try:
            beta = np.linalg.solve(a, self.xtwy)
            # Reject solutions from numerically singular systems.
            if not np.all(np.isfinite(beta)):
                raise np.linalg.LinAlgError
        except np.linalg.LinAlgError:
            beta = np.linalg.pinv(a) @ self.xtwy
        return beta

    def sse(self, ridge: float = 0.0) -> float:
        """Weighted sum of squared errors ``q`` of the fitted model.

        ``Y'WY − (X'WY)' β``, clamped at zero against round-off.
        """
        beta = self.solve(ridge=ridge)
        return max(float(self.ytwy - self.xtwy @ beta), 0.0)

    def mse(self, ridge: float = 0.0) -> float:
        """Weighted mean squared error with ``n − p`` degrees of freedom.

        Follows the paper: the weighted SSE divided by the residual degrees
        of freedom.  Falls back to ``n`` when ``n <= p`` (the model
        interpolates; error is reported against the sample size to stay
        finite rather than raising).
        """
        dof = self.n - self.p
        if dof <= 0:
            dof = self.n
        return self.sse(ridge=ridge) / dof

    def rmse(self, ridge: float = 0.0) -> float:
        return float(np.sqrt(self.mse(ridge=ridge)))

    @property
    def dof(self) -> int:
        """Residual degrees of freedom (clamped to at least 1)."""
        return max(self.n - self.p, 1)


def add_intercept(x: np.ndarray) -> np.ndarray:
    """Prepend the constant-1 column (footnote 1 of the paper)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise FitError(f"x must be 2-D, got shape {x.shape}")
    return np.hstack([np.ones((x.shape[0], 1)), x])


def prefix_stats(
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray | None = None,
) -> list[LinearSuffStats]:
    """Cumulative statistics ``stats[k] = g(rows 0..k-1)`` for k = 0..n.

    Used by the RF bellwether tree's numeric-split search: after sorting
    items by a feature, the statistics of every ``(left, right)`` partition
    at every split point come from ``stats[k]`` and ``stats[n] - stats[k]``
    in O(p^2) each instead of refitting from raw rows.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n, p = x.shape
    if w is None:
        w = np.ones(n)
    out = [LinearSuffStats.zeros(p)]
    xw = x * w[:, None]
    # Cumulative outer products; p is small so this stays cheap.
    cum_xtwx = np.cumsum(np.einsum("ij,ik->ijk", x, xw), axis=0)
    cum_xtwy = np.cumsum(xw * y[:, None], axis=0)
    cum_ytwy = np.cumsum(w * y * y)
    cum_w = np.cumsum(w)
    for k in range(1, n + 1):
        out.append(
            LinearSuffStats(
                ytwy=float(cum_ytwy[k - 1]),
                xtwx=cum_xtwx[k - 1],
                xtwy=cum_xtwy[k - 1],
                n=k,
                sum_w=float(cum_w[k - 1]),
            )
        )
    return out
