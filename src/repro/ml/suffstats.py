"""Sufficient statistics for weighted least squares — Theorem 1.

The paper's key efficiency result (Section 6.4, Theorem 1): the weighted sum
of squared errors of a WLS linear model is an *algebraic* aggregate of the
item set ``S``:

    g(S)  = <Y'WY, X'WX, X'WY>           (plus n and Σw for bookkeeping)
    q({g(S_k)}) = ΣY'WY − (ΣX'WY)'(ΣX'WX)^{-1}(ΣX'WY)

so statistics computed on disjoint partitions merge by component-wise
addition.  :class:`LinearSuffStats` implements ``g`` (:meth:`from_data`), the
merge (``+``), the model solve (:meth:`solve`) and ``q`` (:meth:`sse`).

This is what lets the optimized bellwether cube fit one model per cube subset
of items without ever revisiting the raw rows: base-cell statistics roll up
the item-hierarchy lattice exactly like SUM/COUNT roll up a data cube.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.obs.catalog import (
    ML_LINEAR_BATCHED_PROBLEMS,
    ML_LINEAR_BATCHED_SOLVES,
)
from repro.obs.metrics import get_registry

from .exceptions import FitError

# One increment per *batched* LAPACK call, however many problems it carries.
# The Theorem 1 efficiency claim is phrased against this counter: the batched
# optimized cube must issue at most one per lattice level.
_BATCHED_SOLVES = get_registry().counter(ML_LINEAR_BATCHED_SOLVES)
_BATCHED_PROBLEMS = get_registry().counter(ML_LINEAR_BATCHED_PROBLEMS)


@dataclass(frozen=True)
class LinearSuffStats:
    """Sufficient statistics of a weighted linear regression problem.

    Attributes
    ----------
    ytwy:
        The scalar ``Y'WY``.
    xtwx:
        The ``(p, p)`` matrix ``X'WX``.
    xtwy:
        The ``(p,)`` vector ``X'WY``.
    n:
        Number of examples aggregated.
    sum_w:
        Total example weight.
    """

    ytwy: float
    xtwx: np.ndarray
    xtwy: np.ndarray
    n: int
    sum_w: float

    # ------------------------------------------------------------------ build

    @classmethod
    def from_data(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray | None = None,
    ) -> "LinearSuffStats":
        """Compute ``g(S)`` for a block of examples.

        ``x`` is ``(n, p)``; callers wanting an intercept must include a
        constant column (see :func:`add_intercept`).
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise FitError(f"x must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise FitError(f"y has shape {y.shape}, expected ({x.shape[0]},)")
        if w is None:
            xw = x
            yw = y
            sum_w = float(x.shape[0])
        else:
            w = np.asarray(w, dtype=np.float64)
            if w.shape != y.shape:
                raise FitError(f"w has shape {w.shape}, expected {y.shape}")
            if (w <= 0).any():
                raise FitError("weights must be strictly positive")
            xw = x * w[:, None]
            yw = y * w
            sum_w = float(w.sum())
        return cls(
            ytwy=float(yw @ y),
            xtwx=x.T @ xw,
            xtwy=x.T @ yw,
            n=x.shape[0],
            sum_w=sum_w,
        )

    @classmethod
    def zeros(cls, p: int) -> "LinearSuffStats":
        """The identity element for merging (an empty example set)."""
        return cls(0.0, np.zeros((p, p)), np.zeros(p), 0, 0.0)

    @property
    def p(self) -> int:
        return self.xtwx.shape[0]

    # ------------------------------------------------------------------ merge

    def __add__(self, other: "LinearSuffStats") -> "LinearSuffStats":
        if self.p != other.p:
            raise FitError(f"cannot merge stats with p={self.p} and p={other.p}")
        return LinearSuffStats(
            ytwy=self.ytwy + other.ytwy,
            xtwx=self.xtwx + other.xtwx,
            xtwy=self.xtwy + other.xtwy,
            n=self.n + other.n,
            sum_w=self.sum_w + other.sum_w,
        )

    def __sub__(self, other: "LinearSuffStats") -> "LinearSuffStats":
        """Remove a disjoint block (used by leave-one-fold-out training)."""
        if self.p != other.p:
            raise FitError(f"cannot subtract stats with p={self.p} and p={other.p}")
        return LinearSuffStats(
            ytwy=self.ytwy - other.ytwy,
            xtwx=self.xtwx - other.xtwx,
            xtwy=self.xtwy - other.xtwy,
            n=self.n - other.n,
            sum_w=self.sum_w - other.sum_w,
        )

    # ------------------------------------------------------------------ solve

    def solve(self, ridge: float = 0.0) -> np.ndarray:
        """β_WLS = (X'WX)^{-1} X'WY, via pseudo-inverse when singular.

        ``ridge`` adds ``ridge * I`` to the normal matrix, which both
        regularizes and guards against exact singularity when requested.
        """
        if self.n == 0:
            raise FitError("cannot solve with zero examples")
        a = self.xtwx
        if ridge > 0.0:
            a = a + ridge * np.eye(self.p)
        try:
            beta = np.linalg.solve(a, self.xtwy)
            # Reject solutions from numerically singular systems.
            if not np.all(np.isfinite(beta)):
                raise np.linalg.LinAlgError
        except np.linalg.LinAlgError:
            beta = np.linalg.pinv(a) @ self.xtwy
        return beta

    def sse(self, ridge: float = 0.0) -> float:
        """Weighted sum of squared errors ``q`` of the fitted model.

        ``Y'WY − (X'WY)' β``, clamped at zero against round-off.
        """
        beta = self.solve(ridge=ridge)
        return max(float(self.ytwy - self.xtwy @ beta), 0.0)

    def mse(self, ridge: float = 0.0) -> float:
        """Weighted mean squared error with ``n − p`` degrees of freedom.

        Follows the paper: the weighted SSE divided by the residual degrees
        of freedom.  Falls back to ``n`` when ``n <= p`` (the model
        interpolates; error is reported against the sample size to stay
        finite rather than raising).
        """
        dof = self.n - self.p
        if dof <= 0:
            dof = self.n
        return self.sse(ridge=ridge) / dof

    def rmse(self, ridge: float = 0.0) -> float:
        return float(np.sqrt(self.mse(ridge=ridge)))

    @property
    def dof(self) -> int:
        """Residual degrees of freedom (clamped to at least 1)."""
        return max(self.n - self.p, 1)


def add_intercept(x: np.ndarray) -> np.ndarray:
    """Prepend the constant-1 column (footnote 1 of the paper)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise FitError(f"x must be 2-D, got shape {x.shape}")
    return np.hstack([np.ones((x.shape[0], 1)), x])


@dataclass(frozen=True)
class StackedSuffStats:
    """Sufficient statistics of N independent WLS problems, stored stacked.

    The batched counterpart of :class:`LinearSuffStats`: component arrays
    hold every problem at once (``ytwy`` is ``(N,)``, ``xtwx`` is
    ``(N, p, p)``, ``xtwy`` is ``(N, p)``), so merging is element-wise array
    addition, rolling up many problems into fewer is one scatter-add, and
    fitting all N models is a single stacked ``np.linalg.solve`` — one LAPACK
    call instead of N Python-level fits.

    Solutions agree with the per-problem path bit-for-bit: stacked LAPACK
    runs the same routine per matrix, and problems whose normal matrix is
    singular fall back to :meth:`LinearSuffStats.solve` individually.
    """

    ytwy: np.ndarray
    xtwx: np.ndarray
    xtwy: np.ndarray
    n: np.ndarray
    sum_w: np.ndarray

    # ------------------------------------------------------------------ build

    @classmethod
    def zeros(cls, n_problems: int, p: int) -> "StackedSuffStats":
        return cls(
            ytwy=np.zeros(n_problems),
            xtwx=np.zeros((n_problems, p, p)),
            xtwy=np.zeros((n_problems, p)),
            n=np.zeros(n_problems, dtype=np.int64),
            sum_w=np.zeros(n_problems),
        )

    @classmethod
    def from_stats(cls, stats: Sequence[LinearSuffStats]) -> "StackedSuffStats":
        """Stack per-problem statistics (components are copied verbatim)."""
        if not stats:
            raise FitError("from_stats needs at least one problem")
        p = stats[0].p
        if any(s.p != p for s in stats):
            raise FitError("cannot stack stats with differing p")
        return cls(
            ytwy=np.array([s.ytwy for s in stats]),
            xtwx=np.stack([s.xtwx for s in stats]),
            xtwy=np.stack([s.xtwy for s in stats]),
            n=np.array([s.n for s in stats], dtype=np.int64),
            sum_w=np.array([s.sum_w for s in stats]),
        )

    @classmethod
    def from_groups(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray | None,
        groups: np.ndarray,
        n_groups: int,
    ) -> "StackedSuffStats":
        """``g(S_k)`` for every group in one vectorized pass.

        ``groups[i]`` assigns row ``i`` of the design matrix to problem
        ``groups[i]``; rows never revisit Python.  Summation runs in row
        order within each group (segment sums over the sorted rows), so the
        result matches per-group :meth:`LinearSuffStats.from_data` up to
        float associativity.
        """
        return RowProducts(x, y, w).group(groups, n_groups)

    @classmethod
    def concatenate(cls, stacks: Sequence["StackedSuffStats"]) -> "StackedSuffStats":
        """One stack holding every input stack's problems, in order."""
        if not stacks:
            raise FitError("concatenate needs at least one stack")
        p = stacks[0].p
        if any(s.p != p for s in stacks):
            raise FitError("cannot concatenate stacks with differing p")
        return cls(
            ytwy=np.concatenate([s.ytwy for s in stacks]),
            xtwx=np.concatenate([s.xtwx for s in stacks]),
            xtwy=np.concatenate([s.xtwy for s in stacks]),
            n=np.concatenate([s.n for s in stacks]),
            sum_w=np.concatenate([s.sum_w for s in stacks]),
        )

    # ------------------------------------------------------------------ shape

    def __len__(self) -> int:
        return len(self.ytwy)

    @property
    def p(self) -> int:
        return self.xtwx.shape[2]

    def row(self, i: int) -> LinearSuffStats:
        """The i-th problem as a scalar :class:`LinearSuffStats`."""
        return LinearSuffStats(
            ytwy=float(self.ytwy[i]),
            xtwx=self.xtwx[i],
            xtwy=self.xtwy[i],
            n=int(self.n[i]),
            sum_w=float(self.sum_w[i]),
        )

    def select(self, idx: np.ndarray) -> "StackedSuffStats":
        """The sub-stack of the given problem indices (or boolean mask)."""
        return StackedSuffStats(
            self.ytwy[idx], self.xtwx[idx], self.xtwy[idx],
            self.n[idx], self.sum_w[idx],
        )

    # ------------------------------------------------------------------ merge

    def __add__(self, other: "StackedSuffStats") -> "StackedSuffStats":
        """Element-wise merge: problem i absorbs the other stack's problem i."""
        if len(self) != len(other) or self.p != other.p:
            raise FitError(
                f"cannot merge stacks of shape ({len(self)}, p={self.p}) "
                f"and ({len(other)}, p={other.p})"
            )
        return StackedSuffStats(
            self.ytwy + other.ytwy,
            self.xtwx + other.xtwx,
            self.xtwy + other.xtwy,
            self.n + other.n,
            self.sum_w + other.sum_w,
        )

    def __sub__(self, other: "StackedSuffStats") -> "StackedSuffStats":
        """Element-wise retraction: problem i sheds the other's problem i.

        The stacked form of :meth:`LinearSuffStats.__sub__`; the incremental
        maintainer uses it to retract delta rows from cached cell statistics
        without rescanning the surviving rows.
        """
        if len(self) != len(other) or self.p != other.p:
            raise FitError(
                f"cannot subtract stacks of shape ({len(self)}, p={self.p}) "
                f"and ({len(other)}, p={other.p})"
            )
        return StackedSuffStats(
            self.ytwy - other.ytwy,
            self.xtwx - other.xtwx,
            self.xtwy - other.xtwy,
            self.n - other.n,
            self.sum_w - other.sum_w,
        )

    def copy(self) -> "StackedSuffStats":
        """A deep copy whose component arrays are safe to mutate in place."""
        return StackedSuffStats(
            self.ytwy.copy(), self.xtwx.copy(), self.xtwy.copy(),
            self.n.copy(), self.sum_w.copy(),
        )

    def set_row(self, i: int, stats: LinearSuffStats) -> None:
        """Overwrite problem ``i`` in place with scalar statistics.

        The builders fill a zeroed stack one present problem at a time from
        per-cell :meth:`LinearSuffStats.from_data` results; routing the
        write through the class keeps component mutation an implementation
        detail of the stack.
        """
        if self.p != stats.p:
            raise FitError(
                f"cannot set a p={stats.p} problem into a p={self.p} stack"
            )
        self.ytwy[i] = stats.ytwy
        self.xtwx[i] = stats.xtwx
        self.xtwy[i] = stats.xtwy
        self.n[i] = stats.n
        self.sum_w[i] = stats.sum_w

    def assign(self, idx: np.ndarray, other: "StackedSuffStats") -> None:
        """Overwrite problems ``idx`` in place with the other stack's rows.

        This is the dirty-cell write-back: a refresh recomputes only the
        problems a delta touched and assigns them over the cached stack.
        """
        if self.p != other.p:
            raise FitError(
                f"cannot assign stats with p={other.p} into a p={self.p} stack"
            )
        self.ytwy[idx] = other.ytwy
        self.xtwx[idx] = other.xtwx
        self.xtwy[idx] = other.xtwy
        self.n[idx] = other.n
        self.sum_w[idx] = other.sum_w

    def changed_rows(self, other: "StackedSuffStats") -> np.ndarray:
        """Indices of problems whose components differ from ``other``'s.

        Bitwise comparison (no tolerance): the incremental layer promises
        bit-for-bit equality with a from-scratch pass, so "dirty" means any
        component byte moved.
        """
        if len(self) != len(other) or self.p != other.p:
            raise FitError(
                f"cannot diff stacks of shape ({len(self)}, p={self.p}) "
                f"and ({len(other)}, p={other.p})"
            )
        same = (
            (self.ytwy == other.ytwy)
            & (self.xtwx == other.xtwx).all(axis=(1, 2))
            & (self.xtwy == other.xtwy).all(axis=1)
            & (self.n == other.n)
            & (self.sum_w == other.sum_w)
        )
        return np.flatnonzero(~same)

    def rollup(self, target: np.ndarray, n_out: int) -> "StackedSuffStats":
        """Scatter-add problems into ``n_out`` coarser ones (Theorem 1).

        ``target[i]`` names the output problem that input problem ``i``
        merges into — e.g. the cube's base-cell -> subset map, repeated per
        region.  This is the vectorized form of the dict-of-``+`` rollup.
        """
        out = StackedSuffStats.zeros(n_out, self.p)
        np.add.at(out.ytwy, target, self.ytwy)
        np.add.at(out.xtwx, target, self.xtwx)
        np.add.at(out.xtwy, target, self.xtwy)
        np.add.at(out.n, target, self.n)
        np.add.at(out.sum_w, target, self.sum_w)
        return out

    # ------------------------------------------------------------------ solve

    def solve(self, ridge: float = 0.0) -> np.ndarray:
        """All N solutions ``(N, p)`` from one stacked LAPACK call.

        Problems with a singular (or numerically singular) normal matrix are
        re-solved individually through :meth:`LinearSuffStats.solve`, which
        applies the pseudo-inverse — the batched path never changes which
        fallback a problem gets.
        """
        if (self.n == 0).any():
            raise FitError("cannot solve problems with zero examples")
        if len(self) == 0:
            return np.zeros((0, self.p))
        a = self.xtwx
        if ridge > 0.0:
            a = a + ridge * np.eye(self.p)
        _BATCHED_SOLVES.inc()
        _BATCHED_PROBLEMS.inc(len(self))
        try:
            beta = np.linalg.solve(a, self.xtwy[..., None])[..., 0]
            bad = ~np.isfinite(beta).all(axis=1)
        except np.linalg.LinAlgError:
            # Stacked solve refuses the whole batch when any matrix is
            # exactly singular; redo every problem individually (the
            # well-conditioned ones reproduce the batched bits exactly).
            beta = np.empty_like(self.xtwy)
            bad = np.ones(len(self), dtype=bool)
        for i in np.flatnonzero(bad):
            beta[i] = self.row(i).solve(ridge=ridge)
        return beta

    def sse(self, ridge: float = 0.0) -> np.ndarray:
        """Batched ``q``: per-problem weighted SSE, clamped at zero."""
        beta = self.solve(ridge=ridge)
        # (N,1,p) @ (N,p,1) runs the same dot product LAPACK/BLAS uses for
        # the scalar path, keeping the batched SSE bit-identical to it.
        fitted = np.matmul(self.xtwy[:, None, :], beta[:, :, None])[:, 0, 0]
        return np.maximum(self.ytwy - fitted, 0.0)

    def mse(self, ridge: float = 0.0) -> np.ndarray:
        """Batched weighted MSE with ``n − p`` degrees of freedom."""
        dof = self.n - self.p
        dof = np.where(dof <= 0, self.n, dof)
        return self.sse(ridge=ridge) / dof

    def rmse(self, ridge: float = 0.0) -> np.ndarray:
        return np.sqrt(self.mse(ridge=ridge))

    @property
    def dof(self) -> np.ndarray:
        """Per-problem residual degrees of freedom (clamped to at least 1)."""
        return np.maximum(self.n - self.p, 1)


class RowProducts:
    """Per-row outer products of one design block, reusable across groupings.

    The grouped builders (tree split evaluation, cube base cells) partition
    the *same* rows many ways.  Computing ``x_i x_i'w_i`` once and segment-
    summing per grouping makes each additional grouping O(n·p²) array work
    with no Python per-row cost.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, w: np.ndarray | None = None):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise FitError(f"x must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise FitError(f"y has shape {y.shape}, expected ({x.shape[0]},)")
        if w is None:
            xw = x
            self._row_w = np.ones(x.shape[0])
        else:
            w = np.asarray(w, dtype=np.float64)
            if w.shape != y.shape:
                raise FitError(f"w has shape {w.shape}, expected {y.shape}")
            if (w <= 0).any():
                raise FitError("weights must be strictly positive")
            xw = x * w[:, None]
            self._row_w = w
        self.n_rows, self.p = x.shape
        self._xtwx = np.einsum("ij,ik->ijk", x, xw)
        self._xtwy = xw * y[:, None]
        self._ytwy = (y * y) * self._row_w

    def group(self, groups: np.ndarray, n_groups: int) -> StackedSuffStats:
        """Segment-sum the row products into one problem per group."""
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != (self.n_rows,):
            raise FitError(
                f"groups has shape {groups.shape}, expected ({self.n_rows},)"
            )
        out = StackedSuffStats.zeros(n_groups, self.p)
        if self.n_rows == 0:
            return out
        order = np.argsort(groups, kind="stable")
        sorted_groups = groups[order]
        starts = np.flatnonzero(np.diff(sorted_groups, prepend=-1))
        present = sorted_groups[starts]
        out.ytwy[present] = np.add.reduceat(self._ytwy[order], starts)
        out.xtwx[present] = np.add.reduceat(self._xtwx[order], starts, axis=0)
        out.xtwy[present] = np.add.reduceat(self._xtwy[order], starts, axis=0)
        out.sum_w[present] = np.add.reduceat(self._row_w[order], starts)
        out.n[present] = np.diff(np.append(starts, self.n_rows))
        return out


def prefix_stats(
    x: np.ndarray,
    y: np.ndarray,
    w: np.ndarray | None = None,
) -> list[LinearSuffStats]:
    """Cumulative statistics ``stats[k] = g(rows 0..k-1)`` for k = 0..n.

    Used by the RF bellwether tree's numeric-split search: after sorting
    items by a feature, the statistics of every ``(left, right)`` partition
    at every split point come from ``stats[k]`` and ``stats[n] - stats[k]``
    in O(p^2) each instead of refitting from raw rows.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n, p = x.shape
    if w is None:
        w = np.ones(n)
    out = [LinearSuffStats.zeros(p)]
    xw = x * w[:, None]
    # Cumulative outer products; p is small so this stays cheap.
    cum_xtwx = np.cumsum(np.einsum("ij,ik->ijk", x, xw), axis=0)
    cum_xtwy = np.cumsum(xw * y[:, None], axis=0)
    cum_ytwy = np.cumsum(w * y * y)
    cum_w = np.cumsum(w)
    for k in range(1, n + 1):
        out.append(
            LinearSuffStats(
                ytwy=float(cum_ytwy[k - 1]),
                xtwx=cum_xtwx[k - 1],
                xtwy=cum_xtwy[k - 1],
                n=k,
                sum_w=float(cum_w[k - 1]),
            )
        )
    return out
