"""OLS / WLS linear regression models built on sufficient statistics.

The paper uses ordinary least squares as its predictive model throughout the
evaluation, and extends the prediction-cube machinery to weighted least
squares (Section 6.4).  ``LinearRegression(weighted=True)`` accepts per-
example weights; with unit weights WLS reduces to OLS exactly.
"""

from __future__ import annotations

import numpy as np

from repro.obs.catalog import ML_LINEAR_FITS
from repro.obs.metrics import get_registry

from .exceptions import FitError, NotFittedError
from .suffstats import LinearSuffStats, add_intercept

_FITS = get_registry().counter(ML_LINEAR_FITS)


class LinearRegression:
    """Linear model ``y = β0 + Σ βj xj`` fit by (weighted) least squares.

    Parameters
    ----------
    fit_intercept:
        Prepend a constant column (default True).
    ridge:
        Optional Tikhonov term added to the normal matrix; 0 = plain LS.
    """

    def __init__(self, fit_intercept: bool = True, ridge: float = 0.0):
        self.fit_intercept = fit_intercept
        self.ridge = ridge
        self._beta: np.ndarray | None = None
        self._stats: LinearSuffStats | None = None

    # ------------------------------------------------------------------- fit

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        w: np.ndarray | None = None,
    ) -> "LinearRegression":
        """Fit from raw examples; returns self."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise FitError(f"x must be 2-D, got shape {x.shape}")
        design = add_intercept(x) if self.fit_intercept else x
        self._stats = LinearSuffStats.from_data(design, y, w)
        self._beta = self._stats.solve(ridge=self.ridge)
        _FITS.inc()
        return self

    def fit_stats(self, stats: LinearSuffStats) -> "LinearRegression":
        """Fit directly from pre-aggregated sufficient statistics.

        The statistics must already include the intercept column if
        ``fit_intercept`` is set — they describe the *design* matrix.
        """
        self._stats = stats
        self._beta = stats.solve(ridge=self.ridge)
        _FITS.inc()
        return self

    # --------------------------------------------------------------- predict

    @property
    def is_fitted(self) -> bool:
        return self._beta is not None

    @property
    def coef(self) -> np.ndarray:
        """Coefficients of the design matrix (intercept first if present)."""
        if self._beta is None:
            raise NotFittedError("model is not fitted")
        return self._beta

    @property
    def stats(self) -> LinearSuffStats:
        if self._stats is None:
            raise NotFittedError("model is not fitted")
        return self._stats

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._beta is None:
            raise NotFittedError("model is not fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        design = add_intercept(x) if self.fit_intercept else x
        if design.shape[1] != len(self._beta):
            raise FitError(
                f"predict got {design.shape[1]} design columns, model has {len(self._beta)}"
            )
        return design @ self._beta

    # ----------------------------------------------------------------- errors

    def training_rmse(self) -> float:
        """Training-set RMSE with n − p degrees of freedom (Theorem 1's q)."""
        return self.stats.rmse(ridge=self.ridge)

    def training_sse(self) -> float:
        return self.stats.sse(ridge=self.ridge)

    def __repr__(self) -> str:
        status = "fitted" if self.is_fitted else "unfitted"
        return f"LinearRegression(intercept={self.fit_intercept}, {status})"


def fit_ridge_per_row(
    design: np.ndarray, y: np.ndarray, ridge_per_row: float
) -> np.ndarray:
    """Ridge coefficients with the penalty scaled by the row count.

    Solves ``(X'X + n·λ·I) β = X'y`` for ``λ = ridge_per_row``.  Scaling
    the Tikhonov term with ``n`` makes the solution invariant under
    workload replication — duplicating every row k-fold multiplies both
    ``X'X`` and ``X'y`` and the penalty by k, leaving β unchanged — which
    is what lets the AQP tier's tolerance estimate stay monotone as the
    training workload grows.  ``design`` must already carry its intercept
    column (no column is added).
    """
    design = np.asarray(design, dtype=np.float64)
    lam = float(ridge_per_row) * len(design)
    return LinearRegression(fit_intercept=False, ridge=lam).fit(design, y).coef
