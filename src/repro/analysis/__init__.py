"""Static-analysis layer: AST rules enforcing the repo's invariants.

``python -m repro.analysis`` lints ``src/repro`` and ``tests`` against the
contracts the instrumentation, conformance, and incremental layers are
built on — see :mod:`repro.analysis.rules` for the rule table and
:mod:`repro.analysis.engine` for suppressions and baselines.
"""

from .engine import (
    AnalysisError,
    Engine,
    FileContext,
    Finding,
    Rule,
    Scope,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "Engine",
    "FileContext",
    "Finding",
    "Rule",
    "Scope",
    "apply_baseline",
    "get_rules",
    "load_baseline",
    "write_baseline",
]
