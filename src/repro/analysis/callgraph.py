"""A lightweight per-module call graph for the concurrency rules.

The interprocedural reach of RPR007–009 is deliberately one hop: a rule
looking at a call site may ask "what does the callee do directly?" but
never chases transitive chains across modules.  That keeps the analysis
decidable on plain ASTs (no imports are executed) and its findings
explainable — every message points at one call and one callee.

Resolution is therefore conservative and purely syntactic:

* ``name(...)`` resolves to the module-level function ``name`` when the
  module defines one;
* ``self.method(...)`` inside ``class C`` resolves to ``C.method`` when
  the class defines one (inherited methods are invisible — the rules
  treat unresolved calls as opaque);
* everything else (``obj.attr(...)``, calls through imports, lambdas)
  resolves to nothing.

Unresolved calls are *not* findings; the runtime checker
(:mod:`repro.analysis.runtime`) covers what static one-hop analysis
cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["FunctionEntry", "ModuleCallGraph"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionEntry:
    """One function or method defined at module or class top level."""

    qualname: str  # "func" or "Class.method"
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Qualnames of same-module functions this one calls directly.
    callees: set[str] = field(default_factory=set)


class ModuleCallGraph:
    """Function table + direct same-module call edges for one parsed file."""

    def __init__(self, tree: ast.Module):
        self.functions: dict[str, FunctionEntry] = {}
        for node in tree.body:
            if isinstance(node, _FUNC_NODES):
                self._add(node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, _FUNC_NODES):
                        self._add(item, class_name=node.name)
        for entry in self.functions.values():
            for call in self._direct_calls(entry.node):
                callee = self.resolve_call(call, entry.class_name)
                if callee is not None:
                    entry.callees.add(callee.qualname)

    def _add(self, node, class_name: str | None) -> None:
        qualname = node.name if class_name is None else f"{class_name}.{node.name}"
        self.functions[qualname] = FunctionEntry(
            qualname=qualname, name=node.name, class_name=class_name, node=node
        )

    @staticmethod
    def _direct_calls(node: ast.AST):
        """Call nodes in ``node``'s body, not descending into nested defs."""
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(child, (*_FUNC_NODES, ast.Lambda, ast.ClassDef)):
                continue  # executes in a different dynamic context
            if isinstance(child, ast.Call):
                yield child
            stack.extend(ast.iter_child_nodes(child))

    def resolve_call(
        self, call: ast.Call, class_name: str | None
    ) -> FunctionEntry | None:
        """The same-module callee of ``call``, or None when opaque."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and class_name is not None
        ):
            return self.functions.get(f"{class_name}.{func.attr}")
        return None

    def lookup(self, qualname: str) -> FunctionEntry | None:
        return self.functions.get(qualname)
