"""``python -m repro.analysis`` — run the invariant linter.

Examples
--------
::

    python -m repro.analysis                        # lint src/repro + tests
    python -m repro.analysis --rule RPR001          # one rule only
    python -m repro.analysis --format json          # machine-readable
    python -m repro.analysis --format github        # ::error annotations
    python -m repro.analysis --baseline lint_baseline.json
    python -m repro.analysis --baseline lint_baseline.json --prune-baseline
    python -m repro.analysis --write-baseline lint_baseline.json
    python -m repro.analysis --list-rules

``--format github`` emits GitHub Actions workflow commands
(``::error file=...,line=...,title=RPRnnn::message``) so findings land
inline on the PR diff.  ``--baseline`` warns (exit status unchanged) when
the baseline carries entries no current finding matches; add
``--prune-baseline`` to rewrite the file without them.

Exit status: 0 when clean, 1 when findings remain after baseline/suppression
filtering, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import (
    AnalysisError,
    Engine,
    apply_baseline,
    load_baseline,
    prune_baseline,
    stale_baseline_keys,
    write_baseline,
)
from .rules import ALL_RULES, get_rules

__all__ = ["main"]


def _default_root() -> Path:
    """The repo root, assuming the canonical ``<root>/src/repro`` layout."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return Path.cwd()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the bellwether repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro and tests)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root findings are reported relative to",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text; github = Actions annotations)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="JSON baseline of grandfathered findings to subtract",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite --baseline without entries no finding matches",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="write current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    try:
        if args.prune_baseline and args.baseline is None:
            raise AnalysisError("--prune-baseline needs --baseline PATH")
        engine = Engine(
            root=args.root or _default_root(),
            rules=get_rules(args.rules),
        )
        findings = engine.run(args.paths or None)
        if args.baseline is not None:
            baseline = load_baseline(args.baseline)
            stale = stale_baseline_keys(findings, baseline)
            if stale and args.prune_baseline:
                removed = prune_baseline(args.baseline, findings)
                print(
                    f"pruned {removed} stale entr"
                    f"{'y' if removed == 1 else 'ies'} from {args.baseline}",
                    file=sys.stderr,
                )
            elif stale:
                print(
                    f"warning: {len(stale)} stale baseline entr"
                    f"{'y matches' if len(stale) == 1 else 'ies match'} "
                    f"no finding in {args.baseline}; run --prune-baseline",
                    file=sys.stderr,
                )
            findings = apply_baseline(findings, baseline)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        print(
            json.dumps(
                {"findings": [f.to_dict() for f in findings]},
                indent=2,
                sort_keys=True,
            )
        )
    elif args.format == "github":
        for finding in findings:
            print(
                f"::error file={finding.path},line={finding.line},"
                f"title={finding.rule_id}::{_github_escape(finding.message)}"
            )
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


def _github_escape(text: str) -> str:
    """Workflow-command data escaping, per the Actions toolkit."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
