"""The declarative guard map and static lock-scope machinery.

This module is the shared vocabulary of the concurrency rules
(RPR007–RPR009) and the runtime checker (:mod:`repro.analysis.runtime`):

* **Canonical lock names.**  Every lock the serving stack takes has one
  process-wide name (``serve.state.rw``, ``serve.instrument``, ...).
  The static rules report edges between these names; the runtime
  checker's lock graph uses the same names, so a static finding and a
  runtime violation about the same inversion read identically.

* **Guard map.**  :data:`CLASS_GUARDS` binds the mutable attributes of
  ``ServerState`` / ``SuffStatsCache`` / ``CubeTableStore`` to the lock
  that guards them; :data:`MODULE_GUARDS` does the same for the serve
  instrument globals.  RPR007 enforces the map.

* **Lock-scope classification.**  :func:`classify_lock_acquisition`
  recognizes ``with self._rw.read():`` / ``.write():`` (shared vs
  exclusive RW scopes) and ``with self._io_lock:`` / ``with
  _INSTRUMENT_LOCK:`` (plain exclusive scopes) in a ``with`` item.

* **Lock-acquisition graph.**  :func:`extract_lock_edges` walks one
  file's functions and records every (held, acquired) pair — lexical
  nesting plus one call-hop into same-module functions;
  :func:`build_lock_graph` folds the whole tree into the global DAG
  RPR008 checks for two-sided edges.

Everything here is stdlib-only and import-free with respect to the rest
of :mod:`repro` — the linter must work on trees that do not import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .callgraph import ModuleCallGraph

__all__ = [
    "AQP_JOURNAL_IO",
    "CLASS_GUARDS",
    "CUBE_TABLES_IO",
    "ClassGuard",
    "LOCKED_SUFFIX",
    "LockGraph",
    "LockScope",
    "MODULE_GUARDS",
    "ModuleGuard",
    "SERVE_INSTRUMENT",
    "SERVE_STATE_RW",
    "SUFFSTATS_CACHE_IO",
    "build_lock_graph",
    "classify_lock_acquisition",
    "extract_lock_edges",
    "function_lock_acquisitions",
    "iter_lock_functions",
    "parse_tree_files",
]

# ------------------------------------------------------ canonical lock names

#: ``ServerState._rw`` — the writer-preferring RW lock over serving state.
SERVE_STATE_RW = "serve.state.rw"
#: ``repro.serve.state._INSTRUMENT_LOCK`` — guards the metrics registry.
SERVE_INSTRUMENT = "serve.instrument"
#: ``SuffStatsCache._io_lock`` — serializes cache save/load pairs.
SUFFSTATS_CACHE_IO = "incremental.suffstats_cache.io"
#: ``CubeTableStore._io_lock`` — serializes table save/load pairs.
CUBE_TABLES_IO = "storage.cubetables.io"
#: ``WorkloadJournal._lock`` — serializes journal appends.
AQP_JOURNAL_IO = "aqp.journal.io"

#: Method-name suffix documenting the "caller holds the lock" contract.
LOCKED_SUFFIX = "_locked"

#: ``(class name, attribute)`` -> canonical lock name, for `with self.X:`.
_LOCK_ATTR_NAMES: dict[tuple[str, str], str] = {
    ("ServerState", "_rw"): SERVE_STATE_RW,
    ("SuffStatsCache", "_io_lock"): SUFFSTATS_CACHE_IO,
    ("CubeTableStore", "_io_lock"): CUBE_TABLES_IO,
    ("WorkloadJournal", "_lock"): AQP_JOURNAL_IO,
    ("AqpEngine", "_ilock"): SERVE_INSTRUMENT,
}

#: Module-global lock names, for ``with _INSTRUMENT_LOCK:``.
_LOCK_GLOBAL_NAMES: dict[str, str] = {
    "_INSTRUMENT_LOCK": SERVE_INSTRUMENT,
}


def _attr_lock_name(class_name: str | None, attr: str) -> str | None:
    """Canonical name for ``self.<attr>`` when it looks like a lock."""
    known = _LOCK_ATTR_NAMES.get((class_name or "", attr))
    if known is not None:
        return known
    if attr == "_rw":
        # Any RW-protocol attribute outside the alias table is still a lock;
        # name it by its owner so graph edges stay distinguishable.
        return f"{class_name or '<module>'}.{attr}"
    if attr.endswith("lock"):
        return f"{class_name or '<module>'}.{attr}"
    return None


def _global_lock_name(name: str) -> str | None:
    known = _LOCK_GLOBAL_NAMES.get(name)
    if known is not None:
        return known
    if "LOCK" in name or name.endswith("_lock"):
        return f"<module>.{name}"
    return None


# ----------------------------------------------------------------- guard map


@dataclass(frozen=True)
class ClassGuard:
    """One class whose mutable attributes are guarded by one lock.

    ``rw=True`` means the lock speaks the ``read()``/``write()`` protocol
    (reads need any scope, writes need a write scope); ``rw=False`` is a
    plain exclusive lock (any scope grants both).
    """

    lock_attr: str
    lock_name: str
    rw: bool
    guarded: frozenset[str]


#: Class name -> its guard.  RPR007 checks every class with this name
#: inside its scope; lock-attr classification keys off the same table.
CLASS_GUARDS: dict[str, ClassGuard] = {
    "ServerState": ClassGuard(
        lock_attr="_rw",
        lock_name=SERVE_STATE_RW,
        rw=True,
        guarded=frozenset(
            {"_tables", "_tables_version", "_cube", "_cube_version", "_models"}
        ),
    ),
    "SuffStatsCache": ClassGuard(
        lock_attr="_io_lock",
        lock_name=SUFFSTATS_CACHE_IO,
        rw=False,
        guarded=frozenset(),
    ),
    "CubeTableStore": ClassGuard(
        lock_attr="_io_lock",
        lock_name=CUBE_TABLES_IO,
        rw=False,
        guarded=frozenset(),
    ),
}


@dataclass(frozen=True)
class ModuleGuard:
    """Module globals guarded by a module-level lock."""

    lock_global: str
    lock_name: str
    guarded: frozenset[str]


#: Repo-relative path -> its module guard.  The serve instruments wrap a
#: single-threaded registry; every touch outside ``_INSTRUMENT_LOCK`` is a
#: data race on plain ``+=`` counters.
MODULE_GUARDS: dict[str, ModuleGuard] = {
    "src/repro/serve/state.py": ModuleGuard(
        lock_global="_INSTRUMENT_LOCK",
        lock_name=SERVE_INSTRUMENT,
        guarded=frozenset(
            {
                "_REGISTRY",
                "_REQUESTS",
                "_ERRORS",
                "_CACHE_HITS",
                "_CACHE_MISSES",
                "_VERSION_ADOPTIONS",
                "_ZERO_SCAN_QUERIES",
                "_FULL_SCANS",
                "_LATENCY",
            }
        ),
    ),
}


# --------------------------------------------------- lock-scope classification


@dataclass(frozen=True)
class LockScope:
    """One acquired lock scope: canonical name + access mode.

    ``mode`` is ``"read"`` / ``"write"`` for the RW protocol and
    ``"exclusive"`` for plain mutexes.
    """

    name: str
    mode: str

    @property
    def grants_write(self) -> bool:
        return self.mode in ("write", "exclusive")


def classify_lock_acquisition(
    expr: ast.expr, class_name: str | None
) -> LockScope | None:
    """The lock scope a ``with`` item enters, or None for non-locks.

    Recognized shapes::

        with self._rw.read():      # LockScope(name, "read")
        with self._rw.write():     # LockScope(name, "write")
        with self._io_lock:        # LockScope(name, "exclusive")
        with _INSTRUMENT_LOCK:     # LockScope(name, "exclusive")
    """
    # with self.<attr>.read() / .write() — RW protocol (args tolerated:
    # the timeout variant is still the same scope).
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("read", "write")
        and isinstance(expr.func.value, ast.Attribute)
        and isinstance(expr.func.value.value, ast.Name)
        and expr.func.value.value.id == "self"
    ):
        name = _attr_lock_name(class_name, expr.func.value.attr)
        if name is not None:
            return LockScope(name, expr.func.attr)
        return None
    # with self.<attr>: — plain instance lock.
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        name = _attr_lock_name(class_name, expr.attr)
        if name is not None:
            return LockScope(name, "exclusive")
        return None
    # with NAME: — module-global lock.
    if isinstance(expr, ast.Name):
        name = _global_lock_name(expr.id)
        if name is not None:
            return LockScope(name, "exclusive")
    return None


_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = (*_FUNC_NODES, ast.Lambda, ast.ClassDef)


def iter_lock_functions(tree: ast.Module):
    """``(node, class_name)`` for every top-level function and method."""
    for node in tree.body:
        if isinstance(node, _FUNC_NODES):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, _FUNC_NODES):
                    yield item, node.name


def function_lock_acquisitions(
    node: ast.AST, class_name: str | None
) -> set[str]:
    """Canonical names of every lock ``node``'s own body acquires."""
    acquired: set[str] = set()
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SKIP_NODES):
            continue
        if isinstance(child, ast.With):
            for item in child.items:
                scope = classify_lock_acquisition(item.context_expr, class_name)
                if scope is not None:
                    acquired.add(scope.name)
        stack.extend(ast.iter_child_nodes(child))
    return acquired


# ------------------------------------------------------ lock-acquisition graph

#: One edge occurrence: the file and line where ``second`` was acquired
#: (or where the call that acquires it sits) while ``first`` was held.
Site = tuple[str, int]


@dataclass
class LockGraph:
    """The acquisition-order graph: (held, acquired) -> occurrence sites."""

    edges: dict[tuple[str, str], list[Site]] = field(default_factory=dict)

    def add(self, first: str, second: str, site: Site) -> None:
        if first == second:
            return
        self.edges.setdefault((first, second), []).append(site)

    def merge(self, other: "LockGraph") -> None:
        for edge, sites in other.edges.items():
            self.edges.setdefault(edge, []).extend(sites)

    def reversed_sites(self, first: str, second: str) -> list[Site]:
        return self.edges.get((second, first), [])


def extract_lock_edges(tree: ast.Module, relpath: str) -> LockGraph:
    """Every (held, acquired) lock pair one file's functions establish.

    Lexically nested ``with`` scopes yield direct edges; a call under a
    held lock to a same-module function adds edges to every lock that
    function's own body acquires (one hop, per the module call graph).
    """
    graph = LockGraph()
    cg = ModuleCallGraph(tree)
    acq_index = {
        entry.qualname: function_lock_acquisitions(entry.node, entry.class_name)
        for entry in cg.functions.values()
    }

    def walk(node: ast.AST, held: list[LockScope], class_name: str | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SKIP_NODES):
                continue
            if isinstance(child, ast.With):
                entered: list[LockScope] = []
                for item in child.items:
                    scope = classify_lock_acquisition(
                        item.context_expr, class_name
                    )
                    if scope is None:
                        continue
                    for h in held + entered:
                        graph.add(h.name, scope.name, (relpath, child.lineno))
                    entered.append(scope)
                walk(child, held + entered, class_name)
                continue
            if isinstance(child, ast.Call) and held:
                entry = cg.resolve_call(child, class_name)
                if entry is not None:
                    for acquired in acq_index.get(entry.qualname, ()):
                        for h in held:
                            graph.add(
                                h.name, acquired, (relpath, child.lineno)
                            )
            walk(child, held, class_name)

    for node, class_name in iter_lock_functions(tree):
        walk(node, [], class_name)
    return graph


def build_lock_graph(files: list[tuple[str, ast.Module]]) -> LockGraph:
    """Fold per-file edges over ``(relpath, tree)`` pairs into one graph."""
    graph = LockGraph()
    for relpath, tree in files:
        graph.merge(extract_lock_edges(tree, relpath))
    return graph


def parse_tree_files(root: Path, files: list[Path]) -> list[tuple[str, ast.Module]]:
    """Parse files for the graph, skipping anything that does not parse
    (RPR000 reports those separately)."""
    out: list[tuple[str, ast.Module]] = []
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError):
            continue
        out.append((file.relative_to(root).as_posix(), tree))
    return out
