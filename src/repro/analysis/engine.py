"""Rule engine for the repo's AST-based invariant linter.

The reproduction's efficiency claims rest on instrumentation contracts the
runtime cannot check for itself: every block access must route through the
scan-accounting store APIs (Lemmas 1 and 2 are phrased against
``store.full_scans``), every metric name must come from one catalog, random
draws must be seeded, fan-out workers must be fork-safe, suffstats must be
treated as values, and public APIs must raise ``repro`` exception types.
This module walks the AST of every source file and dispatches visitor-based
rules (:mod:`repro.analysis.rules`) that turn those implicit contracts into
findings with a file, line, rule id, and message.

Escapes are deliberate and visible:

* a per-line suppression comment — ``# lint: ignore[RPR001]`` (or a bare
  ``# lint: ignore`` for any rule) on the *first* line of the offending
  statement, and
* a baseline file (:func:`load_baseline` / :func:`write_baseline`) that
  grandfathers existing findings by ``(rule, path, message)`` so a new rule
  can land strictly before its violations are burned down.  The shipped tree
  keeps an **empty** baseline; CI runs without one.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ReproError

__all__ = [
    "AnalysisError",
    "DEFAULT_EXCLUDES",
    "DEFAULT_ROOTS",
    "Engine",
    "FileContext",
    "Finding",
    "PARSE_ERROR_RULE",
    "Rule",
    "RuleVisitor",
    "Scope",
    "apply_baseline",
    "load_baseline",
    "prune_baseline",
    "stale_baseline_keys",
    "write_baseline",
]

#: Rule id attached to files the engine cannot parse at all.
PARSE_ERROR_RULE = "RPR000"

#: Directories walked when no explicit paths are given (repo-root relative).
DEFAULT_ROOTS = ("src/repro", "tests")

#: Repo-root-relative prefixes never linted: the fixture corpus *is* a pile
#: of deliberate violations.
DEFAULT_EXCLUDES = ("tests/analysis/fixtures",)

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)


class AnalysisError(ReproError):
    """The linter itself was misused (bad rule id, unreadable baseline...)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-root-relative, posix-style
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Line-insensitive identity used by baseline matching."""
        return (self.rule_id, self.path, self.message)


@dataclass(frozen=True)
class Scope:
    """Which repo-root-relative paths a rule applies to.

    ``include``/``exclude`` are posix path prefixes; a file is in scope when
    some include prefix matches and no exclude prefix does.  The default
    scope matches everything (the engine's global excludes still apply).
    """

    include: tuple[str, ...] = ("",)
    exclude: tuple[str, ...] = ()

    def contains(self, relpath: str) -> bool:
        return _matches_any(relpath, self.include) and not _matches_any(
            relpath, self.exclude
        )


def _matches_any(relpath: str, prefixes: Sequence[str]) -> bool:
    for prefix in prefixes:
        if not prefix or relpath == prefix or relpath.startswith(
            prefix.rstrip("/") + "/"
        ):
            return True
    return False


class FileContext:
    """One parsed source file plus its suppression comments."""

    def __init__(self, root: Path, path: Path):
        self.root = root
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        # line -> None (suppress every rule) or a set of rule ids.
        self._suppressions: dict[int, set[str] | None] = {}
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            ids = match.group("ids")
            if ids is None:
                self._suppressions[lineno] = None
            elif not (
                lineno in self._suppressions
                and self._suppressions[lineno] is None
            ):
                wanted = {part.strip() for part in ids.split(",") if part.strip()}
                self._suppressions[lineno] = (
                    self._suppressions.get(lineno) or set()
                ) | wanted
        self.module_is_test = self.relpath.startswith("tests")

    def suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self._suppressions:
            return False
        ids = self._suppressions[line]
        return ids is None or rule_id in ids

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class for one invariant: an id, a default scope, a visitor.

    Subclasses implement :meth:`make_visitor`, returning an
    :class:`ast.NodeVisitor` with a ``findings`` list attribute; the engine
    runs it over the file's tree and collects the findings.  Rules that need
    engine-wide context (the metric catalog, the repo root) receive the
    engine itself.
    """

    rule_id: str = "RPR###"
    title: str = ""
    #: Where the rule applies by default; the engine may override per rule.
    default_scope: Scope = Scope()

    def make_visitor(self, ctx: FileContext, engine: "Engine") -> ast.NodeVisitor:
        raise NotImplementedError

    def check(self, ctx: FileContext, engine: "Engine") -> list[Finding]:
        visitor = self.make_visitor(ctx, engine)
        visitor.visit(ctx.tree)
        return list(visitor.findings)


class RuleVisitor(ast.NodeVisitor):
    """Shared base: carries the context and accumulates findings."""

    def __init__(self, rule: Rule, ctx: FileContext, engine: "Engine"):
        self.rule = rule
        self.ctx = ctx
        self.engine = engine
        self.findings: list[Finding] = []

    def add(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.ctx.finding(node, self.rule.rule_id, message))


class Engine:
    """Walks source files, dispatches rules, filters suppressions.

    Parameters
    ----------
    root:
        Repo root every reported path is relative to.
    rules:
        The rule instances to run (default: every registered rule).
    scopes:
        Optional per-rule-id :class:`Scope` overrides.  Tests use
        ``{rule_id: Scope()}`` to point a rule at fixture files its default
        scope would skip.
    excludes:
        Repo-root-relative prefixes skipped entirely.
    """

    def __init__(
        self,
        root: str | Path,
        rules: Sequence[Rule] | None = None,
        scopes: dict[str, Scope] | None = None,
        excludes: Sequence[str] = DEFAULT_EXCLUDES,
    ):
        from .rules import ALL_RULES  # deferred: rules import this module

        self.root = Path(root).resolve()
        self.rules = list(ALL_RULES if rules is None else rules)
        self._scopes = dict(scopes or {})
        self.excludes = tuple(excludes)
        self._catalog_names: frozenset[str] | None = None
        self._lock_graph = None

    # ------------------------------------------------------------- file walk

    def iter_files(self, paths: Sequence[str | Path] | None = None) -> Iterator[Path]:
        """Python files under ``paths`` (default: the repo's lint roots)."""
        if paths is None:
            paths = [self.root / rel for rel in DEFAULT_ROOTS]
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            candidates = (
                sorted(path.rglob("*.py")) if path.is_dir() else [path]
            )
            for file in candidates:
                file = file.resolve()
                if file in seen or not file.exists():
                    continue
                seen.add(file)
                rel = self._relpath(file)
                if rel is None or _matches_any(rel, self.excludes):
                    continue
                yield file

    def _relpath(self, file: Path) -> str | None:
        try:
            return file.relative_to(self.root).as_posix()
        except ValueError:
            return None

    def scope_for(self, rule: Rule) -> Scope:
        return self._scopes.get(rule.rule_id, rule.default_scope)

    # ------------------------------------------------------------------- run

    def run(self, paths: Sequence[str | Path] | None = None) -> list[Finding]:
        """Every unsuppressed finding under ``paths``, sorted by location."""
        findings: list[Finding] = []
        for file in self.iter_files(paths):
            findings.extend(self.check_file(file))
        return sorted(findings)

    def check_file(self, file: Path) -> list[Finding]:
        rel = self._relpath(file)
        if rel is None:
            raise AnalysisError(f"{file} is outside the lint root {self.root}")
        try:
            ctx = FileContext(self.root, file)
        except SyntaxError as exc:
            return [
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        out: list[Finding] = []
        for rule in self.rules:
            if not self.scope_for(rule).contains(rel):
                continue
            for finding in rule.check(ctx, self):
                if not ctx.suppressed(finding.line, finding.rule_id):
                    out.append(finding)
        return out

    # -------------------------------------------------------------- catalog

    def catalog_names(self) -> frozenset[str]:
        """Metric names defined in ``repro/obs/catalog.py`` (parsed, not
        imported, so the linter works on trees that do not import)."""
        if self._catalog_names is None:
            self._catalog_names = _parse_catalog(
                self.root / "src" / "repro" / "obs" / "catalog.py"
            )
        return self._catalog_names

    def lock_graph(self):
        """The tree-wide lock-acquisition graph RPR008 checks against.

        Built once per engine from every file under ``src/repro`` (minus
        the analysis package itself — its graph machinery mentions lock
        names without acquiring them), using the canonical lock names of
        :mod:`repro.analysis.guards`.
        """
        if self._lock_graph is None:
            from .guards import build_lock_graph, parse_tree_files

            src = self.root / "src" / "repro"
            files = [
                file
                for file in self.iter_files([src] if src.is_dir() else [])
                if not self._relpath(file).startswith("src/repro/analysis")
            ]
            self._lock_graph = build_lock_graph(parse_tree_files(self.root, files))
        return self._lock_graph


def _parse_catalog(path: Path) -> frozenset[str]:
    if not path.exists():
        return frozenset()
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    names: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Constant):
            continue
        if not isinstance(node.value.value, str):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id.isupper():
                names.add(node.value.value)
    return frozenset(names)


# ------------------------------------------------------------------ baseline


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Baseline keys ``(rule, path, message)`` from a JSON baseline file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload["findings"]
        return {
            (entry["rule"], entry["path"], entry["message"])
            for entry in entries
        }
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise AnalysisError(f"unreadable baseline {path}: {exc!r}") from exc


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write the findings as a baseline file (line numbers are advisory)."""
    payload = {
        "version": 1,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Iterable[Finding], baseline: set[tuple[str, str, str]]
) -> list[Finding]:
    """The findings whose ``(rule, path, message)`` is not grandfathered."""
    return [f for f in findings if f.baseline_key not in baseline]


def stale_baseline_keys(
    findings: Iterable[Finding], baseline: set[tuple[str, str, str]]
) -> set[tuple[str, str, str]]:
    """Baseline entries no current finding matches — burned-down debt that
    would silently grandfather a future regression with the same message."""
    live = {f.baseline_key for f in findings}
    return baseline - live


def prune_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Rewrite the baseline keeping only entries some finding matches.

    Returns how many stale entries were dropped.  Entries are preserved
    verbatim (advisory line numbers included); only membership changes.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload["findings"]
        keys = [
            (entry["rule"], entry["path"], entry["message"])
            for entry in entries
        ]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise AnalysisError(f"unreadable baseline {path}: {exc!r}") from exc
    live = {f.baseline_key for f in findings}
    kept = [entry for entry, key in zip(entries, keys) if key in live]
    stale = len(entries) - len(kept)
    if stale:
        payload["findings"] = kept
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return stale
