"""RPR007 — guarded fields are touched only under their guarding lock.

The serve layer's consistency contract (DESIGN §9) hangs on a simple
discipline: ``ServerState``'s cached tables/cube/models move only under
the write lock, are read only under some lock, and the serve instrument
globals are touched only under ``_INSTRUMENT_LOCK`` (the metrics registry
is single-threaded by design).  The discipline lives in
:data:`repro.analysis.guards.CLASS_GUARDS` / ``MODULE_GUARDS``; this rule
makes it checkable:

* a read of a guarded attribute needs *some* scope of the guard lock, a
  write (assignment, ``del``, subscript store, mutating method call)
  needs a ``write()`` scope;
* ``self.m_locked()`` — the "caller holds the lock" naming contract —
  may only be called inside a lock scope or from another ``*_locked``
  method (the one-hop discipline);
* calling a lock-*acquiring* method of the same class from inside a lock
  scope is flagged: the RW lock is neither reentrant nor upgradable, so
  that call is a self-deadlock.

``__init__`` (pre-publication: no other thread can see the object) and
``*_locked`` methods (their callers hold the lock; the runtime checker's
``assert_holds_*`` verifies them dynamically) are exempt.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule, Scope
from ..guards import (
    CLASS_GUARDS,
    LOCKED_SUFFIX,
    MODULE_GUARDS,
    ClassGuard,
    ModuleGuard,
    classify_lock_acquisition,
    function_lock_acquisitions,
)

__all__ = ["GuardedFieldsRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = (*_FUNC_NODES, ast.Lambda, ast.ClassDef)

#: Method calls that mutate the receiver in place.
_MUTATORS = {
    "clear", "pop", "popitem", "update", "setdefault", "append", "extend",
    "insert", "remove", "add", "discard",
}


class GuardedFieldsRule(Rule):
    rule_id = "RPR007"
    title = "guarded attributes are accessed only under their lock"
    default_scope = Scope(
        include=("src/repro",),
        # The analysis package implements the checking machinery itself.
        exclude=("src/repro/analysis",),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        raise NotImplementedError("RPR007 overrides check()")

    def check(self, ctx: FileContext, engine) -> list[Finding]:
        findings: list[Finding] = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in CLASS_GUARDS:
                _ClassChecker(
                    self, ctx, CLASS_GUARDS[node.name], node, findings
                ).run()
        module_guard = MODULE_GUARDS.get(ctx.relpath)
        if module_guard is not None:
            _ModuleChecker(self, ctx, module_guard, findings).run()
        return findings


class _ClassChecker:
    """Checks one guarded class, method by method."""

    def __init__(
        self,
        rule: Rule,
        ctx: FileContext,
        guard: ClassGuard,
        node: ast.ClassDef,
        findings: list[Finding],
    ):
        self.rule = rule
        self.ctx = ctx
        self.guard = guard
        self.node = node
        self.findings = findings
        self.class_name = node.name
        #: Methods whose own body acquires the guard lock — calling one
        #: while holding the lock deadlocks (non-reentrant).
        self.acquiring = {
            m.name
            for m in node.body
            if isinstance(m, _FUNC_NODES)
            and guard.lock_name
            in function_lock_acquisitions(m, node.name)
        }

    def run(self) -> None:
        for method in self.node.body:
            if not isinstance(method, _FUNC_NODES):
                continue
            if method.name == "__init__" or method.name.endswith(LOCKED_SUFFIX):
                continue
            self._depth_any = 0
            self._depth_write = 0
            self._handled: set[int] = set()
            self._walk_body(method.body)

    # --------------------------------------------------------------- walking

    def _walk_body(self, stmts) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _SKIP_NODES):
            return
        if isinstance(stmt, ast.With):
            delta_any = delta_write = 0
            for item in stmt.items:
                scope = classify_lock_acquisition(
                    item.context_expr, self.class_name
                )
                if scope is not None and scope.name == self.guard.lock_name:
                    delta_any += 1
                    if scope.grants_write:
                        delta_write += 1
            self._depth_any += delta_any
            self._depth_write += delta_write
            self._walk_body(stmt.body)
            self._depth_any -= delta_any
            self._depth_write -= delta_write
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._check_store(target)
            self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._check_store(stmt.target)
            self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._check_store(stmt.target)
            if stmt.value is not None:
                self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store(target)
            return
        # Generic statement: visit nested statements + expressions.
        self._walk_generic(stmt)

    def _walk_generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child)
            elif isinstance(child, ast.expr):
                self._visit_expr(child)
            else:
                # ExceptHandler, withitem, keyword, ... — recurse through.
                self._walk_generic(child)

    def _check_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)
            return
        attr = self._guarded_attr(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = self._guarded_attr(target.value)
            self._visit_expr(target.slice)
        if attr is not None:
            self._handled.add(id(target))
            self._report_write(target, attr)
            return
        self._visit_expr(target)

    def _visit_expr(self, expr: ast.expr) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, _SKIP_NODES) or id(node) in self._handled:
                continue
            if isinstance(node, ast.Call):
                self._check_call(node)
            elif isinstance(node, ast.Attribute):
                attr = self._guarded_attr(node)
                if attr is not None:
                    self._handled.add(id(node))
                    self._report_read(node, attr)
                    continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # self.<guarded>.clear() and friends mutate under the hood.
        attr = self._guarded_attr(func.value)
        if attr is not None and func.attr in _MUTATORS:
            self._handled.add(id(func.value))
            self._report_write(node, attr)
            return
        if not (isinstance(func.value, ast.Name) and func.value.id == "self"):
            return
        method = func.attr
        if method.endswith(LOCKED_SUFFIX) and self._depth_any == 0:
            self._add(
                node,
                f"call to {self.class_name}.{method} (contract: "
                f"{self.guard.lock_name} held) outside any lock scope",
            )
        elif method in self.acquiring and self._depth_any > 0:
            self._add(
                node,
                f"call to {self.class_name}.{method} acquires "
                f"{self.guard.lock_name} while it is already held — the "
                "lock is not reentrant; this deadlocks",
            )

    # --------------------------------------------------------------- helpers

    def _guarded_attr(self, node: ast.expr) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.guard.guarded
        ):
            return node.attr
        return None

    def _report_read(self, node: ast.AST, attr: str) -> None:
        if self._depth_any == 0:
            self._add(
                node,
                f"read of {self.class_name}.{attr} guarded by "
                f"{self.guard.lock_name} outside any lock scope",
            )

    def _report_write(self, node: ast.AST, attr: str) -> None:
        if not self.guard.rw:
            if self._depth_any == 0:
                self._add(
                    node,
                    f"write to {self.class_name}.{attr} guarded by "
                    f"{self.guard.lock_name} outside the lock",
                )
            return
        if self._depth_write == 0:
            where = (
                "under the read lock (needs a write() scope)"
                if self._depth_any > 0
                else "outside any lock scope"
            )
            self._add(
                node,
                f"write to {self.class_name}.{attr} guarded by "
                f"{self.guard.lock_name} {where}",
            )

    def _add(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.ctx.finding(node, self.rule.rule_id, message)
        )


class _ModuleChecker:
    """Checks a module guard: globals behind a module-level lock."""

    def __init__(
        self,
        rule: Rule,
        ctx: FileContext,
        guard: ModuleGuard,
        findings: list[Finding],
    ):
        self.rule = rule
        self.ctx = ctx
        self.guard = guard
        self.findings = findings

    def run(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, _FUNC_NODES):
                self._check_function(node)

    def _check_function(self, fn) -> None:
        def walk(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SKIP_NODES):
                    continue
                if isinstance(child, ast.With):
                    delta = 0
                    for item in child.items:
                        scope = classify_lock_acquisition(
                            item.context_expr, None
                        )
                        if (
                            scope is not None
                            and scope.name == self.guard.lock_name
                        ):
                            delta += 1
                    walk(child, depth + delta)
                    continue
                if (
                    isinstance(child, ast.Name)
                    and child.id in self.guard.guarded
                    and depth == 0
                ):
                    self.findings.append(
                        self.ctx.finding(
                            child,
                            self.rule.rule_id,
                            f"serve instrument {child.id} guarded by "
                            f"{self.guard.lock_name} touched outside "
                            f"{self.guard.lock_global}",
                        )
                    )
                    continue
                walk(child, depth)

        walk(fn, 0)
