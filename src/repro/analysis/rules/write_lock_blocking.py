"""RPR009 — no blocking work inside a ``write()`` lock scope.

The RW lock is writer-preferring: while a writer holds (or waits for) the
lock, *every* new reader parks.  A full fact scan, a linear solve, a
sleep, or HTTP handling inside a ``write()`` scope therefore stalls the
entire warm path — the p99 cliff the fig13 loadgen would catch only
after the fact.  This rule catches it at lint time: inside any
``with <lock>.write():`` scope (and one call-hop into same-module
functions reached from one), calls that block are findings:

* store traffic: ``.scan()`` / ``.scan_chunks()`` / ``._fetch()``,
* numeric heavy-lifting: ``np.linalg.solve`` / ``lstsq``,
* stalls: ``time.sleep``, and
* HTTP handling: ``urlopen`` / ``serve_forever`` / ``handle_request``.

Cold-path refresh work that *must* run under the write lock routes
through opaque cross-module calls (``search.refresh``,
``build_cube_tables``) — deliberate: their cost is bounded by the
incremental maintainer, they are the write lock's whole purpose, and the
scan-accounting counters (RPR001's domain) keep them truthful.
"""

from __future__ import annotations

import ast

from ..callgraph import ModuleCallGraph
from ..engine import FileContext, Finding, Rule, Scope
from ..guards import classify_lock_acquisition, iter_lock_functions

__all__ = ["WriteLockBlockingRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = (*_FUNC_NODES, ast.Lambda, ast.ClassDef)

#: Callee attribute/function names that block, by final name.
_BLOCKING_NAMES = {
    "scan": "a full store scan",
    "scan_chunks": "a chunked store scan",
    "_fetch": "a store block fetch",
    "sleep": "a sleep",
    "urlopen": "an HTTP request",
    "serve_forever": "HTTP serving",
    "handle_request": "HTTP handling",
    "solve": "a linear solve",
    "lstsq": "a least-squares solve",
}
#: Names that only count when reached through ``<...>.linalg.<name>``.
_LINALG_ONLY = {"solve", "lstsq"}


def _blocking_call(node: ast.Call) -> str | None:
    """A human description when ``node`` is a known blocking call."""
    func = node.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name not in _BLOCKING_NAMES:
        return None
    if name in _LINALG_ONLY:
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "linalg"
        ):
            return None
    return _BLOCKING_NAMES[name]


def _has_blocking_call(fn_node: ast.AST) -> str | None:
    """A blocking call anywhere in ``fn_node``'s own body, if any."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SKIP_NODES):
            continue
        if isinstance(child, ast.Call):
            desc = _blocking_call(child)
            if desc is not None:
                return desc
        stack.extend(ast.iter_child_nodes(child))
    return None


class WriteLockBlockingRule(Rule):
    rule_id = "RPR009"
    title = "no blocking calls under a write() lock scope"
    default_scope = Scope(
        include=("src/repro",),
        exclude=("src/repro/analysis",),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        raise NotImplementedError("RPR009 overrides check()")

    def check(self, ctx: FileContext, engine) -> list[Finding]:
        findings: list[Finding] = []
        cg = ModuleCallGraph(ctx.tree)
        blocking_index = {
            entry.qualname: _has_blocking_call(entry.node)
            for entry in cg.functions.values()
        }

        def walk(node: ast.AST, depth: int, class_name: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SKIP_NODES):
                    continue
                if isinstance(child, ast.With):
                    delta = 0
                    for item in child.items:
                        scope = classify_lock_acquisition(
                            item.context_expr, class_name
                        )
                        if scope is not None and scope.mode == "write":
                            delta += 1
                    walk(child, depth + delta, class_name)
                    continue
                if isinstance(child, ast.Call) and depth > 0:
                    desc = _blocking_call(child)
                    if desc is not None:
                        findings.append(
                            ctx.finding(
                                child,
                                self.rule_id,
                                f"{desc} inside a write() lock scope stalls "
                                "every reader (writer-preferring lock)",
                            )
                        )
                        continue
                    entry = cg.resolve_call(child, class_name)
                    if entry is not None:
                        via = blocking_index.get(entry.qualname)
                        if via is not None:
                            findings.append(
                                ctx.finding(
                                    child,
                                    self.rule_id,
                                    f"call to {entry.qualname} performs "
                                    f"{via} inside a write() lock scope "
                                    "(one call-hop)",
                                )
                            )
                            continue
                walk(child, depth, class_name)

        for fn, class_name in iter_lock_functions(ctx.tree):
            walk(fn, 0, class_name)
        return findings
