"""RPR005 — suffstats are values: no in-place mutation outside the class.

Theorem 1's algebraic rollup (``g`` merges by component-wise addition, ``q``
solves from the merged components) is only correct if a
:class:`~repro.ml.LinearSuffStats` / :class:`~repro.ml.StackedSuffStats`
handed to a caller is never mutated behind its back: the incremental
maintainer caches stacks across refreshes and proves bit-for-bit equality
with scratch builds on the assumption that ``+``/``-``/``rollup`` return
fresh objects and only :meth:`StackedSuffStats.assign` (on an explicit
``copy()``) writes in place.

Outside :mod:`repro.ml`, the rule flags writes through the stat component
attributes (``.ytwy``, ``.xtwx``, ``.xtwy``, ``.sum_w``) — direct
assignment, slice/index assignment, augmented assignment, or scatter-adds
via ``np.add.at`` — the only spellings of in-place mutation those arrays
admit.  Reading the components (the cache serializer does) is fine.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, RuleVisitor, Scope

__all__ = ["SuffStatsPurityRule"]

_STAT_ATTRS = {"ytwy", "xtwx", "xtwy", "sum_w"}


def _stat_attribute(node: ast.AST) -> ast.Attribute | None:
    """The ``X.ytwy``-style attribute inside an assignment target, if any."""
    if isinstance(node, ast.Attribute) and node.attr in _STAT_ATTRS:
        return node
    if isinstance(node, ast.Subscript):
        return _stat_attribute(node.value)
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            found = _stat_attribute(element)
            if found is not None:
                return found
    return None


class _Visitor(RuleVisitor):
    def _flag(self, node: ast.AST, attr: ast.Attribute, how: str) -> None:
        self.add(
            node,
            f"in-place {how} of suffstats component `.{attr.attr}` outside "
            "repro.ml breaks the value semantics the rollup algebra "
            "(Theorem 1) and the incremental bit-for-bit proof assume; "
            "use +/-/rollup/assign on a copy()",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = _stat_attribute(target)
            if attr is not None:
                self._flag(node, attr, "assignment")
                break
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _stat_attribute(node.target)
        if attr is not None:
            self._flag(node, attr, "augmented assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            attr = _stat_attribute(node.target)
            if attr is not None:
                self._flag(node, attr, "assignment")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # np.add.at(stats.xtwx, idx, ...) mutates the component in place.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "at"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "add"
            and node.args
        ):
            attr = _stat_attribute(node.args[0])
            if attr is not None:
                self._flag(node, attr, "scatter-add")
        self.generic_visit(node)


class SuffStatsPurityRule(Rule):
    rule_id = "RPR005"
    title = "no in-place suffstats mutation outside repro.ml"
    default_scope = Scope(
        include=("src/repro",),
        exclude=("src/repro/ml",),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        return _Visitor(self, ctx, engine)
