"""RPR001 — every block access routes through the instrumented store APIs.

Lemma 1 (one scan per tree level) and Lemma 2 (one scan per cube build) are
verified against ``store.full_scans`` / ``store.region_reads``; the obs,
bench, and conformance layers all read those counters.  A code path that
reaches into ``TrainingDataStore`` internals (``_blocks``, ``_fetch``,
``_files``) or opens ``.npz`` block files directly does real I/O the
counters never see — the scan-bound tests keep passing while the claim they
certify silently stops being measured.

Outside the storage layer (and :mod:`repro.obs`, which renders stats), the
rule flags:

* attribute access on the store's private internals, and
* direct ``np.load`` / ``np.savez`` / ``np.savez_compressed`` /
  ``np.memmap`` calls (``np.memmap`` is how the columnar backend maps its
  raw column files; outside ``repro.storage`` a mapping bypasses
  ``store.columnar.chunks_read`` and the byte counters).

Legitimate non-store ``.npz`` persistence (the suffstats cache) carries an
inline ``# lint: ignore[RPR001]`` with its justification.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, RuleVisitor, Scope

__all__ = ["ScanAccountingRule"]

_STORE_INTERNALS = {"_blocks", "_fetch", "_files"}
_NPZ_CALLS = {"load", "savez", "savez_compressed", "memmap"}
_NUMPY_ALIASES = {"np", "numpy"}


class _Visitor(RuleVisitor):
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _STORE_INTERNALS:
            self.add(
                node,
                f"store internal `.{node.attr}` bypasses I/O accounting "
                "(store.full_scans / store.region_reads); use read()/scan()",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NPZ_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id in _NUMPY_ALIASES
        ):
            self.add(
                node,
                f"direct np.{func.attr} outside repro.storage: block I/O "
                "must go through the instrumented store APIs",
            )
        self.generic_visit(node)


class ScanAccountingRule(Rule):
    rule_id = "RPR001"
    title = "block access must route through scan-accounting store APIs"
    default_scope = Scope(
        include=("src/repro",),
        exclude=("src/repro/storage", "src/repro/obs", "src/repro/analysis"),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        return _Visitor(self, ctx, engine)
