"""The invariant rule set, one module per contract.

==========  ====================================================== ==========
Rule        Contract                                               Guards
==========  ====================================================== ==========
``RPR001``  block access routes through scan-accounting APIs       Lemma 1/2
``RPR002``  metric names come from :mod:`repro.obs.catalog`        obs/bench
``RPR003``  random draws use explicitly seeded generators          conformance
``RPR004``  executor-submitted work is fork-safe                   exec layer
``RPR005``  suffstats are values outside :mod:`repro.ml`           Theorem 1
``RPR006``  no swallowed catch-alls; raise ``repro`` types         API surface
``RPR007``  guarded attributes touched only under their lock       serve §9
``RPR008``  lock pairs acquired in one consistent order            serve §9
``RPR009``  no blocking calls inside a ``write()`` scope           serve p99
``RPR010``  storage writes are atomic (tmp + ``os.replace``)       durability
==========  ====================================================== ==========

RPR007–009 share the interprocedural machinery of
:mod:`repro.analysis.guards` / :mod:`repro.analysis.callgraph`; their
dynamic twin is the opt-in runtime checker
(:mod:`repro.analysis.runtime`).
"""

from __future__ import annotations

from ..engine import AnalysisError, Rule
from .atomic_writes import AtomicWritesRule
from .counter_catalog import CounterCatalogRule
from .exception_discipline import ExceptionDisciplineRule
from .fork_safety import ForkSafetyRule
from .guarded_fields import GuardedFieldsRule
from .lock_order import LockOrderRule
from .scan_accounting import ScanAccountingRule
from .seed_discipline import SeedDisciplineRule
from .suffstats_purity import SuffStatsPurityRule
from .write_lock_blocking import WriteLockBlockingRule

__all__ = [
    "ALL_RULES",
    "AtomicWritesRule",
    "CounterCatalogRule",
    "ExceptionDisciplineRule",
    "ForkSafetyRule",
    "GuardedFieldsRule",
    "LockOrderRule",
    "ScanAccountingRule",
    "SeedDisciplineRule",
    "SuffStatsPurityRule",
    "WriteLockBlockingRule",
    "get_rules",
]

#: Every registered rule, in id order.
ALL_RULES: tuple[Rule, ...] = (
    ScanAccountingRule(),
    CounterCatalogRule(),
    SeedDisciplineRule(),
    ForkSafetyRule(),
    SuffStatsPurityRule(),
    ExceptionDisciplineRule(),
    GuardedFieldsRule(),
    LockOrderRule(),
    WriteLockBlockingRule(),
    AtomicWritesRule(),
)


def get_rules(rule_ids: list[str] | None = None) -> list[Rule]:
    """The selected rules (default: all), validating unknown ids loudly."""
    if not rule_ids:
        return list(ALL_RULES)
    by_id = {rule.rule_id: rule for rule in ALL_RULES}
    unknown = [rid for rid in rule_ids if rid not in by_id]
    if unknown:
        raise AnalysisError(
            f"unknown rule ids {unknown}; have {sorted(by_id)}"
        )
    return [by_id[rid] for rid in rule_ids]
