"""The invariant rule set, one module per contract.

==========  ====================================================== ==========
Rule        Contract                                               Guards
==========  ====================================================== ==========
``RPR001``  block access routes through scan-accounting APIs       Lemma 1/2
``RPR002``  metric names come from :mod:`repro.obs.catalog`        obs/bench
``RPR003``  random draws use explicitly seeded generators          conformance
``RPR004``  executor-submitted work is fork-safe                   exec layer
``RPR005``  suffstats are values outside :mod:`repro.ml`           Theorem 1
``RPR006``  no swallowed catch-alls; raise ``repro`` types         API surface
==========  ====================================================== ==========
"""

from __future__ import annotations

from ..engine import AnalysisError, Rule
from .counter_catalog import CounterCatalogRule
from .exception_discipline import ExceptionDisciplineRule
from .fork_safety import ForkSafetyRule
from .scan_accounting import ScanAccountingRule
from .seed_discipline import SeedDisciplineRule
from .suffstats_purity import SuffStatsPurityRule

__all__ = [
    "ALL_RULES",
    "CounterCatalogRule",
    "ExceptionDisciplineRule",
    "ForkSafetyRule",
    "ScanAccountingRule",
    "SeedDisciplineRule",
    "SuffStatsPurityRule",
    "get_rules",
]

#: Every registered rule, in id order.
ALL_RULES: tuple[Rule, ...] = (
    ScanAccountingRule(),
    CounterCatalogRule(),
    SeedDisciplineRule(),
    ForkSafetyRule(),
    SuffStatsPurityRule(),
    ExceptionDisciplineRule(),
)


def get_rules(rule_ids: list[str] | None = None) -> list[Rule]:
    """The selected rules (default: all), validating unknown ids loudly."""
    if not rule_ids:
        return list(ALL_RULES)
    by_id = {rule.rule_id: rule for rule in ALL_RULES}
    unknown = [rid for rid in rule_ids if rid not in by_id]
    if unknown:
        raise AnalysisError(
            f"unknown rule ids {unknown}; have {sorted(by_id)}"
        )
    return [by_id[rid] for rid in rule_ids]
