"""RPR002 — metric names come from the central catalog, never free-typed.

A typo'd counter name registers a second instrument that nobody increments;
whatever reads the misspelled name sees zeros and the scan-bound/bench gates
certify nothing.  :mod:`repro.obs.catalog` is the single source of truth,
and this rule closes both halves of the loop:

* a string literal passed to ``counter()/gauge()/histogram()/inc()/
  observe()`` must be a name the catalog defines (otherwise: add it there
  first), and
* a catalogued name may not be re-typed as a raw literal anywhere — import
  the constant, so renames are one edit and typos cannot compile.

The catalog is parsed from source (see :meth:`Engine.catalog_names`), so
the rule works without importing :mod:`repro.obs`.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, RuleVisitor, Scope

__all__ = ["CounterCatalogRule"]

_REGISTRY_METHODS = {"counter", "gauge", "histogram", "inc", "observe"}


class _Visitor(RuleVisitor):
    def __init__(self, rule, ctx, engine):
        super().__init__(rule, ctx, engine)
        self._catalog = engine.catalog_names()
        self._handled: set[int] = set()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _REGISTRY_METHODS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            name_node = node.args[0]
            self._handled.add(id(name_node))
            name = name_node.value
            if name not in self._catalog:
                self.add(
                    name_node,
                    f"metric name {name!r} is not in repro.obs.catalog; "
                    "register it there and import the constant",
                )
            else:
                self.add(
                    name_node,
                    f"metric name {name!r} re-typed as a literal; import "
                    "the repro.obs.catalog constant instead",
                )
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            id(node) not in self._handled
            and isinstance(node.value, str)
            and node.value in self._catalog
        ):
            self.add(
                node,
                f"catalogued metric name {node.value!r} written as a raw "
                "string; import the repro.obs.catalog constant instead",
            )


class CounterCatalogRule(Rule):
    rule_id = "RPR002"
    title = "metric name literals must come from repro.obs.catalog"
    default_scope = Scope(
        include=("src/repro",),
        # The catalog defines the literals; metrics/trace implement the
        # registry machinery and never name concrete instruments.
        exclude=(
            "src/repro/obs/catalog.py",
            "src/repro/obs/metrics.py",
            "src/repro/obs/trace.py",
        ),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        return _Visitor(self, ctx, engine)
