"""RPR004 — work fanned out through the executor must be fork-safe.

:class:`repro.exec.ParallelExecutor` keeps the process-wide counters
truthful by merging worker-side deltas back into the parent — but only for
work that flows through it, and only when the submitted function does not
smuggle state sideways.  Three hazards, three checks:

* **Rogue pools** — importing ``multiprocessing`` or ``concurrent.futures``
  outside :mod:`repro.exec` creates workers whose counter increments are
  silently dropped (and whose scans the Lemma tests never see).  All
  fan-out routes through ``ParallelExecutor``.
* **Module-state mutation** — a function submitted to
  ``ParallelExecutor.map`` that mutates module-level mutable state (a
  ``global`` write, ``CACHE.append(...)``, ``TABLE[k] = v``) behaves
  differently per backend: forked children mutate a copy that is thrown
  away, threads race, serial "works".  Metric instruments are exempt —
  counter deltas are exactly what the executor merges back.
* **Unpicklable entry points** — a callable handed to a raw
  ``Pool``/``ProcessPoolExecutor`` ``map``/``submit`` must be a
  module-level function; lambdas and closures fail to pickle on any
  non-fork start method.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, RuleVisitor, Scope

__all__ = ["ForkSafetyRule"]

_BANNED_IMPORTS = {"multiprocessing", "concurrent.futures", "concurrent"}
_MUTATORS = {
    "append", "add", "update", "extend", "insert", "pop", "popitem",
    "clear", "setdefault", "remove", "discard", "sort", "reverse",
}
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque", "OrderedDict"}
_POOL_FACTORIES = {"Pool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
_POOL_SUBMITS = {"map", "imap", "imap_unordered", "apply", "apply_async", "submit"}
# Module-level names bound to metric/trace instruments are sanctioned
# shared state: worker counter increments are merged back by the executor.
_INSTRUMENT_FACTORIES = {"counter", "gauge", "histogram", "get_registry", "get_tracer"}


def _is_mutable_binding(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _call_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _Visitor(RuleVisitor):
    def __init__(self, rule, ctx, engine):
        super().__init__(rule, ctx, engine)
        tree = ctx.tree
        self._module_defs: dict[str, ast.AST] = {}
        self._mutable_globals: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._module_defs[node.name] = node
            elif isinstance(node, ast.Assign):
                if _is_mutable_binding(node.value) and not self._is_instrument(
                    node.value
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self._mutable_globals.add(target.id)
        # Every function/lambda anywhere in the file, by name where named.
        self._all_defs: dict[str, ast.AST] = dict(self._module_defs)
        self._executor_vars: set[str] = set()
        self._pool_vars: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._all_defs.setdefault(node.name, node)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = _call_name(node.value.func)
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if callee == "ParallelExecutor":
                        self._executor_vars.add(target.id)
                    elif callee in _POOL_FACTORIES:
                        self._pool_vars.add(target.id)

    @staticmethod
    def _is_instrument(value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and _call_name(value.func) in _INSTRUMENT_FACTORIES
        )

    # ---------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            top = alias.name.split(".")[0]
            if alias.name in _BANNED_IMPORTS or top in _BANNED_IMPORTS:
                self.add(
                    node,
                    f"import of {alias.name!r} outside repro.exec: fan-out "
                    "must use ParallelExecutor so worker counters merge back",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module in _BANNED_IMPORTS or module.split(".")[0] in _BANNED_IMPORTS:
            self.add(
                node,
                f"import from {module!r} outside repro.exec: fan-out "
                "must use ParallelExecutor so worker counters merge back",
            )

    # ------------------------------------------------------------ submissions

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and node.args:
            target = func.value
            if func.attr == "map" and self._is_executor(target):
                self._check_submitted(node.args[0])
            elif func.attr in _POOL_SUBMITS and self._is_pool(target):
                self._check_picklable(node.args[0])
        self.generic_visit(node)

    def _is_executor(self, target: ast.AST) -> bool:
        if isinstance(target, ast.Call):
            return _call_name(target.func) == "ParallelExecutor"
        return isinstance(target, ast.Name) and target.id in self._executor_vars

    def _is_pool(self, target: ast.AST) -> bool:
        if isinstance(target, ast.Call):
            return _call_name(target.func) in _POOL_FACTORIES
        return isinstance(target, ast.Name) and target.id in self._pool_vars

    def _check_picklable(self, fn: ast.AST) -> None:
        if isinstance(fn, ast.Lambda):
            self.add(
                fn,
                "lambda handed to a raw pool cannot pickle; use a "
                "module-level worker function",
            )
        elif isinstance(fn, ast.Name) and fn.id not in self._module_defs:
            self.add(
                fn,
                f"worker entry point {fn.id!r} is not a module-level "
                "function; nested defs cannot pickle",
            )

    def _check_submitted(self, fn: ast.AST) -> None:
        body: ast.AST | None = None
        if isinstance(fn, ast.Lambda):
            body = fn
        elif isinstance(fn, ast.Name):
            body = self._all_defs.get(fn.id)
        if body is None:
            return  # bound methods / imported callables: best-effort skip
        for sub in ast.walk(body):
            if isinstance(sub, ast.Global):
                self.add(
                    fn,
                    "function submitted to ParallelExecutor.map writes "
                    "`global` state; forked workers mutate a discarded copy",
                )
                return
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATORS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in self._mutable_globals
            ):
                self.add(
                    fn,
                    "function submitted to ParallelExecutor.map mutates "
                    f"module-level {sub.func.value.id!r}; worker-side "
                    "mutations are lost (fork) or race (threads)",
                )
                return
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in self._mutable_globals
                    ):
                        self.add(
                            fn,
                            "function submitted to ParallelExecutor.map "
                            f"writes into module-level "
                            f"{target.value.id!r}; worker-side mutations "
                            "are lost (fork) or race (threads)",
                        )
                        return


class ForkSafetyRule(Rule):
    rule_id = "RPR004"
    title = "executor-submitted work must be fork-safe"
    default_scope = Scope(
        include=("src/repro",),
        exclude=("src/repro/exec",),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        return _Visitor(self, ctx, engine)
