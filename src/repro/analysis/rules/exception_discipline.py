"""RPR006 — no swallowed catch-alls; public APIs raise ``repro`` types.

Two contracts:

* **No silent catch-alls.**  A bare ``except:`` is always a bug (it eats
  ``KeyboardInterrupt``); ``except Exception`` is allowed only when the
  handler re-raises (typically wrapping into a package exception, the
  ``raise StorageError(...) from exc`` idiom).  The conformance runner's
  fold-a-crash-into-a-finding handler is the one sanctioned swallow and
  carries an inline suppression.
* **Raise ``repro`` exception types.**  Public ``repro.*`` APIs raise
  subclasses of :class:`repro.exceptions.ReproError` (package hierarchies
  like ``StorageError``/``ModelError`` root there; ``ConfigError`` doubles
  as ``ValueError`` for compatibility).  Raising a raw builtin —
  ``ValueError``, ``TypeError``, ``RuntimeError``, ... — leaks an
  undeclared exception type to callers.  Protocol exceptions stay exempt:
  ``NotImplementedError`` (abstract methods), ``KeyError``/``IndexError``
  (mapping/sequence semantics, cf. ``ColumnNotFoundError(TableError,
  KeyError)``), ``StopIteration``.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, RuleVisitor, Scope

__all__ = ["ExceptionDisciplineRule"]

_CATCH_ALLS = {"Exception", "BaseException"}
_BANNED_RAISES = {
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "BaseException",
    "BufferError",
    "EOFError",
    "Exception",
    "IOError",
    "OSError",
    "RuntimeError",
    "SystemError",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
}


def _exception_names(node: ast.AST | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Tuple):
        return [n.id for n in node.elts if isinstance(n, ast.Name)]
    return []


class _Visitor(RuleVisitor):
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.add(
                node,
                "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                "catch specific exception types",
            )
        elif any(n in _CATCH_ALLS for n in _exception_names(node.type)):
            reraises = any(
                isinstance(sub, ast.Raise) for sub in ast.walk(node)
            )
            if not reraises:
                self.add(
                    node,
                    "`except Exception` without re-raise swallows failures; "
                    "wrap into a repro exception type and re-raise",
                )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BANNED_RAISES:
            self.add(
                node,
                f"raise of builtin {name}: public repro.* APIs raise repro "
                "exception types (see repro.exceptions; ConfigError doubles "
                "as ValueError)",
            )
        self.generic_visit(node)


class ExceptionDisciplineRule(Rule):
    rule_id = "RPR006"
    title = "no swallowed catch-alls; raise repro exception types"
    default_scope = Scope(include=("src/repro",))

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        return _Visitor(self, ctx, engine)
