"""RPR003 — every random draw flows through an explicitly seeded generator.

The conformance harness replays JSON workload artifacts and promises the
same numbers every time; experiment figures pin their seeds.  One call into
the process-global ``numpy.random`` state (or the stdlib ``random`` module)
quietly breaks that: replayed corpus artifacts stop pinning anything and
"deterministic" parallel runs diverge per worker.

Generalizes the PR 4 conftest lint (which covered only ``repro.verify`` and
``repro.datasets``) to all of ``src/repro`` *and* ``tests``, and — being
AST-based — catches what the old regex could not: ``np.random.default_rng()``
called **without a seed** draws OS entropy and is flagged too.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, RuleVisitor, Scope

__all__ = ["SeedDisciplineRule"]

# Constructors/types that take or carry an explicit seed; anything else on
# np.random touches the unseeded global state.
_ALLOWED = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
_NUMPY_ALIASES = {"np", "numpy"}


def _np_random_member(node: ast.Attribute) -> str | None:
    """``X`` for expressions shaped ``np.random.X`` / ``numpy.random.X``."""
    value = node.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in _NUMPY_ALIASES
    ):
        return node.attr
    return None


class _Visitor(RuleVisitor):
    def visit_Attribute(self, node: ast.Attribute) -> None:
        member = _np_random_member(node)
        if member is not None and member not in _ALLOWED:
            self.add(
                node,
                f"np.random.{member} uses the unseeded global RNG; draw "
                "from np.random.default_rng(seed) instead",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        unseeded = (
            isinstance(func, ast.Attribute)
            and _np_random_member(func) == "default_rng"
            and not node.args
            and not node.keywords
        ) or (
            isinstance(func, ast.Name)
            and func.id == "default_rng"
            and not node.args
            and not node.keywords
        )
        if unseeded:
            self.add(
                node,
                "default_rng() without a seed draws OS entropy; pass an "
                "explicit seed",
            )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.add(
                    node,
                    "stdlib `random` is process-global state; use "
                    "np.random.default_rng(seed)",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.add(
                node,
                "stdlib `random` is process-global state; use "
                "np.random.default_rng(seed)",
            )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED:
                    self.add(
                        node,
                        f"numpy.random.{alias.name} uses the unseeded "
                        "global RNG; draw from default_rng(seed) instead",
                    )


class SeedDisciplineRule(Rule):
    rule_id = "RPR003"
    title = "random draws must use explicitly seeded generators"
    default_scope = Scope(include=("src/repro", "tests"))

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        return _Visitor(self, ctx, engine)
