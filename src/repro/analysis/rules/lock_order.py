"""RPR008 — locks are acquired in one global order, never both ways.

Deadlock needs four conditions; the one a codebase controls statically is
circular wait.  This rule extracts the lock-acquisition graph of the whole
``src/repro`` tree (:meth:`Engine.lock_graph` — lexically nested ``with``
scopes plus one call-hop into same-module functions, over the canonical
lock names of :mod:`repro.analysis.guards`) and flags every acquisition
site whose (held, acquired) pair also occurs reversed anywhere in the
tree.  Both sides of an inversion are reported, each pointing at the
other, so the fix — pick one order — is visible from either end.

The runtime checker (:mod:`repro.analysis.runtime`) is the dynamic twin:
it watches the same graph online, over the same names, and catches orders
established through call chains this one-hop analysis cannot see.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule, Scope
from ..guards import extract_lock_edges

__all__ = ["LockOrderRule"]


class LockOrderRule(Rule):
    rule_id = "RPR008"
    title = "lock pairs are acquired in one consistent order"
    default_scope = Scope(
        include=("src/repro",),
        exclude=("src/repro/analysis",),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        raise NotImplementedError("RPR008 overrides check()")

    def check(self, ctx: FileContext, engine) -> list[Finding]:
        file_graph = extract_lock_edges(ctx.tree, ctx.relpath)
        if not file_graph.edges:
            return []
        global_graph = engine.lock_graph()
        findings: list[Finding] = []
        for (first, second), sites in sorted(file_graph.edges.items()):
            reversed_sites = sorted(
                set(
                    global_graph.reversed_sites(first, second)
                    + file_graph.reversed_sites(first, second)
                )
            )
            if not reversed_sites:
                continue
            where, line = reversed_sites[0]
            for site_path, site_line in sorted(set(sites)):
                findings.append(
                    Finding(
                        path=ctx.relpath,
                        line=site_line,
                        rule_id=self.rule_id,
                        message=(
                            f"lock order inversion: {second!r} acquired "
                            f"while holding {first!r}, but the reverse "
                            f"order is established at {where}:{line}"
                        ),
                    )
                )
        return findings
