"""RPR010 — storage-layer file writes are atomic (tmp + ``os.replace``).

PR 8's torn-pair tests exist because a half-written npz next to an
already-committed manifest is silent corruption: the loader sees a valid
version stamp and memmaps garbage.  ``_atomic_write`` (temp file +
``os.replace``) is the sanctioned pattern — a crash leaves the old file
or the new one, never a hybrid — and this rule generalizes RPR001's
spirit from scan accounting to durability: every file write under
``repro/storage`` and ``repro/incremental`` must either go through
``_atomic_write`` or follow the tmp-then-replace idiom by hand.

Flagged: ``.write_bytes()`` / ``.write_text()``, ``np.savez*``, write- or
append-mode ``open()``, and parquet ``write_table()`` whose target is not
a temp path — plus the inverse bug, a temp write in a function that never
calls ``os.replace`` (the commit that never happens).  A path is "temp"
when its variable name contains ``tmp`` or it is a handle opened from
one; the reviewer-visible naming *is* the contract.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Finding, Rule, Scope

__all__ = ["AtomicWritesRule"]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = (ast.Lambda, ast.ClassDef)

_WRITE_METHODS = {"write_bytes", "write_text"}
_SAVEZ_NAMES = {"savez", "savez_compressed", "save"}


def _is_tmp_name(node: ast.expr, tmp_names: set[str]) -> bool:
    """Does this expression name a temp path (or a handle opened from one)?"""
    if isinstance(node, ast.Name):
        return node.id in tmp_names or "tmp" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "tmp" in node.attr.lower()
    if isinstance(node, ast.Call):
        # path.with_name(... ".tmp") / with_suffix — the construction site.
        func = node.func
        return isinstance(func, ast.Attribute) and func.attr in (
            "with_name",
            "with_suffix",
        )
    return False


def _write_mode(node: ast.Call) -> str | None:
    """The mode string when this is an ``open``-style call, else None."""
    args = list(node.args)
    mode = None
    if isinstance(node.func, ast.Attribute) and node.func.attr == "open":
        mode = args[0] if args else None
    elif isinstance(node.func, ast.Name) and node.func.id == "open":
        mode = args[1] if len(args) > 1 else None
    else:
        return None
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: give the benefit of the doubt


class AtomicWritesRule(Rule):
    rule_id = "RPR010"
    title = "storage file writes go through _atomic_write or tmp+os.replace"
    default_scope = Scope(
        include=("src/repro/storage", "src/repro/incremental"),
    )

    def make_visitor(self, ctx: FileContext, engine) -> ast.NodeVisitor:
        raise NotImplementedError("RPR010 overrides check()")

    def check(self, ctx: FileContext, engine) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, _FUNC_NODES):
                self._check_function(ctx, node, findings)
        return findings

    def _check_function(self, ctx: FileContext, fn, findings) -> None:
        if fn.name == "_atomic_write":
            return  # the sanctioned implementation itself
        tmp_names: set[str] = set()
        has_replace = False
        calls: list[ast.Call] = []
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            child = stack.pop()
            if isinstance(child, (*_FUNC_NODES, *_SKIP_NODES)):
                continue
            if isinstance(child, ast.Assign) and _is_tmp_name(
                child.value, tmp_names
            ):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        tmp_names.add(target.id)
            if isinstance(child, ast.With):
                # with tmp.open("wb") as f: — f inherits tmp-ness.
                for item in child.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and isinstance(item.context_expr.func, ast.Attribute)
                        and item.context_expr.func.attr == "open"
                        and _is_tmp_name(item.context_expr.func.value, tmp_names)
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        tmp_names.add(item.optional_vars.id)
            if isinstance(child, ast.Call):
                func = child.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "replace"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                ):
                    has_replace = True
                else:
                    calls.append(child)
            stack.extend(ast.iter_child_nodes(child))

        for call in calls:
            self._check_call(ctx, call, tmp_names, has_replace, findings)

    def _check_call(self, ctx, call, tmp_names, has_replace, findings) -> None:
        func = call.func
        target: ast.expr | None = None
        what = None
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            target, what = func.value, f".{func.attr}()"
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _SAVEZ_NAMES
            and isinstance(func.value, ast.Name)
            and func.value.id == "np"
        ):
            target = call.args[0] if call.args else None
            what = f"np.{func.attr}()"
        elif (
            isinstance(func, (ast.Attribute, ast.Name))
            and (func.attr if isinstance(func, ast.Attribute) else func.id)
            == "write_table"
        ):
            # parquet: write_table(table, path) — the path is any argument.
            target = next(
                (a for a in call.args if _is_tmp_name(a, tmp_names)), None
            ) or (call.args[-1] if call.args else None)
            what = "write_table()"
        else:
            mode = _write_mode(call)
            if mode is None or not any(c in mode for c in "wax+"):
                return
            if isinstance(func, ast.Attribute):
                target = func.value
            else:
                target = call.args[0] if call.args else None
            what = f"open(mode={mode!r})"
        if target is not None and _is_tmp_name(target, tmp_names):
            if not has_replace:
                findings.append(
                    ctx.finding(
                        call,
                        self.rule_id,
                        f"{what} writes a temp path but the function never "
                        "calls os.replace — the write is never committed",
                    )
                )
            return
        findings.append(
            ctx.finding(
                call,
                self.rule_id,
                f"{what} writes in place; route through _atomic_write or "
                "write a tmp sibling and os.replace it (a crash mid-write "
                "must never leave a torn file)",
            )
        )
