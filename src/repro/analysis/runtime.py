"""Runtime lock-order and lock-discipline checking for the serve stack.

The static rules (RPR007–RPR009) see lexical scopes and one call hop;
this module covers the rest at runtime, cheaply enough to leave compiled
into the hot path:

* Every instrumented lock (the serve :class:`~repro.serve.locks.RWLock`,
  plus the :class:`TrackedLock` wrappers around the instrument / cache /
  journal mutexes) reports ``acquiring`` / ``acquired`` / ``released``
  through the module-level hooks below.  When no checker is installed the
  hooks are a global read and a ``None`` test — nothing else.

* :func:`enable_lockcheck` installs a process-wide :class:`LockChecker`:
  per-thread held-lock stacks, an online lock-acquisition graph with
  cycle detection (the dynamic twin of RPR008), and non-reentrancy
  checks.  ``acquiring`` runs *before* the lock blocks, so in strict
  mode an inversion raises :class:`LockOrderError` deterministically
  instead of deadlocking the repro.

* :func:`assert_holds_read` / :func:`assert_holds_write` make the
  ``*_locked`` method contract executable: ``ServerState`` hot paths
  assert the RW lock is genuinely held whenever the checker is on.

Counters land in the :mod:`repro.obs` registry under ``analysis.lock.*``
(incremented under the checker's own mutex — the registry itself is
single-threaded by design).  Enable via ``observe(lockcheck=True)``,
``--lockcheck`` on the experiments / serve CLIs, or the ``lockcheck``
pytest fixture.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.exceptions import ReproError
from repro.obs.catalog import (
    ANALYSIS_LOCK_ACQUISITIONS,
    ANALYSIS_LOCK_ASSERTS,
    ANALYSIS_LOCK_EDGES,
    ANALYSIS_LOCK_VIOLATIONS,
)
from repro.obs.metrics import get_registry

from .guards import (
    AQP_JOURNAL_IO,
    CUBE_TABLES_IO,
    SERVE_INSTRUMENT,
    SERVE_STATE_RW,
    SUFFSTATS_CACHE_IO,
)

__all__ = [
    "AQP_JOURNAL_IO",
    "CUBE_TABLES_IO",
    "LockAssertionError",
    "LockCheckError",
    "LockChecker",
    "LockOrderError",
    "SERVE_INSTRUMENT",
    "SERVE_STATE_RW",
    "SUFFSTATS_CACHE_IO",
    "TrackedLock",
    "assert_holds_read",
    "assert_holds_write",
    "disable_lockcheck",
    "enable_lockcheck",
    "get_lockchecker",
    "lock_acquired",
    "lock_acquiring",
    "lock_released",
    "set_lockchecker",
]

_REGISTRY = get_registry()
_ACQUISITIONS = _REGISTRY.counter(ANALYSIS_LOCK_ACQUISITIONS)
_EDGES = _REGISTRY.counter(ANALYSIS_LOCK_EDGES)
_ASSERTS = _REGISTRY.counter(ANALYSIS_LOCK_ASSERTS)
_VIOLATIONS = _REGISTRY.counter(ANALYSIS_LOCK_VIOLATIONS)


class LockCheckError(ReproError):
    """A lock-discipline violation the runtime checker caught."""


class LockOrderError(LockCheckError):
    """Acquiring this lock would close a cycle in the acquisition graph."""


class LockAssertionError(LockCheckError):
    """A ``*_locked`` code path ran without the lock it documents."""


#: Modes that satisfy a "holds for reading" assertion.
_READ_MODES = ("read", "write", "exclusive")
#: Modes that satisfy a "holds for writing" assertion.
_WRITE_MODES = ("write", "exclusive")


class LockChecker:
    """Process-wide held-lock stacks + online acquisition-order graph.

    ``strict=True`` (the default) raises on the first violation — the
    deterministic mode the inversion repro and the hammers use;
    ``strict=False`` records violations for :meth:`snapshot` instead.
    The checker's own mutex is deliberately *not* tracked.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._mu = threading.Lock()
        # (held, acquired) -> times observed.
        self._edges: dict[tuple[str, str], int] = {}
        # acquired -> set of locks ever acquired while holding it.
        self._adj: dict[str, set[str]] = {}
        self._violations: list[dict] = []
        self._seen_violations: set[tuple] = set()
        self._tls = threading.local()

    # ------------------------------------------------------- per-thread state

    def _held(self) -> list[tuple[str, str]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def held_modes(self, name: str) -> list[str]:
        """Modes under which the calling thread holds ``name`` right now."""
        return [mode for held, mode in self._held() if held == name]

    # ------------------------------------------------------------------ hooks

    def acquiring(self, name: str, mode: str, reentrant: bool = False) -> None:
        """Called before blocking on ``name``; raises rather than deadlocks."""
        held = self._held()
        violation: dict | None = None
        with self._mu:
            _ACQUISITIONS.inc()
            if any(h == name for h, _ in held) and not reentrant:
                violation = {
                    "kind": "reacquire",
                    "lock": name,
                    "mode": mode,
                    "held": [h for h, _ in held],
                    "detail": (
                        f"thread already holds non-reentrant lock {name!r} "
                        f"(held stack: {[h for h, _ in held]}); re-acquiring "
                        "would deadlock (the RW lock is not upgradable)"
                    ),
                }
            else:
                cycle_via = self._reaches_locked(
                    name, {h for h, _ in held if h != name}
                )
                if cycle_via is not None:
                    violation = {
                        "kind": "order",
                        "lock": name,
                        "mode": mode,
                        "held": [h for h, _ in held],
                        "detail": (
                            f"acquiring {name!r} while holding {cycle_via!r} "
                            f"closes a cycle: the graph already orders "
                            f"{name!r} before {cycle_via!r}"
                        ),
                    }
                for h, _ in held:
                    if h == name:
                        continue
                    edge = (h, name)
                    if edge not in self._edges:
                        self._edges[edge] = 0
                        self._adj.setdefault(h, set()).add(name)
                        _EDGES.inc()
                    self._edges[edge] += 1
            if violation is not None:
                key = (violation["kind"], name, tuple(violation["held"]))
                if key not in self._seen_violations:
                    self._seen_violations.add(key)
                    self._violations.append(violation)
                    _VIOLATIONS.inc()
        if violation is not None and self.strict:
            if violation["kind"] == "order":
                raise LockOrderError(violation["detail"])
            raise LockCheckError(violation["detail"])

    def _reaches_locked(self, start: str, targets: set[str]) -> str | None:
        """A target reachable from ``start`` in the edge graph (mutex held)."""
        if not targets:
            return None
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            for nxt in self._adj.get(node, ()):
                if nxt in targets:
                    return nxt
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return None

    def acquired(self, name: str, mode: str) -> None:
        self._held().append((name, mode))

    def released(self, name: str) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] == name:
                del held[i]
                return

    # ------------------------------------------------------------- assertions

    def assert_holds(self, name: str, modes: tuple[str, ...], want: str) -> None:
        with self._mu:
            _ASSERTS.inc()
        held = self.held_modes(name)
        if any(mode in modes for mode in held):
            return
        detail = (
            f"code path documents '{want} lock held' on {name!r} but this "
            f"thread holds {held or 'nothing'} (wanted one of {list(modes)})"
        )
        with self._mu:
            key = ("assert", name, want)
            if key not in self._seen_violations:
                self._seen_violations.add(key)
                self._violations.append(
                    {"kind": "assert", "lock": name, "mode": want,
                     "held": held, "detail": detail}
                )
                _VIOLATIONS.inc()
        raise LockAssertionError(detail)

    # -------------------------------------------------------------- reporting

    def snapshot(self) -> dict:
        """The observed lock graph + violations, JSON-shaped."""
        with self._mu:
            edges = [
                {"from": a, "to": b, "count": count}
                for (a, b), count in sorted(self._edges.items())
            ]
            violations = [dict(v) for v in self._violations]
        return {"edges": edges, "violations": violations}

    def export_graph(self, path: str | Path) -> None:
        """Write :meth:`snapshot` as JSON (the nightly CI artifact)."""
        Path(path).write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @property
    def violations(self) -> list[dict]:
        with self._mu:
            return [dict(v) for v in self._violations]


# ------------------------------------------------------------- module hooks

_CHECKER: LockChecker | None = None


def enable_lockcheck(strict: bool = True) -> LockChecker:
    """Install (and return) a fresh process-wide checker."""
    global _CHECKER
    _CHECKER = LockChecker(strict=strict)
    return _CHECKER


def disable_lockcheck() -> None:
    global _CHECKER
    _CHECKER = None


def get_lockchecker() -> LockChecker | None:
    return _CHECKER


def set_lockchecker(checker: LockChecker | None) -> None:
    """Restore a previously captured checker (``observe`` uses this)."""
    global _CHECKER
    _CHECKER = checker


def lock_acquiring(name: str, mode: str, reentrant: bool = False) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.acquiring(name, mode, reentrant)


def lock_acquired(name: str, mode: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.acquired(name, mode)


def lock_released(name: str) -> None:
    checker = _CHECKER
    if checker is not None:
        checker.released(name)


def assert_holds_read(name: str) -> None:
    """Assert the calling thread holds ``name`` at least for reading."""
    checker = _CHECKER
    if checker is not None:
        checker.assert_holds(name, _READ_MODES, "read")


def assert_holds_write(name: str) -> None:
    """Assert the calling thread holds ``name`` exclusively."""
    checker = _CHECKER
    if checker is not None:
        checker.assert_holds(name, _WRITE_MODES, "write")


class TrackedLock:
    """A mutex that reports to the checker; drop-in for ``threading.Lock``.

    ``reentrant=True`` wraps an ``RLock`` and tells the checker nested
    re-acquisition by the owner is legal.  With no checker installed the
    overhead is one global read per operation.
    """

    def __init__(self, name: str, reentrant: bool = False):
        self.name = name
        self._reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        lock_acquiring(self.name, "exclusive", self._reentrant)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            lock_acquired(self.name, "exclusive")
        return ok

    def release(self) -> None:
        self._inner.release()
        lock_released(self.name)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r}, reentrant={self._reentrant})"
