"""Differential conformance harness (verification layer).

Every optimized execution path in this repo — batched cube builds,
RF trees, worker fan-out, incremental refresh — must agree with one
oracle path.  This package holds the shared diffing API, the seeded
workload generator, the oracle-class registry, and the differential
runner that fuzzes, shrinks, and serializes failing workloads.  See
DESIGN.md §7 and ``python -m repro.verify --help``.
"""

from .diff import (
    APPROX,
    EXACT,
    Mismatch,
    Tolerance,
    assert_same_blocks,
    assert_same_cube,
    assert_same_profile,
    assert_same_stacks,
    assert_same_store,
    assert_same_tree,
    diff_blocks,
    diff_coefs,
    diff_cubes,
    diff_profiles,
    diff_stacks,
    diff_stores,
    diff_trees,
    tree_signature,
)
from .faults import FAULTS, inject
from .oracles import (
    OP_COUNTERS,
    OracleClass,
    counters_snapshot,
    get_class,
    ops_delta,
    registry,
    scans_delta,
    scratch_stacks,
)
from .runner import (
    DEFAULT_CORPUS,
    ClassResult,
    replay_artifact,
    replay_corpus,
    run_class,
    run_rounds,
    run_workload,
    shrink,
    write_artifact,
)
from .workload import DeltaOp, Workload, fixed_workloads, random_workload

__all__ = [
    "APPROX",
    "DEFAULT_CORPUS",
    "EXACT",
    "FAULTS",
    "ClassResult",
    "DeltaOp",
    "Mismatch",
    "OP_COUNTERS",
    "OracleClass",
    "Tolerance",
    "Workload",
    "assert_same_blocks",
    "assert_same_cube",
    "assert_same_profile",
    "assert_same_stacks",
    "assert_same_store",
    "assert_same_tree",
    "counters_snapshot",
    "diff_blocks",
    "diff_coefs",
    "diff_cubes",
    "diff_profiles",
    "diff_stacks",
    "diff_stores",
    "diff_trees",
    "fixed_workloads",
    "get_class",
    "inject",
    "ops_delta",
    "random_workload",
    "registry",
    "replay_artifact",
    "replay_corpus",
    "run_class",
    "run_rounds",
    "run_workload",
    "scans_delta",
    "scratch_stacks",
    "shrink",
    "tree_signature",
    "write_artifact",
]
