"""The diffing API: compare two executions of an equivalent path.

Every comparison is expressed against a :class:`Tolerance`:

* :data:`EXACT` — bit-for-bit.  The suffstats-algebra paths (batched vs.
  per-problem solves, parallel vs. serial fan-out, exact-mode incremental
  refresh) promise this, because float addition of the *same addends in the
  same order* and LAPACK solves of the same matrices are deterministic.
* :data:`APPROX` — ``rtol=1e-6`` / ``atol=1e-9``.  For paths that compute
  the same quantity through different float orderings: refits vs. Theorem 1
  rollups, merge-mode incremental refresh (``cached + g(appended) −
  g(removed)``), and anything through the pinv fallback.

Comparisons return a list of :class:`Mismatch` records (empty = equivalent)
so the differential runner can report, shrink, and serialize them; the
``assert_same_*`` wrappers raise :class:`~repro.exceptions.VerificationError`
(also an ``AssertionError``) for direct use in tests.

Winner near-ties: two equivalent-but-not-bitwise paths can legitimately pick
different bellwether regions when the top candidates' errors agree to within
float drift.  Under a non-exact tolerance, a region disagreement is accepted
iff the two winners' errors are within tolerance of each other (the
ε-optimal rule); under :data:`EXACT` any disagreement is a mismatch.
Interpolating fits (``dof <= 0``) carry numerically meaningless residuals,
so non-exact comparisons skip their error values entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import VerificationError

__all__ = [
    "APPROX",
    "EXACT",
    "Mismatch",
    "Tolerance",
    "assert_same_blocks",
    "assert_same_cube",
    "assert_same_profile",
    "assert_same_stacks",
    "assert_same_store",
    "assert_same_tree",
    "diff_blocks",
    "diff_coefs",
    "diff_cubes",
    "diff_profiles",
    "diff_stacks",
    "diff_stores",
    "diff_trees",
    "tree_signature",
]


@dataclass(frozen=True)
class Tolerance:
    """Per-equivalence-class tolerance policy."""

    rtol: float = 0.0
    atol: float = 0.0

    @property
    def exact(self) -> bool:
        return self.rtol == 0.0 and self.atol == 0.0

    def close(self, a, b) -> bool:
        """Are two scalars/arrays equal under this tolerance?

        Exact tolerance means identical bits (NaN == NaN: both paths
        agreeing an estimate is undefined counts as agreement).
        """
        a, b = np.asarray(a), np.asarray(b)
        if a.shape != b.shape:
            return False
        if self.exact:
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                return bool(np.array_equal(a, b, equal_nan=True))
            return bool(np.array_equal(a, b))
        return bool(
            np.allclose(a, b, rtol=self.rtol, atol=self.atol, equal_nan=True)
        )


#: Bit-for-bit: suffstats algebra over identical addends.
EXACT = Tolerance()
#: Different float orderings / pinv fallbacks of the same quantity.
APPROX = Tolerance(rtol=1e-6, atol=1e-9)


@dataclass(frozen=True)
class Mismatch:
    """One observed divergence between an oracle and a candidate path."""

    path: str
    expected: str
    actual: str

    def __str__(self) -> str:
        return f"{self.path}: expected {self.expected}, got {self.actual}"


def _mm(path: str, expected, actual) -> Mismatch:
    return Mismatch(path, str(expected), str(actual))


def _raise(mismatches: list[Mismatch]) -> None:
    if mismatches:
        raise VerificationError(
            f"{len(mismatches)} mismatch(es):\n"
            + "\n".join(f"  {m}" for m in mismatches)
        )


# ------------------------------------------------------------------- cubes


def diff_cubes(oracle, candidate, tol: Tolerance = EXACT, label: str = "cube"):
    """Diff two :class:`~repro.core.BellwetherCubeResult` answers."""
    out: list[Mismatch] = []
    if oracle.subsets != candidate.subsets:
        return [_mm(f"{label}.subsets", oracle.subsets, candidate.subsets)]
    for subset in oracle.subsets:
        a, b = oracle.entry(subset), candidate.entry(subset)
        path = f"{label}[{subset}]"
        if a.n_items != b.n_items:
            out.append(_mm(f"{path}.n_items", a.n_items, b.n_items))
        if (a.error is None) != (b.error is None):
            out.append(
                _mm(f"{path}.found", a.error is not None, b.error is not None)
            )
            continue
        if a.error is None:
            continue
        # Interpolating fits (no residual degrees of freedom) have error
        # values made of float noise; only exact classes may compare them.
        junk = not tol.exact and (a.error.dof <= 0 or b.error.dof <= 0)
        if a.region != b.region:
            if junk or (
                not tol.exact and tol.close(a.error.rmse, b.error.rmse)
            ):
                continue  # ε-optimal near-tie between equivalent winners
            out.append(_mm(f"{path}.region", a.region, b.region))
            continue
        if junk:
            continue
        if not tol.close(a.error.rmse, b.error.rmse):
            out.append(_mm(f"{path}.rmse", a.error.rmse, b.error.rmse))
        if (
            a.error.sse is not None
            and b.error.sse is not None
            and not tol.close(a.error.sse, b.error.sse)
        ):
            out.append(_mm(f"{path}.sse", a.error.sse, b.error.sse))
        if a.error.dof != b.error.dof:
            out.append(_mm(f"{path}.dof", a.error.dof, b.error.dof))
    return out


def assert_same_cube(oracle, candidate, tol: Tolerance = EXACT) -> None:
    _raise(diff_cubes(oracle, candidate, tol))


# ----------------------------------------------------------------- profiles


def diff_profiles(
    oracle, candidate, tol: Tolerance = EXACT, label: str = "profile"
):
    """Diff two basic-search profiles (lists of ``RegionResult``)."""
    a_regions = [r.region for r in oracle]
    b_regions = [r.region for r in candidate]
    if a_regions != b_regions:
        return [_mm(f"{label}.regions", a_regions, b_regions)]
    out: list[Mismatch] = []
    for a, b in zip(oracle, candidate):
        path = f"{label}[{a.region}]"
        if not tol.close(a.rmse, b.rmse):
            out.append(_mm(f"{path}.rmse", a.rmse, b.rmse))
        if not tol.close(a.cost, b.cost):
            out.append(_mm(f"{path}.cost", a.cost, b.cost))
        if not tol.close(a.coverage, b.coverage):
            out.append(_mm(f"{path}.coverage", a.coverage, b.coverage))
        if a.n_items != b.n_items:
            out.append(_mm(f"{path}.n_items", a.n_items, b.n_items))
    return out


def assert_same_profile(oracle, candidate, tol: Tolerance = EXACT) -> None:
    _raise(diff_profiles(oracle, candidate, tol))


# -------------------------------------------------------------------- trees


def tree_signature(node):
    """Structure + split + per-leaf (region, items) as a comparable object."""
    if node.is_leaf:
        return ("leaf", str(node.region), tuple(sorted(node.item_ids)))
    return (
        "split",
        str(node.split),
        tuple(tree_signature(c) for c in node.children),
    )


def diff_trees(oracle_root, candidate_root, label: str = "tree"):
    """Diff two bellwether-tree roots, localizing the first divergences."""
    out: list[Mismatch] = []

    def walk(a, b, path: str) -> None:
        if a.is_leaf != b.is_leaf:
            out.append(
                _mm(
                    f"{path}.shape",
                    "leaf" if a.is_leaf else "split",
                    "leaf" if b.is_leaf else "split",
                )
            )
            return
        if a.is_leaf:
            if str(a.region) != str(b.region):
                out.append(_mm(f"{path}.region", a.region, b.region))
            if tuple(sorted(a.item_ids)) != tuple(sorted(b.item_ids)):
                out.append(
                    _mm(
                        f"{path}.items",
                        sorted(a.item_ids),
                        sorted(b.item_ids),
                    )
                )
            return
        if str(a.split) != str(b.split):
            out.append(_mm(f"{path}.split", a.split, b.split))
            return
        if len(a.children) != len(b.children):
            out.append(
                _mm(f"{path}.children", len(a.children), len(b.children))
            )
            return
        for i, (ca, cb) in enumerate(zip(a.children, b.children)):
            walk(ca, cb, f"{path}.child[{i}]")

    walk(oracle_root, candidate_root, label)
    return out


def assert_same_tree(oracle_root, candidate_root) -> None:
    _raise(diff_trees(oracle_root, candidate_root))


# ------------------------------------------------------------------- stores


def diff_blocks(oracle, candidate, tol: Tolerance = EXACT, label: str = "block"):
    """Diff two :class:`~repro.storage.RegionBlock` contents."""
    out: list[Mismatch] = []
    if not np.array_equal(oracle.item_ids, candidate.item_ids):
        return [_mm(f"{label}.item_ids", oracle.item_ids, candidate.item_ids)]
    if not tol.close(oracle.x, candidate.x):
        out.append(_mm(f"{label}.x", "equal features", "diverged"))
    if not tol.close(oracle.y, candidate.y):
        out.append(_mm(f"{label}.y", oracle.y, candidate.y))
    if (oracle.weights is None) != (candidate.weights is None):
        out.append(
            _mm(f"{label}.weights", oracle.weights, candidate.weights)
        )
    elif oracle.weights is not None and not tol.close(
        oracle.weights, candidate.weights
    ):
        out.append(_mm(f"{label}.weights", oracle.weights, candidate.weights))
    return out


def diff_stores(oracle, candidate, tol: Tolerance = EXACT, label: str = "store"):
    """Diff two training-data stores region by region."""
    a_regions, b_regions = set(oracle.regions()), set(candidate.regions())
    if a_regions != b_regions:
        return [
            _mm(
                f"{label}.regions",
                sorted(map(str, a_regions)),
                sorted(map(str, b_regions)),
            )
        ]
    out: list[Mismatch] = []
    for region in oracle.regions():
        out += diff_blocks(
            oracle.read(region),
            candidate.read(region),
            tol,
            f"{label}[{region}]",
        )
    return out


def assert_same_store(oracle, candidate, tol: Tolerance = EXACT) -> None:
    _raise(diff_stores(oracle, candidate, tol))


def assert_same_blocks(oracle, candidate, tol: Tolerance = EXACT) -> None:
    _raise(diff_blocks(oracle, candidate, tol))


# ------------------------------------------------------------------- stacks


def diff_stacks(oracle, candidate, tol: Tolerance = EXACT, label: str = "stacks"):
    """Diff two region -> :class:`~repro.ml.StackedSuffStats` mappings.

    The integer example counts ``n`` must match exactly under *any*
    tolerance — merge-mode float drift never changes how many rows each
    base cell aggregates, so a count divergence is always a real fault
    (e.g. a skipped retraction), even at sizes where residual-based
    signals drown in interpolation noise.
    """
    a_regions, b_regions = set(oracle), set(candidate)
    if a_regions != b_regions:
        return [
            _mm(
                f"{label}.regions",
                sorted(map(str, a_regions)),
                sorted(map(str, b_regions)),
            )
        ]
    out: list[Mismatch] = []
    for region in oracle:
        a, b = oracle[region], candidate[region]
        path = f"{label}[{region}]"
        if not np.array_equal(a.n, b.n):
            out.append(_mm(f"{path}.n", a.n.tolist(), b.n.tolist()))
            continue
        for field in ("sum_w", "ytwy", "xtwx", "xtwy"):
            if not tol.close(getattr(a, field), getattr(b, field)):
                out.append(_mm(f"{path}.{field}", "equal stats", "diverged"))
    return out


def assert_same_stacks(oracle, candidate, tol: Tolerance = EXACT) -> None:
    _raise(diff_stacks(oracle, candidate, tol))


# -------------------------------------------------------------------- coefs


def diff_coefs(oracle, candidate, tol: Tolerance = EXACT, label: str = "coef"):
    """Diff two model coefficient vectors."""
    a, b = np.asarray(oracle), np.asarray(candidate)
    if not tol.close(a, b):
        return [_mm(label, a.tolist(), b.tolist())]
    return []
