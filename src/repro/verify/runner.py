"""The differential runner: execute, diff, shrink, serialize.

``run_rounds`` is the fuzz loop behind ``python -m repro.verify``: draw a
seeded workload, run every registered oracle class on it, and on any
mismatch greedily shrink the workload (items and months toward the 3/2
floor first, then dropped delta ops and budgets) while the failure
reproduces, finally writing a replayable JSON artifact under the corpus
directory.  ``replay_corpus`` is the deterministic half: re-run every
committed artifact and expect green — that is the standing CI gate.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from .diff import Mismatch
from .oracles import OracleClass, get_class, registry
from .workload import Workload, random_workload

__all__ = [
    "ClassResult",
    "replay_artifact",
    "replay_corpus",
    "run_class",
    "run_rounds",
    "run_workload",
    "shrink",
    "write_artifact",
]

#: Where the committed repro corpus lives, relative to the repo root.
DEFAULT_CORPUS = Path("tests") / "verify" / "corpus"


@dataclass(frozen=True)
class ClassResult:
    """Outcome of one oracle class on one workload."""

    name: str
    mismatches: tuple[Mismatch, ...]
    elapsed: float

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_class(cls: OracleClass, workload: Workload) -> ClassResult:
    """Run one oracle class, folding exceptions into the mismatch list."""
    start = time.perf_counter()
    try:
        mismatches = tuple(cls.run(workload))
    except Exception as exc:  # lint: ignore[RPR006] - a crash on any path is a finding, not a failure to propagate
        mismatches = (
            Mismatch(f"{cls.name}.exception", "no exception", repr(exc)),
        )
    return ClassResult(cls.name, mismatches, time.perf_counter() - start)


def run_workload(
    workload: Workload, classes: list[str] | None = None
) -> list[ClassResult]:
    """Run the selected (default: all) oracle classes on one workload."""
    selected = (
        [get_class(name) for name in classes]
        if classes
        else list(registry().values())
    )
    return [run_class(cls, workload) for cls in selected]


def shrink(workload: Workload, cls: OracleClass) -> Workload:
    """Greedily minimize a failing workload while the class still fails.

    Candidates come minimum-first from :meth:`Workload.shrink_candidates`,
    so each accepted step jumps as close to the 3-item/2-month floor as
    the failure allows; the loop ends when no smaller variant fails.
    """
    current = workload
    while True:
        for candidate in current.shrink_candidates():
            if not run_class(cls, candidate).ok:
                current = candidate
                break
        else:
            return current


def write_artifact(
    directory: str | Path,
    workload: Workload,
    class_name: str,
    mismatches,
    note: str = "",
) -> Path:
    """Serialize a (shrunk) failing workload as a replayable JSON repro."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{workload.name}-{class_name}.json"
    payload = {
        "schema": 1,
        "oracle_class": class_name,
        "workload": workload.to_dict(),
        "mismatches": [str(m) for m in mismatches],
        "note": note,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def replay_artifact(path: str | Path) -> ClassResult:
    """Re-run the oracle class recorded in one corpus artifact."""
    payload = json.loads(Path(path).read_text())
    workload = Workload.from_dict(payload["workload"])
    return run_class(get_class(payload["oracle_class"]), workload)


def replay_corpus(directory: str | Path = DEFAULT_CORPUS) -> list[ClassResult]:
    """Deterministically replay every committed artifact (sorted order)."""
    return [
        replay_artifact(path)
        for path in sorted(Path(directory).glob("*.json"))
    ]


def run_rounds(
    seed: int,
    rounds: int,
    classes: list[str] | None = None,
    out: str | Path = DEFAULT_CORPUS,
    report=print,
) -> int:
    """The fuzz loop: ``rounds`` seeded workloads through every class.

    Returns the number of failing (class, workload) pairs; each failure is
    shrunk and written to ``out`` before moving on.
    """
    failures = 0
    for round_index in range(rounds):
        workload = random_workload(seed + round_index)
        report(f"[{round_index + 1}/{rounds}] {workload.label()}")
        for result in run_workload(workload, classes):
            status = "ok" if result.ok else "FAIL"
            report(
                f"    {result.name:<16} {status:>4}  {result.elapsed:6.2f}s"
            )
            if result.ok:
                continue
            failures += 1
            for mismatch in result.mismatches[:5]:
                report(f"      {mismatch}")
            shrunk = shrink(workload, get_class(result.name))
            final = run_class(get_class(result.name), shrunk)
            path = write_artifact(
                out,
                shrunk,
                result.name,
                final.mismatches,
                note=f"shrunk from {workload.label()}",
            )
            report(f"      shrunk to {shrunk.label()}")
            report(f"      repro written to {path}")
    return failures
