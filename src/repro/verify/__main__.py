"""CLI for the differential conformance harness.

Examples::

    python -m repro.verify --seed 0 --rounds 10
    python -m repro.verify --replay tests/verify/corpus
    python -m repro.verify --list
    python -m repro.verify --seed 3 --rounds 5 --classes cube-methods,tree-methods
"""

from __future__ import annotations

import argparse
import sys
import time

from .oracles import registry
from .runner import DEFAULT_CORPUS, replay_corpus, run_rounds


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Fuzz every execution path against its oracle.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed for random workloads"
    )
    parser.add_argument(
        "--rounds", type=int, default=10, help="number of workloads to draw"
    )
    parser.add_argument(
        "--classes",
        default="",
        help="comma-separated oracle classes (default: all)",
    )
    parser.add_argument(
        "--corpus",
        default=str(DEFAULT_CORPUS),
        help="directory for shrunk repro artifacts",
    )
    parser.add_argument(
        "--replay",
        metavar="DIR",
        default=None,
        help="replay every artifact in DIR instead of fuzzing",
    )
    parser.add_argument(
        "--list", action="store_true", help="list oracle classes and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for cls in registry().values():
            print(f"{cls.name:<16} {cls.description}")
        return 0

    if args.replay is not None:
        failures = 0
        for result in replay_corpus(args.replay):
            status = "ok" if result.ok else "FAIL"
            print(f"{result.name:<16} {status:>4}  {result.elapsed:6.2f}s")
            for mismatch in result.mismatches:
                print(f"  {mismatch}")
            failures += not result.ok
        print(f"replay: {failures} failing artifact(s)")
        return 1 if failures else 0

    classes = [c for c in args.classes.split(",") if c] or None
    start = time.perf_counter()
    failures = run_rounds(
        seed=args.seed, rounds=args.rounds, classes=classes, out=args.corpus
    )
    elapsed = time.perf_counter() - start
    print(
        f"{args.rounds} round(s), {failures} failing class run(s), "
        f"{elapsed:.1f}s"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
