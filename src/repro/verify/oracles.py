"""The oracle registry: equivalence classes of execution paths.

Each :class:`OracleClass` names one oracle path and the candidate paths
that must agree with it, runs all of them on a :class:`~repro.verify.Workload`,
and returns the observed :class:`~repro.verify.Mismatch` list.  Result
diffs use the per-class tolerance policy (bit-for-bit for suffstats
algebra, :data:`~repro.verify.APPROX` where float orderings differ) and
every class also checks its operation counters against the paper's bounds:

* ``cube-methods`` — Lemma 2: single-scan/optimized cubes read the data
  exactly once, naive pays ``n_regions × n_subsets`` region reads; the
  batched build issues at most one stacked solve per lattice level.
* ``tree-methods`` — Lemma 1: the RF tree reads the data once per level.
* ``exec-workers`` — the worker fan-out changes nothing; the scan stays in
  the parent process.
* ``search-refresh`` / ``cube-refresh`` — incremental refresh equals a
  from-scratch rebuild with zero full scans; the maintainer's cached
  suffstats stacks are additionally audited against a scratch recompute
  (the integer ``n`` component catches dropped retractions at any size).
* ``serve-endpoints`` — every live HTTP ``/bellwether`` and ``/predict``
  response equals the in-process search answer at the same store version,
  before and after a delta stream lands mid-flight.
* ``aqp-tolerance`` — every ``mode=approx`` answer from the learned tier
  is within its declared tolerance of the exact cube-table answer (same
  feasible set, ε-optimal winner, bit-equal predict artifacts), fallback
  paths are exact, and a mid-flight delta forces fallback-then-retrain
  with consistent version stamps.
* ``store-delta`` — an append-only delta stream reproduces a from-scratch
  generation bit for bit.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core import (
    BasicBellwetherSearch,
    BellwetherCubeBuilder,
    BellwetherTreeBuilder,
    SearchError,
)
from repro.exec import ParallelConfig
from repro.incremental import window_end
from repro.obs import catalog, get_registry

from .diff import (
    APPROX,
    EXACT,
    Mismatch,
    Tolerance,
    diff_coefs,
    diff_cubes,
    diff_profiles,
    diff_stacks,
    diff_stores,
    diff_trees,
)
from .workload import Workload

__all__ = [
    "OP_COUNTERS",
    "OracleClass",
    "counters_snapshot",
    "error_tolerance",
    "get_class",
    "ops_delta",
    "registry",
    "scans_delta",
    "scratch_stacks",
]

#: The operation counters the refresh-vs-scratch speedup gates sum over.
OP_COUNTERS = (
    catalog.STORE_FULL_SCANS,
    catalog.ML_LINEAR_BATCHED_PROBLEMS,
    catalog.ML_LINEAR_FITS,
)


def counters_snapshot() -> dict[str, float]:
    return get_registry().counter_values()


def ops_delta(before: dict) -> int:
    """Operations performed since ``before`` (a counters snapshot)."""
    values = counters_snapshot()
    return sum(int(values.get(k, 0) - before.get(k, 0)) for k in OP_COUNTERS)


def scans_delta(before: dict) -> int:
    values = counters_snapshot()
    return int(
        values.get(catalog.STORE_FULL_SCANS, 0)
        - before.get(catalog.STORE_FULL_SCANS, 0)
    )


def error_tolerance(store) -> Tolerance:
    """:data:`APPROX` with ``atol`` raised to the store's cancellation floor.

    A Theorem 1 rollup computes SSE as a difference of ``~sum(y**2)``-sized
    terms, while a refit sums small residuals directly, so on a near-perfect
    fit the two legitimately disagree by ``~eps * sum(y**2)``; the matching
    rmse noise is its square root.  A fixed tiny ``atol`` would flag that
    float cancellation as a conformance failure.
    """
    energy = sum(
        float(np.sum(np.square(block.y))) for __, block in store.scan()
    )
    sse_noise = 64.0 * np.finfo(float).eps * energy
    atol = max(APPROX.atol, sse_noise, float(np.sqrt(sse_noise)))
    return Tolerance(rtol=APPROX.rtol, atol=atol)


def _expect(path: str, expected, actual) -> list[Mismatch]:
    if expected != actual:
        return [Mismatch(path, str(expected), str(actual))]
    return []


@dataclass(frozen=True)
class OracleClass:
    """One equivalence class: an oracle path plus its candidates."""

    name: str
    description: str
    runner: Callable[[Workload], list[Mismatch]]

    def run(self, workload: Workload) -> list[Mismatch]:
        return self.runner(workload)


_REGISTRY: dict[str, OracleClass] = {}


def _oracle_class(name: str, description: str):
    def deco(fn):
        _REGISTRY[name] = OracleClass(name, description, fn)
        return fn

    return deco


def registry() -> dict[str, OracleClass]:
    return dict(_REGISTRY)


def get_class(name: str) -> OracleClass:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle class {name!r}; have {sorted(_REGISTRY)}"
        ) from None


def scratch_stacks(builder: BellwetherCubeBuilder):
    """Per-region base-cell suffstats recomputed from scratch.

    The reference the maintainer's cached stacks are audited against —
    the same per-cell grouping the optimized builder scans for.
    """
    stacks = {}
    n_cells = len(builder._cells)
    for region, block in builder.store.scan():
        block = block.restrict_to(builder._ids)
        if block.n_examples == 0:
            continue
        rows_item = builder._index.rows_of(block.item_ids)
        cell_of_row = builder._cell_of_item[rows_item]
        stacks[region] = builder._cell_stats_stack(block, cell_of_row, n_cells)
    return stacks


# ------------------------------------------------------------- cube methods


@_oracle_class(
    "cube-methods",
    "naive / single_scan / optimized cube builds vs optimized_serial "
    "(Lemma 2 scan bounds, Theorem 1 rollup)",
)
def _cube_methods(w: Workload) -> list[Mismatch]:
    ds = w.dataset()
    store, __, __ = w.full_store()
    builder = BellwetherCubeBuilder(
        ds.task,
        store,
        ds.hierarchies,
        min_subset_size=w.min_subset_size,
        min_examples=w.min_examples,
    )
    oracle = builder.build("optimized_serial")
    refit_tol = error_tolerance(store)
    out: list[Mismatch] = []

    before = counters_snapshot()
    io0 = store.stats.snapshot()
    optimized = builder.build("optimized")
    io = store.stats - io0
    solves = int(
        counters_snapshot().get(catalog.ML_LINEAR_BATCHED_SOLVES, 0)
        - before.get(catalog.ML_LINEAR_BATCHED_SOLVES, 0)
    )
    out += diff_cubes(oracle, optimized, EXACT, label="optimized")
    out += _expect("optimized.full_scans", 1, io.full_scans)
    if solves > builder.n_levels:
        out.append(
            Mismatch(
                "optimized.batched_solves",
                f"<= {builder.n_levels}",
                str(solves),
            )
        )

    io0 = store.stats.snapshot()
    single = builder.build("single_scan")
    io = store.stats - io0
    out += diff_cubes(oracle, single, refit_tol, label="single_scan")
    out += _expect("single_scan.full_scans", 1, io.full_scans)

    io0 = store.stats.snapshot()
    naive = builder.build("naive")
    io = store.stats - io0
    out += diff_cubes(oracle, naive, refit_tol, label="naive")
    expected_reads = len(store.regions()) * len(builder.significant_subsets)
    out += _expect("naive.region_reads", expected_reads, io.region_reads)
    return out


# ------------------------------------------------------------- tree methods


@_oracle_class(
    "tree-methods",
    "naive tree and prefix-stats ablation vs RF tree (Lemma 1 scan bound)",
)
def _tree_methods(w: Workload) -> list[Mismatch]:
    ds = w.dataset()
    store, __, __ = w.full_store()
    kwargs = dict(
        split_attrs=("category", "rdexpense"),
        min_items=max(2, w.n_items // 6),
        max_depth=2,
        max_numeric_splits=3,
        min_examples=w.min_examples,
    )
    oracle_builder = BellwetherTreeBuilder(
        ds.task, store, use_prefix_stats=True, **kwargs
    )
    ablation_builder = BellwetherTreeBuilder(
        ds.task, store, use_prefix_stats=False, **kwargs
    )
    io0 = store.stats.snapshot()
    try:
        rf = oracle_builder.build("rf")
    except SearchError:
        # Infeasible on this workload (e.g. a leaf with no feasible
        # region).  Every path must agree on that outcome too.
        out: list[Mismatch] = []
        for label, build in (
            ("naive", lambda: oracle_builder.build("naive")),
            ("no-prefix-stats", lambda: ablation_builder.build("rf")),
        ):
            try:
                build()
            except SearchError:
                continue
            out.append(
                Mismatch(f"{label}.outcome", "SearchError", "a tree")
            )
        return out
    io = store.stats - io0
    out = _expect("rf.full_scans", rf.n_levels, io.full_scans)

    naive = oracle_builder.build("naive")
    out += diff_trees(rf.root, naive.root, label="naive")

    ablation = ablation_builder.build("rf")
    out += diff_trees(rf.root, ablation.root, label="no-prefix-stats")
    return out


# ------------------------------------------------------------- exec workers


@_oracle_class(
    "exec-workers",
    "worker fan-out vs serial evaluation (identical profile, one scan)",
)
def _exec_workers(w: Workload) -> list[Mismatch]:
    ds = w.dataset()
    store, costs, __ = w.full_store()
    io0 = store.stats.snapshot()
    serial = BasicBellwetherSearch(
        ds.task, store, costs=costs, min_examples=w.min_examples
    ).evaluate_all(parallel=ParallelConfig(workers=1))
    io = store.stats - io0
    out = _expect("serial.full_scans", 1, io.full_scans)

    io0 = store.stats.snapshot()
    fanned = BasicBellwetherSearch(
        ds.task, store, costs=costs, min_examples=w.min_examples
    ).evaluate_all(parallel=ParallelConfig(workers=w.workers))
    io = store.stats - io0
    out += _expect("parallel.full_scans", 1, io.full_scans)
    out += diff_profiles(serial, fanned, EXACT, label=f"workers={w.workers}")
    return out


# ----------------------------------------------------------- search refresh


@_oracle_class(
    "search-refresh",
    "BasicBellwetherSearch.refresh() after a delta stream vs a from-scratch "
    "search (profiles, winners, model coefficients, zero full scans)",
)
def _search_refresh(w: Workload) -> list[Mismatch]:
    ds, gen, regions, store = w.deployed()
    search = BasicBellwetherSearch(ds.task, store, min_examples=w.min_examples)
    search.evaluate_all()
    w.apply_stream(gen, regions, store)

    io0 = store.stats.snapshot()
    refreshed = search.refresh()
    io = store.stats - io0
    out = _expect("refresh.full_scans", 0, io.full_scans)

    scratch = BasicBellwetherSearch(ds.task, store, min_examples=w.min_examples)
    scratch_profile = scratch.evaluate_all()
    out += diff_profiles(scratch_profile, refreshed, EXACT, label="refresh")

    for budget in w.budgets:
        a, b = scratch.run(budget=budget), search.run(budget=budget)
        path = f"refresh.budget[{budget:g}]"
        if (a.bellwether is None) != (b.bellwether is None):
            out += _expect(f"{path}.found", a.found, b.found)
            continue
        if a.bellwether is None:
            continue
        if a.bellwether.region != b.bellwether.region:
            out += _expect(
                f"{path}.region", a.bellwether.region, b.bellwether.region
            )
            continue
        out += diff_coefs(
            scratch.fit_model(a.bellwether.region).coef,
            search.fit_model(b.bellwether.region).coef,
            EXACT,
            label=f"{path}.coef",
        )
    return out


# ------------------------------------------------------------- cube refresh


@_oracle_class(
    "cube-refresh",
    "IncrementalCubeMaintainer.refresh() (exact and merge modes) after a "
    "delta stream vs a scratch optimized build, plus a suffstats-stack audit",
)
def _cube_refresh(w: Workload) -> list[Mismatch]:
    out: list[Mismatch] = []
    for mode in ("exact", "merge"):
        ds, gen, regions, store = w.deployed()
        builder = BellwetherCubeBuilder(
            ds.task,
            store,
            ds.hierarchies,
            min_subset_size=w.min_subset_size,
            min_examples=w.min_examples,
        )
        maintainer = builder.incremental(mode=mode)
        maintainer.refresh()
        w.apply_stream(gen, regions, store)

        io0 = store.stats.snapshot()
        refreshed = maintainer.refresh()
        io = store.stats - io0
        out += _expect(f"{mode}.full_scans", 0, io.full_scans)

        scratch_builder = BellwetherCubeBuilder(
            ds.task,
            store,
            ds.hierarchies,
            min_subset_size=w.min_subset_size,
            min_examples=w.min_examples,
        )
        scratch = scratch_builder.build("optimized")
        # Merge-mode stacks carry `cached + g(appended) - g(removed)` float
        # drift, so their errors inherit the same cancellation noise floor
        # as a refit; exact mode promises identical bits.
        tol = EXACT if mode == "exact" else error_tolerance(store)
        out += diff_cubes(scratch, refreshed, tol, label=f"{mode}.cube")
        out += diff_stacks(
            scratch_stacks(scratch_builder),
            maintainer._stacks,
            tol,
            label=f"{mode}.stacks",
        )
    return out


# ----------------------------------------------------------- serve endpoints


def _direct_predict(search, store, region, ids):
    """The in-process reference for a /predict response over ``region``.

    Mirrors the serving semantics exactly — model fit on the region's rows
    restricted to ``ids``, one representative row per item, training-set
    mean for items without rows, plain left-to-right accumulation — so a
    bit-level diff against the HTTP payload is meaningful.
    """
    model = search.fit_model(region, item_ids=ids)
    block = store.read(region)
    train = block.restrict_to(np.asarray(ids))
    train_mean = float(train.y.mean()) if train.n_examples else 0.0
    values = []
    total = 0.0
    for item in ids:
        hit = np.flatnonzero(block.item_ids == item)
        value = (
            float(model.predict(block.x[hit[0]])[0]) if hit.size else train_mean
        )
        total += value
        values.append(value)
    return model, values, float(total)


def _serve_round(w: Workload, ds, store, client, subset, label) -> list[Mismatch]:
    """Diff one round of live HTTP answers against fresh in-process calls.

    The all-items reference profile is evaluated from scratch-built exact
    cube tables — the server's warm path answers from its own (persisted,
    patched-forward) tables, and the Theorem 1 rollup carries float
    cancellation a raw refit does not, so a raw-scan reference would flag
    that known noise instead of real serving bugs.  Tables patched forward
    across a delta stream add suffstats in a different order than a
    scratch rollup, so all-items rmse is compared under the store's
    cancellation tolerance; everything else — winners, feasible sets,
    versions, and the raw-path subset profiles and models — stays EXACT.
    """
    from repro.serve import ServeHTTPError

    version = int(store.version)
    direct = BasicBellwetherSearch(ds.task, store, min_examples=w.min_examples)
    scratch_builder = BellwetherCubeBuilder(
        ds.task,
        store,
        ds.hierarchies,
        min_subset_size=w.min_subset_size,
        min_examples=w.min_examples,
    )
    maintainer = scratch_builder.incremental(mode="exact")
    maintainer.refresh()
    direct.evaluate_from_tables(maintainer.level_tables())
    out: list[Mismatch] = []
    for budget in w.budgets:
        for items in (None, subset):
            tag = (
                f"{label}.budget[{budget:g}]"
                + ("" if items is None else f".subset{len(items)}")
            )
            expected = direct.run(budget=budget, item_ids=items)
            try:
                got = client.bellwether(budget=budget, items=items)
            except ServeHTTPError as exc:
                if expected.bellwether is not None:
                    out += _expect(
                        f"{tag}.outcome",
                        str(expected.bellwether.region),
                        f"HTTP {exc.status}",
                    )
                elif exc.status != 409:
                    out += _expect(f"{tag}.status", 409, exc.status)
                continue
            if expected.bellwether is None:
                out += _expect(
                    f"{tag}.outcome",
                    "HTTP 409",
                    got["bellwether"]["region_str"],
                )
                continue
            out += _expect(f"{tag}.store_version", version, got["store_version"])
            win = got["bellwether"]
            if str(expected.bellwether.region) != win["region_str"]:
                out += _expect(
                    f"{tag}.region",
                    str(expected.bellwether.region),
                    win["region_str"],
                )
                continue
            # All-items errors are tables-rolled on both sides, but the
            # server patches its tables forward delta by delta while the
            # reference rolls up from scratch — same suffstats, different
            # addition order, so the SSE difference carries cancellation
            # noise.  Subset profiles are raw-path on both sides: exact.
            rmse_tol = error_tolerance(store) if items is None else EXACT
            if not rmse_tol.close(
                float(expected.bellwether.rmse), float(win["rmse"])
            ):
                out += _expect(
                    f"{tag}.rmse", expected.bellwether.rmse, win["rmse"]
                )
            out += _expect(
                f"{tag}.feasible",
                [str(r.region) for r in expected.feasible],
                [e["region_str"] for e in got["feasible"]],
            )
            if items is None:
                continue
            # /predict, budget-resolved region: must pick the same region
            # and reproduce the direct model + per-item values bit for bit.
            try:
                pred = client.predict(items=items, budget=budget)
            except ServeHTTPError as exc:
                out += _expect(f"{tag}.predict.outcome", "200", exc.status)
                continue
            out += _expect(
                f"{tag}.predict.region",
                str(expected.bellwether.region),
                pred["region_str"],
            )
            out += _expect(
                f"{tag}.predict.store_version", version, pred["store_version"]
            )
            model, values, total = _direct_predict(
                direct, store, expected.bellwether.region, items
            )
            out += diff_coefs(
                model.coef, pred["coef"], EXACT, label=f"{tag}.predict.coef"
            )
            got_values = [float(p["value"]) for p in pred["predictions"]]
            if values != got_values:
                out += _expect(f"{tag}.predict.values", values, got_values)
            if total != float(pred["aggregate"]):
                out += _expect(f"{tag}.predict.aggregate", total, pred["aggregate"])
            # Explicit-region path: echoing the returned key back must
            # reproduce the budget-resolved answer identically.
            echoed = client.predict(items=items, region=pred["region"])
            for field in ("region_str", "coef", "predictions", "aggregate"):
                if echoed[field] != pred[field]:
                    out += _expect(
                        f"{tag}.predict.echo.{field}", pred[field], echoed[field]
                    )
    return out


@_oracle_class(
    "serve-endpoints",
    "live HTTP /bellwether and /predict responses vs in-process search "
    "answers at the same store version, across a mid-flight delta stream",
)
def _serve_endpoints(w: Workload) -> list[Mismatch]:
    import tempfile
    from pathlib import Path

    from repro.serve import ServeClient, ServerState, serve_in_thread

    ds, gen, regions, store = w.deployed()
    rng = np.random.default_rng([w.seed, 977])
    ids = sorted(int(i) for i in ds.task.item_ids)
    size = min(len(ids), max(3, len(ids) // 2))
    subset = sorted(
        int(ids[i]) for i in rng.choice(len(ids), size=size, replace=False)
    )
    out: list[Mismatch] = []
    with tempfile.TemporaryDirectory(prefix="repro-serve-oracle-") as tmp:
        state = ServerState(
            ds.task,
            store,
            ds.hierarchies,
            tables_dir=Path(tmp) / "tables",
            min_subset_size=w.min_subset_size,
            min_examples=w.min_examples,
        )
        with serve_in_thread(state) as handle:
            with ServeClient(handle.host, handle.port) as client:
                out += _serve_round(w, ds, store, client, subset, label="base")
                # The stream mutates the server's own store mid-flight; the
                # next queries must adopt the new version, never mix two.
                w.apply_stream(gen, regions, store)
                out += _serve_round(w, ds, store, client, subset, label="stream")
    return out


# ------------------------------------------------------------ aqp tolerance


def _direct_reference(w: Workload, ds, store) -> BasicBellwetherSearch:
    """The exact in-process reference at the store's current version.

    Same construction as :func:`_serve_round`: the all-items profile comes
    from scratch-built exact-mode cube tables (bit-for-bit what the server
    rolls from its own tables), subsets from the raw path.
    """
    direct = BasicBellwetherSearch(ds.task, store, min_examples=w.min_examples)
    scratch_builder = BellwetherCubeBuilder(
        ds.task,
        store,
        ds.hierarchies,
        min_subset_size=w.min_subset_size,
        min_examples=w.min_examples,
    )
    maintainer = scratch_builder.incremental(mode="exact")
    maintainer.refresh()
    direct.evaluate_from_tables(maintainer.level_tables())
    return direct


def _aqp_approx_round(
    w: Workload, ds, store, client, subset, exact_predicts, label
) -> list[Mismatch]:
    """Replay the journaled workload with ``mode=approx`` and verify it.

    For every (budget, items) pair: the response must actually be approx
    at the current store version, its feasible set must equal the exact
    path's, the winner's predicted rmse must be within the declared
    tolerance of that region's exact rmse, the winner must be ε-optimal
    (its exact rmse at most 2·tolerance above the exact winner's), and
    artifact ``/predict`` answers must be bit-equal to the exact phase-1
    responses.
    """
    from repro.serve import ServeHTTPError

    version = int(store.version)
    direct = _direct_reference(w, ds, store)
    out: list[Mismatch] = []
    for budget in w.budgets:
        for items in (None, subset):
            tag = (
                f"{label}.budget[{budget:g}]"
                + ("" if items is None else f".subset{len(items)}")
            )
            expected = direct.run(budget=budget, item_ids=items)
            try:
                got = client.bellwether(
                    budget=budget, items=items, mode="approx"
                )
            except ServeHTTPError as exc:
                # Infeasibility is exact knowledge in the approx tier too.
                if expected.bellwether is not None:
                    out += _expect(
                        f"{tag}.outcome",
                        str(expected.bellwether.region),
                        f"HTTP {exc.status}",
                    )
                elif exc.status != 409:
                    out += _expect(f"{tag}.status", 409, exc.status)
                continue
            if expected.bellwether is None:
                out += _expect(
                    f"{tag}.outcome",
                    "HTTP 409",
                    got["bellwether"]["region_str"],
                )
                continue
            out += _expect(f"{tag}.mode", "approx", got.get("mode"))
            out += _expect(
                f"{tag}.store_version", version, got["store_version"]
            )
            if got.get("model_version") is None:
                out += _expect(f"{tag}.model_version", "an int", None)
            tolerance = float(got["tolerance"])
            by_region = {
                str(r.region): float(r.rmse)
                for r in direct.evaluate_all(item_ids=items)
            }
            # Exact feasible set, in exact order.
            out += _expect(
                f"{tag}.feasible",
                [str(r.region) for r in expected.feasible],
                [e["region_str"] for e in got["feasible"]],
            )
            win = got["bellwether"]
            exact_at_winner = by_region.get(win["region_str"])
            if exact_at_winner is None:
                out += _expect(
                    f"{tag}.winner", "an evaluated region", win["region_str"]
                )
                continue
            deviation = abs(float(win["rmse"]) - exact_at_winner)
            if deviation > tolerance:
                out += _expect(
                    f"{tag}.tolerance",
                    f"|approx-exact| <= {tolerance:g}",
                    f"{deviation:g}",
                )
            # ε-optimality: the approx winner's *exact* error is at most
            # 2·tolerance above the exact winner's.
            slack = exact_at_winner - float(expected.bellwether.rmse)
            if slack > 2.0 * tolerance:
                out += _expect(
                    f"{tag}.winner_slack",
                    f"<= {2.0 * tolerance:g}",
                    f"{slack:g}",
                )
            if items is None:
                continue
            exact_pred = exact_predicts.get(budget)
            if exact_pred is None:
                continue
            try:
                pred = client.predict(
                    items=items, budget=budget, mode="approx"
                )
            except ServeHTTPError as exc:
                out += _expect(f"{tag}.predict.outcome", "200", exc.status)
                continue
            out += _expect(f"{tag}.predict.mode", "approx", pred.get("mode"))
            # The artifact is the phase-1 exact payload, bit for bit.
            for field in (
                "store_version",
                "region_str",
                "coef",
                "predictions",
                "aggregate",
            ):
                if pred[field] != exact_pred[field]:
                    out += _expect(
                        f"{tag}.predict.{field}",
                        exact_pred[field],
                        pred[field],
                    )
    return out


@_oracle_class(
    "aqp-tolerance",
    "mode=approx answers within declared tolerance of the exact path "
    "(same feasible sets, ε-optimal winners, bit-equal predict artifacts), "
    "exact fallbacks, and fallback-then-retrain across a mid-flight delta",
)
def _aqp_tolerance(w: Workload) -> list[Mismatch]:
    import tempfile
    from pathlib import Path

    from repro.serve import ServeClient, ServeHTTPError, ServerState, serve_in_thread

    ds, gen, regions, store = w.deployed()
    rng = np.random.default_rng([w.seed, 1811])
    ids = sorted(int(i) for i in ds.task.item_ids)
    size = min(len(ids), max(3, len(ids) // 2))
    subset = sorted(
        int(ids[i]) for i in rng.choice(len(ids), size=size, replace=False)
    )
    novel_pool = [i for i in ids if i not in subset] or ids
    novel = sorted(novel_pool[: max(3, len(novel_pool) // 2)])
    out: list[Mismatch] = []
    with tempfile.TemporaryDirectory(prefix="repro-aqp-oracle-") as tmp:
        state = ServerState(
            ds.task,
            store,
            ds.hierarchies,
            tables_dir=Path(tmp) / "tables",
            min_subset_size=w.min_subset_size,
            min_examples=w.min_examples,
            aqp_dir=Path(tmp) / "aqp",
        )
        with serve_in_thread(state) as handle:
            with ServeClient(handle.host, handle.port) as client:
                # Phase 1 — exact workload, journaled by the server.
                exact_predicts: dict[float, dict] = {}
                for budget in w.budgets:
                    for items in (None, subset):
                        try:
                            client.bellwether(budget=budget, items=items)
                        except ServeHTTPError as exc:
                            if exc.status != 409:
                                raise
                    try:
                        exact_predicts[budget] = client.predict(
                            items=subset, budget=budget
                        )
                    except ServeHTTPError as exc:
                        if exc.status != 409:
                            raise
                # Train the surface on the journal.
                client.aqp_train()
                # Phase 2 — approx replay, verified against the reference.
                out += _aqp_approx_round(
                    w, ds, store, client, subset, exact_predicts, "approx"
                )
                # Phase 3 — a never-journaled subset must fall back, and the
                # fallback must be the exact answer.
                direct = _direct_reference(w, ds, store)
                expected = direct.run(budget=None, item_ids=novel)
                try:
                    got = client.bellwether(items=novel, mode="approx")
                except ServeHTTPError as exc:
                    if expected.bellwether is not None:
                        out += _expect(
                            "novel.outcome",
                            str(expected.bellwether.region),
                            f"HTTP {exc.status}",
                        )
                else:
                    if expected.bellwether is None:
                        out += _expect(
                            "novel.outcome",
                            "HTTP 409",
                            got["bellwether"]["region_str"],
                        )
                    else:
                        out += _expect("novel.mode", "exact", got.get("mode"))
                        out += _expect(
                            "novel.requested_mode",
                            "approx",
                            got.get("requested_mode"),
                        )
                        out += _expect(
                            "novel.region",
                            str(expected.bellwether.region),
                            got["bellwether"]["region_str"],
                        )
                        if expected.bellwether is not None and float(
                            expected.bellwether.rmse
                        ) != float(got["bellwether"]["rmse"]):
                            out += _expect(
                                "novel.rmse",
                                expected.bellwether.rmse,
                                got["bellwether"]["rmse"],
                            )
                # Phase 4 — the stream moves the store: the first approx
                # query falls back on version drift with the *new* exact
                # answer, the auto-retrain brings the tier back, and the
                # next approx query answers approx at the new version.
                w.apply_stream(gen, regions, store)
                new_version = int(store.version)
                drifted = _direct_reference(w, ds, store)
                budget = w.budgets[0]
                expected = drifted.run(budget=budget)
                try:
                    got = client.bellwether(budget=budget, mode="approx")
                except ServeHTTPError as exc:
                    if expected.bellwether is not None:
                        out += _expect(
                            "drift.outcome",
                            str(expected.bellwether.region),
                            f"HTTP {exc.status}",
                        )
                    expected = None
                else:
                    if expected.bellwether is None:
                        out += _expect(
                            "drift.outcome",
                            "HTTP 409",
                            got["bellwether"]["region_str"],
                        )
                        expected = None
                    else:
                        out += _expect("drift.mode", "exact", got.get("mode"))
                        out += _expect(
                            "drift.reason",
                            "version_drift",
                            got.get("fallback_reason"),
                        )
                        out += _expect(
                            "drift.store_version",
                            new_version,
                            got["store_version"],
                        )
                        out += _expect(
                            "drift.region",
                            str(expected.bellwether.region),
                            got["bellwether"]["region_str"],
                        )
                if expected is not None and expected.bellwether is not None:
                    # Retrained: the same query now answers approx at the
                    # new version with a fresh model stamp.
                    retried = client.bellwether(budget=budget, mode="approx")
                    out += _expect("retrain.mode", "approx", retried.get("mode"))
                    out += _expect(
                        "retrain.store_version",
                        new_version,
                        retried["store_version"],
                    )
                    if retried.get("model_version", 0) < 2:
                        out += _expect(
                            "retrain.model_version",
                            ">= 2",
                            retried.get("model_version"),
                        )
    return out


# -------------------------------------------------------------- store delta


@_oracle_class(
    "store-delta",
    "append-only delta stream vs from-scratch training-data generation "
    "(bit-identical blocks)",
)
def _store_delta(w: Workload) -> list[Mismatch]:
    __, gen, regions, store = w.deployed()
    w.apply_appends(gen, regions, store)
    fresh = gen.generate(
        regions=[r for r in regions if window_end(r) <= w.n_months]
    )
    return diff_stores(fresh, store, EXACT, label="append-stream")
