"""Seeded random workloads for the differential conformance harness.

A :class:`Workload` is a small, fully JSON-serializable description of one
conformance scenario: which dataset family to draw (``repro.datasets``
builders), its size and seed, the deployment split (``base_month``), a
delta stream (month appends plus explicit retract/re-append/drop ops),
budgets, and the builder thresholds.  Everything an oracle class needs is
derived deterministically from these fields, so a workload round-trips
through the repro artifacts in ``tests/verify/corpus/`` and replays
bit-identically.

Shrinking: :meth:`Workload.shrink_candidates` yields strictly smaller
variants, minimum-first (3 items / 2 months before halving), so the greedy
loop in :mod:`repro.verify.runner` converges to tiny repros in a few steps.
Shrunk variants relax ``min_subset_size``/``min_examples`` so the lattice
and models still exist at 3 items — count-based diffs (suffstats ``n``)
stay discriminating there even though residuals degenerate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from repro.core import build_store
from repro.datasets import RetailDataset, make_bookstore, make_mailorder
from repro.exceptions import ConfigError
from repro.incremental import month_append_delta, month_split_store
from repro.ml import TrainingSetEstimator
from repro.storage import BlockDelta, RegionBlock, StoreDelta

__all__ = ["DeltaOp", "Workload", "fixed_workloads", "random_workload"]

KINDS = ("mailorder", "bookstore")
OP_KINDS = ("retract_reappend", "retract", "drop_region")


@dataclass(frozen=True)
class DeltaOp:
    """One explicit store mutation beyond the month-append stream.

    ``region_rank`` selects the target region by descending row count
    (rank 0 = the most-populated region), so retractions keep biting even
    after the workload shrinks to 3 items — the planted region always has
    rows for every item.
    """

    kind: str
    region_rank: int = 0
    n_victims: int = 2

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ConfigError(f"unknown delta op kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "region_rank": self.region_rank,
            "n_victims": self.n_victims,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DeltaOp":
        return cls(
            kind=d["kind"],
            region_rank=int(d.get("region_rank", 0)),
            n_victims=int(d.get("n_victims", 2)),
        )


@dataclass(frozen=True)
class Workload:
    """One conformance scenario, drawn seeded or replayed from an artifact."""

    name: str
    seed: int
    kind: str = "mailorder"
    n_items: int = 24
    n_months: int = 5
    base_month: int = 4
    deltas: tuple[DeltaOp, ...] = ()
    budgets: tuple[float, ...] = (10.0, 30.0, 60.0)
    min_subset_size: int = 3
    min_examples: int | None = None
    workers: int = 2

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown dataset kind {self.kind!r}")
        if self.n_items < 3:
            raise ConfigError(f"n_items must be >= 3, got {self.n_items}")
        if self.n_months < 2:
            raise ConfigError(f"n_months must be >= 2, got {self.n_months}")
        if not 1 <= self.base_month <= self.n_months:
            raise ConfigError(
                f"base_month {self.base_month} out of 1..{self.n_months}"
            )

    # -------------------------------------------------------------- roundtrip

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "kind": self.kind,
            "n_items": self.n_items,
            "n_months": self.n_months,
            "base_month": self.base_month,
            "deltas": [op.to_dict() for op in self.deltas],
            "budgets": list(self.budgets),
            "min_subset_size": self.min_subset_size,
            "min_examples": self.min_examples,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Workload":
        return cls(
            name=str(d["name"]),
            seed=int(d["seed"]),
            kind=str(d.get("kind", "mailorder")),
            n_items=int(d["n_items"]),
            n_months=int(d["n_months"]),
            base_month=int(d["base_month"]),
            deltas=tuple(DeltaOp.from_dict(op) for op in d.get("deltas", ())),
            budgets=tuple(float(b) for b in d.get("budgets", (10.0, 30.0, 60.0))),
            min_subset_size=int(d.get("min_subset_size", 3)),
            min_examples=(
                None if d.get("min_examples") is None else int(d["min_examples"])
            ),
            workers=int(d.get("workers", 2)),
        )

    # ---------------------------------------------------------- materialize

    def dataset(self) -> RetailDataset:
        """The workload's dataset, always with the algebraic estimator.

        Training-set error is the measure Theorem 1 covers; it is also the
        only estimator the incremental maintainer accepts, so every oracle
        class can run against the same task.
        """
        return _dataset(self.kind, self.n_items, self.n_months, self.seed)

    def full_store(self):
        """``(store, costs, coverage)`` over the full horizon (read-only)."""
        return _full_store(self.kind, self.n_items, self.n_months, self.seed)

    def deployed(self):
        """A fresh ``(dataset, generator, regions, base_store)`` deployment.

        Never cached: delta-stream classes mutate the returned store.
        """
        ds = self.dataset()
        gen, regions, store = month_split_store(ds.task, self.base_month)
        return ds, gen, regions, store

    @property
    def append_months(self) -> tuple[int, ...]:
        return tuple(range(self.base_month + 1, self.n_months + 1))

    def apply_appends(self, gen, regions, store) -> None:
        for month in self.append_months:
            store.apply_delta(month_append_delta(gen, regions, month))

    def apply_stream(self, gen, regions, store) -> None:
        """Month appends followed by the workload's explicit delta ops."""
        self.apply_appends(gen, regions, store)
        for index, op in enumerate(self.deltas):
            self._apply_op(store, op, index)

    def _apply_op(self, store, op: DeltaOp, index: int) -> None:
        ordered = list(store.regions())
        if not ordered:
            return
        sizes = [store.read(r).n_examples for r in ordered]
        ranked = sorted(range(len(ordered)), key=lambda i: (-sizes[i], i))
        region = ordered[ranked[op.region_rank % len(ordered)]]
        if op.kind == "drop_region":
            store.apply_delta(StoreDelta({}, drop_regions=(region,)))
            return
        rng = np.random.default_rng([self.seed, 211, index])
        block = store.read(region)
        ids = np.unique(block.item_ids)
        if not len(ids):
            return
        victims = rng.choice(ids, size=min(op.n_victims, len(ids)), replace=False)
        if op.kind == "retract":
            store.apply_delta(
                StoreDelta({region: BlockDelta(retract_ids=victims)})
            )
            return
        # retract_reappend: take the victims' rows out, then append the very
        # same rows at the block's end (content-preserving, order-changing).
        rows = np.isin(block.item_ids, victims)
        removed = RegionBlock(
            block.item_ids[rows],
            block.x[rows],
            block.y[rows],
            None if block.weights is None else block.weights[rows],
        )
        store.apply_delta(StoreDelta({region: BlockDelta(retract_ids=victims)}))
        store.apply_delta(StoreDelta({region: BlockDelta(append=removed)}))

    # -------------------------------------------------------------- shrinking

    def shrink_candidates(self) -> list["Workload"]:
        """Strictly smaller variants, most-aggressive first."""
        out: list[Workload] = []

        def tiny_limits(n_items: int) -> dict:
            # At a handful of items, the default thresholds empty the cube;
            # relax them so the shrunk repro still exercises the same code.
            if n_items <= 6:
                return {"min_subset_size": 1, "min_examples": 2}
            return {}

        for target in dict.fromkeys((3, max(3, self.n_items // 2))):
            if target < self.n_items:
                out.append(
                    replace(self, n_items=target, **tiny_limits(target))
                )
        for target in dict.fromkeys((2, max(2, self.n_months // 2))):
            if target < self.n_months:
                out.append(
                    replace(
                        self,
                        n_months=target,
                        base_month=max(1, min(self.base_month, target - 1)),
                    )
                )
        for i in range(len(self.deltas)):
            out.append(
                replace(
                    self,
                    deltas=self.deltas[:i] + self.deltas[i + 1:],
                )
            )
        if len(self.budgets) > 1:
            out.append(replace(self, budgets=self.budgets[:1]))
        return out

    def label(self) -> str:
        ops = ",".join(op.kind for op in self.deltas) or "none"
        return (
            f"{self.name}: {self.kind} items={self.n_items} "
            f"months={self.n_months} base={self.base_month} deltas=[{ops}]"
        )


@lru_cache(maxsize=8)
def _dataset(kind: str, n_items: int, n_months: int, seed: int) -> RetailDataset:
    maker = make_mailorder if kind == "mailorder" else make_bookstore
    return maker(
        n_items=n_items,
        n_months=n_months,
        seed=seed,
        error_estimator=TrainingSetEstimator(),
    )


@lru_cache(maxsize=8)
def _full_store(kind: str, n_items: int, n_months: int, seed: int):
    ds = _dataset(kind, n_items, n_months, seed)
    return build_store(ds.task)


def random_workload(seed: int) -> Workload:
    """Draw one CI-sized workload from the given seed."""
    rng = np.random.default_rng(seed)
    kind = "mailorder" if rng.random() < 0.6 else "bookstore"
    n_items = int(rng.integers(10, 25))
    n_months = int(rng.integers(3, 6))
    base_month = max(1, n_months - int(rng.integers(1, 3)))
    ops = tuple(
        DeltaOp(
            kind=OP_KINDS[int(rng.integers(0, len(OP_KINDS)))],
            region_rank=int(rng.integers(0, 4)),
            n_victims=int(rng.integers(1, 4)),
        )
        for __ in range(int(rng.integers(0, 3)))
    )
    return Workload(
        name=f"seed{seed}",
        seed=int(seed),
        kind=kind,
        n_items=n_items,
        n_months=n_months,
        base_month=base_month,
        deltas=ops,
    )


def fixed_workloads() -> dict[str, Workload]:
    """The experiment configurations doubling as conformance workloads.

    ``fig7`` mirrors the mail-order deployment of Figure 7 (50 items, 8
    months, deploy at month 6) and ``fig9`` the bookstore configuration of
    Figure 9 (60 items, seed 7) — the same sizes/seeds the incremental
    equivalence tests stream deltas through.
    """
    return {
        "fig7": Workload(
            name="fig7",
            seed=0,
            kind="mailorder",
            n_items=50,
            n_months=8,
            base_month=6,
            deltas=(DeltaOp("retract_reappend", region_rank=0, n_victims=3),),
        ),
        "fig9": Workload(
            name="fig9",
            seed=7,
            kind="bookstore",
            n_items=60,
            n_months=8,
            base_month=6,
            deltas=(
                DeltaOp("retract_reappend", region_rank=1, n_victims=3),
                DeltaOp("drop_region", region_rank=3),
            ),
        ),
    }
