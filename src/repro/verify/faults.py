"""Deliberate fault injection for exercising the harness itself.

The conformance harness is only trustworthy if it demonstrably *catches*
bugs, so we keep a small catalog of plausible regressions to plant on
demand.  Each fault is a context manager that monkeypatches one internal
and restores it on exit; tests wrap a harness run in ``inject(...)`` and
assert the differential runner flags, shrinks, and serializes it.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.ml.suffstats import StackedSuffStats

__all__ = ["FAULTS", "inject"]


@contextmanager
def _skip_retraction():
    """Merge-mode refresh 'forgets' to subtract retracted rows.

    ``StackedSuffStats.__sub__`` is what ``IncrementalCubeMaintainer``
    uses in merge mode to retire removed examples from a cached stack;
    returning the cached stack unchanged models a dropped retraction.
    The integer example counts then disagree with a scratch rebuild, so
    the ``cube-refresh`` stack audit must flag it at any workload size.
    """
    original = StackedSuffStats.__sub__
    StackedSuffStats.__sub__ = lambda self, other: self.copy()
    try:
        yield
    finally:
        StackedSuffStats.__sub__ = original


FAULTS = {
    "skip-retraction": _skip_retraction,
}


def inject(name: str):
    """Context manager planting the named fault for the enclosed block."""
    try:
        return FAULTS[name]()
    except KeyError:
        raise KeyError(
            f"unknown fault {name!r}; have {sorted(FAULTS)}"
        ) from None
