"""A minimal JSON client for the query service (stdlib ``http.client``).

One :class:`ServeClient` wraps one keep-alive connection, so each load-gen
or test thread owns its own instance.  Error responses raise
:class:`ServeHTTPError` carrying the HTTP status and the server's
structured ``{"error": {...}}`` payload.
"""

from __future__ import annotations

import http.client
import json

from repro.exceptions import ReproError

__all__ = ["ServeClient", "ServeHTTPError"]


class ServeHTTPError(ReproError):
    """A non-2xx response; ``status`` and the decoded ``payload`` attach."""

    def __init__(self, status: int, payload: dict):
        detail = payload.get("error", payload) if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServeClient:
    """A blocking JSON client over one keep-alive connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 80, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------- transport

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            return self._roundtrip(method, path, payload, headers)
        except (http.client.HTTPException, ConnectionError, BrokenPipeError):
            # The server closed an idle keep-alive connection; retry once
            # on a fresh one.
            self.close()
            return self._roundtrip(method, path, payload, headers)

    def _roundtrip(self, method, path, payload, headers) -> dict:
        conn = self._connection()
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        decoded = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise ServeHTTPError(response.status, decoded)
        return decoded

    # ------------------------------------------------------------- endpoints

    def model(self) -> dict:
        return self._request("GET", "/model")

    def regions(self) -> dict:
        return self._request("GET", "/regions")

    def cube(self, level: tuple[int, ...] | None = None) -> dict:
        path = "/cube"
        if level is not None:
            path += "?level=" + ",".join(str(int(x)) for x in level)
        return self._request("GET", path)

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metricsz(self) -> dict:
        return self._request("GET", "/metricsz")

    def bellwether(self, budget=None, items=None, mode=None, tolerance=None) -> dict:
        body: dict = {}
        if budget is not None:
            body["budget"] = budget
        if items is not None:
            body["items"] = list(items)
        if mode is not None:
            body["mode"] = mode
        if tolerance is not None:
            body["tolerance"] = tolerance
        return self._request("POST", "/bellwether", body)

    def predict(self, items, region=None, budget=None, mode=None, tolerance=None) -> dict:
        body: dict = {"items": list(items)}
        if region is not None:
            body["region"] = region
        if budget is not None:
            body["budget"] = budget
        if mode is not None:
            body["mode"] = mode
        if tolerance is not None:
            body["tolerance"] = tolerance
        return self._request("POST", "/predict", body)

    def aqp(self) -> dict:
        return self._request("GET", "/aqp")

    def aqp_train(self) -> dict:
        return self._request("POST", "/aqp/train", {})
