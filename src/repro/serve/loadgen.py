"""Synthetic load harness: N concurrent clients with seeded query mixes.

Each client thread owns one keep-alive :class:`~repro.serve.client.ServeClient`
and walks a pre-generated (seeded) query plan — a weighted mix of
``/bellwether`` budget queries (some over item subsets), ``/predict``,
``/regions``, ``/model`` and ``/cube`` — so the measured loop is pure
request I/O.  A warm-up pass touches every distinct query first; the
measured pass then exercises the server's warm, zero-scan read path the
way a fleet of interactive analysts would.

Per-request latencies merge into exact (not bucketed) p50/p99, and the
fig13 harness (:mod:`repro.experiments.fig13_serve`) journals them to
``BENCH_figures.json`` under the PR 6 sentinel.

CLI — aim it at a running ``python -m repro.serve``::

    python -m repro.serve.loadgen --port 8000 --clients 64 --requests 20
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError

from .client import ServeClient, ServeHTTPError

__all__ = ["LoadgenResult", "build_plans", "run_loadgen"]

#: Query-kind weights for the synthetic mix.
_MIX = (
    ("bellwether", 0.45),
    ("bellwether_subset", 0.15),
    ("predict", 0.20),
    ("regions", 0.10),
    ("model", 0.05),
    ("cube", 0.05),
)


@dataclass
class LoadgenResult:
    """One measured load-generation pass."""

    clients: int
    requests_per_client: int
    n_requests: int
    n_errors: int
    n_infeasible: int
    elapsed_s: float
    p50_ms: float
    p99_ms: float
    rps: float
    mix: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        mix = " ".join(f"{k}={v}" for k, v in sorted(self.mix.items()))
        return (
            f"loadgen: {self.clients} clients x {self.requests_per_client} "
            f"requests -> {self.n_requests} answered in {self.elapsed_s:.2f}s "
            f"({self.rps:.0f} req/s), p50={self.p50_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms, errors={self.n_errors}, "
            f"infeasible={self.n_infeasible} [{mix}]"
        )


def _exact_percentile(sorted_ms: list[float], q: float) -> float:
    if not sorted_ms:
        return float("nan")
    rank = int(q * (len(sorted_ms) - 1) + 0.5)
    return sorted_ms[min(rank, len(sorted_ms) - 1)]


def build_plans(
    clients: int,
    requests_per_client: int,
    seed: int,
    item_ids: list[int],
    budgets: tuple[float, ...],
    levels: list[tuple[int, ...]],
    n_subsets: int = 4,
) -> tuple[list[list[tuple]], list[tuple]]:
    """Per-client query plans plus the warm-up plan covering every query.

    The subset/budget pools are small by design: a warm pool means the
    measured pass hits the server's cached, zero-scan path, which is the
    interactive regime fig13 reports on.
    """
    if not item_ids:
        raise ConfigError("loadgen needs the served item ids (/model)")
    pool_rng = np.random.default_rng([seed, 0])
    subset_pool = []
    for k in range(n_subsets):
        size = max(3, len(item_ids) // 2 - k)
        size = min(size, len(item_ids))
        pick = pool_rng.choice(len(item_ids), size=size, replace=False)
        subset_pool.append(sorted(int(item_ids[i]) for i in pick))
    kinds = [k for k, __ in _MIX]
    weights = np.asarray([w for __, w in _MIX])
    weights = weights / weights.sum()
    plans: list[list[tuple]] = []
    for c in range(clients):
        rng = np.random.default_rng([seed, 1, c])
        plan: list[tuple] = []
        for __ in range(requests_per_client):
            kind = kinds[int(rng.choice(len(kinds), p=weights))]
            if kind == "bellwether":
                plan.append(("bellwether", float(rng.choice(budgets)), None))
            elif kind == "bellwether_subset":
                items = subset_pool[int(rng.integers(len(subset_pool)))]
                plan.append(("bellwether", float(rng.choice(budgets)), items))
            elif kind == "predict":
                items = subset_pool[int(rng.integers(len(subset_pool)))]
                plan.append(("predict", float(max(budgets)), items))
            elif kind == "cube" and levels:
                level = levels[int(rng.integers(len(levels)))]
                plan.append(("cube", level))
            elif kind == "regions":
                plan.append(("regions",))
            else:
                plan.append(("model",))
        plans.append(plan)
    warmup: list[tuple] = [("model",), ("regions",)]
    warmup += [("cube", level) for level in levels]
    for budget in budgets:
        warmup.append(("bellwether", float(budget), None))
        for items in subset_pool:
            warmup.append(("bellwether", float(budget), items))
    for items in subset_pool:
        warmup.append(("predict", float(max(budgets)), items))
    return plans, warmup


def _issue(client: ServeClient, query: tuple) -> None:
    kind = query[0]
    if kind == "bellwether":
        client.bellwether(budget=query[1], items=query[2])
    elif kind == "predict":
        client.predict(items=query[2], budget=query[1])
    elif kind == "cube":
        client.cube(level=query[1])
    elif kind == "regions":
        client.regions()
    else:
        client.model()


def run_loadgen(
    host: str,
    port: int,
    *,
    clients: int,
    requests_per_client: int,
    seed: int,
    item_ids: list[int] | None = None,
    budgets: tuple[float, ...] = (20.0, 50.0, 90.0),
    timeout: float = 120.0,
) -> LoadgenResult:
    """Warm the server, then fan ``clients`` seeded query streams at it."""
    with ServeClient(host, port, timeout=timeout) as probe:
        model = probe.model()
        if item_ids is None:
            item_ids = [int(i) for i in model["item_ids"]]
        levels = []
        if model.get("lattice"):
            levels = [
                tuple(entry["level"]) for entry in probe.cube()["levels"]
            ]
        plans, warmup = build_plans(
            clients, requests_per_client, seed, list(item_ids), budgets, levels
        )
        for query in warmup:
            try:
                _issue(probe, query)
            except ServeHTTPError as exc:
                if exc.status != 409:
                    raise
    latencies: list[list[float]] = [[] for __ in range(clients)]
    mixes: list[dict[str, int]] = [{} for __ in range(clients)]
    errors = [0] * clients
    infeasible = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        plan = plans[index]
        with ServeClient(host, port, timeout=timeout) as client:
            barrier.wait()
            for query in plan:
                t0 = time.perf_counter()
                try:
                    _issue(client, query)
                except ServeHTTPError as exc:
                    if exc.status == 409:
                        infeasible[index] += 1
                    else:
                        errors[index] += 1
                latencies[index].append(
                    (time.perf_counter() - t0) * 1000.0
                )
                key = query[0]
                mixes[index][key] = mixes[index].get(key, 0) + 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    merged = sorted(ms for chunk in latencies for ms in chunk)
    mix: dict[str, int] = {}
    for m in mixes:
        for k, v in m.items():
            mix[k] = mix.get(k, 0) + v
    n_requests = len(merged)
    return LoadgenResult(
        clients=clients,
        requests_per_client=requests_per_client,
        n_requests=n_requests,
        n_errors=sum(errors),
        n_infeasible=sum(infeasible),
        elapsed_s=elapsed,
        p50_ms=_exact_percentile(merged, 0.50),
        p99_ms=_exact_percentile(merged, 0.99),
        rps=n_requests / elapsed if elapsed > 0 else float("nan"),
        mix=mix,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Fan seeded synthetic clients at a running repro.serve.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--requests", type=int, default=10,
                        help="requests per client")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--items",
        type=int,
        nargs="+",
        default=None,
        help="served item ids (defaults to the /model listing)",
    )
    parser.add_argument("--budgets", type=float, nargs="+",
                        default=(20.0, 50.0, 90.0))
    args = parser.parse_args(argv)
    result = run_loadgen(
        args.host,
        args.port,
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        item_ids=args.items,
        budgets=tuple(args.budgets),
    )
    print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
