"""Run the bellwether query service from the command line.

Usage::

    python -m repro.serve --port 8000                     # in-memory store
    python -m repro.serve --port 8000 --backend npz       # on-disk store
    python -m repro.serve --port 8000 --backend columnar --workers 4

Generates the chosen retail dataset (always with the algebraic
training-set estimator so the materialized-tables warm path applies),
spills it to the chosen storage backend, materializes the cube tables,
and serves until interrupted.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.core import build_store
from repro.datasets import make_bookstore, make_mailorder
from repro.exec import ParallelConfig
from repro.ml import TrainingSetEstimator
from repro.storage import DiskStore

from .app import make_server
from .state import ServerState


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve bellwether queries over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument(
        "--backend",
        choices=("memory", "npz", "columnar"),
        default="npz",
        help="storage backend for the served training data",
    )
    parser.add_argument(
        "--dataset", choices=("mailorder", "bookstore"), default="mailorder"
    )
    parser.add_argument("--n-items", type=int, default=50)
    parser.add_argument("--n-months", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="thread fan-out for cold evaluations (1 = serial)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="directory for the on-disk store + cube tables "
        "(default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--min-subset-size", type=int, default=5,
        help="cube significance threshold K",
    )
    parser.add_argument(
        "--aqp",
        action="store_true",
        help="enable the learned approximate tier (mode=approx, /aqp)",
    )
    parser.add_argument(
        "--lockcheck",
        action="store_true",
        help="enable the runtime lock checker: track acquisition order "
        "across all instrumented locks and raise on violations",
    )
    args = parser.parse_args(argv)

    if args.lockcheck:
        from repro.analysis.runtime import enable_lockcheck

        enable_lockcheck(strict=True)

    maker = make_mailorder if args.dataset == "mailorder" else make_bookstore
    ds = maker(
        n_items=args.n_items,
        n_months=args.n_months,
        seed=args.seed,
        error_estimator=TrainingSetEstimator(),
    )
    store, costs, __ = build_store(ds.task)
    if args.store_dir is not None:
        root = Path(args.store_dir)
        root.mkdir(parents=True, exist_ok=True)
    else:
        # Held for the server's lifetime; the OS reclaims it afterwards.
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        root = Path(tmp.name)
    if args.backend != "memory":
        store = DiskStore.from_memory(
            root / "store", store, backend=args.backend
        )
    parallel = (
        ParallelConfig(workers=args.workers, backend="thread")
        if args.workers > 1
        else None
    )
    state = ServerState(
        ds.task,
        store,
        ds.hierarchies,
        tables_dir=root / "tables",
        costs=costs,
        parallel=parallel,
        dataset_name=args.dataset,
        min_subset_size=args.min_subset_size,
        aqp_dir=(root / "aqp") if args.aqp else None,
    )
    server = make_server(state, args.host, args.port)
    host, port = server.server_address[0], server.server_address[1]
    print(
        f"repro.serve: {args.dataset} ({args.n_items} items, "
        f"{args.n_months} months) on {type(store).__name__} "
        f"at http://{host}:{port} — store version {store.version}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
