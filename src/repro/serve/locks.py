"""A writer-preferring read/write lock for the query service.

The serving state (:class:`~repro.serve.state.ServerState`) is read-mostly:
warm queries only *look at* the cached profile / cube tables, while version
adoptions and cold evaluations rewrite them.  A plain mutex would serialize
every warm query; this RW lock lets any number of warm readers proceed
concurrently and gives writers exclusive access.

Writer preference — a waiting writer blocks *new* readers — keeps a stream
of cheap warm queries from starving the adoption of a store delta forever.

The lock is deliberately not reentrant and not upgradable: a thread holding
the read lock must release it before taking the write lock (the server's
warm/cold two-phase pattern — check warm under read, recheck and recompute
under write — does exactly that).  The runtime checker
(:mod:`repro.analysis.runtime`, opt-in via ``--lockcheck``) enforces both
properties plus global acquisition order; every acquire reports through
its hooks under the lock's canonical ``name``.

Acquisition accepts an optional ``timeout`` (seconds) raising
:class:`LockTimeoutError` — ``/healthz`` uses a short one so a wedged
writer degrades the health check to 503 instead of hanging it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.analysis.runtime import lock_acquired, lock_acquiring, lock_released
from repro.exceptions import ReproError

__all__ = ["LockTimeoutError", "RWLock"]


class LockTimeoutError(ReproError):
    """A lock was not acquired within the caller's deadline."""


class RWLock:
    """Many concurrent readers xor one writer, writers preferred."""

    def __init__(self, name: str = "rwlock"):
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------- primitives

    def acquire_read(self, timeout: float | None = None) -> None:
        lock_acquiring(self.name, "read")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if not self._wait(deadline):
                    raise LockTimeoutError(
                        f"read lock {self.name!r} not acquired within "
                        f"{timeout:.3f}s (writer active or waiting)"
                    )
            self._readers += 1
        lock_acquired(self.name, "read")

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        lock_released(self.name)

    def acquire_write(self, timeout: float | None = None) -> None:
        lock_acquiring(self.name, "write")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if not self._wait(deadline):
                        raise LockTimeoutError(
                            f"write lock {self.name!r} not acquired within "
                            f"{timeout:.3f}s ({self._readers} readers)"
                        )
            finally:
                self._writers_waiting -= 1
                if self._writers_waiting == 0:
                    # A timed-out writer was gating new readers; wake them.
                    # (On success the writer flag re-parks them immediately.)
                    self._cond.notify_all()
            self._writer_active = True
        lock_acquired(self.name, "write")

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()
        lock_released(self.name)

    def _wait(self, deadline: float | None) -> bool:
        """One condition wait bounded by ``deadline``; False = timed out."""
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        return remaining > 0 and self._cond.wait(remaining)

    # ------------------------------------------------------- context managers

    @contextmanager
    def read(self, timeout: float | None = None):
        """``with lock.read():`` — shared access."""
        self.acquire_read(timeout)
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self, timeout: float | None = None):
        """``with lock.write():`` — exclusive access."""
        self.acquire_write(timeout)
        try:
            yield self
        finally:
            self.release_write()

    # ------------------------------------------------------------ diagnostics

    @property
    def readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
