"""A writer-preferring read/write lock for the query service.

The serving state (:class:`~repro.serve.state.ServerState`) is read-mostly:
warm queries only *look at* the cached profile / cube tables, while version
adoptions and cold evaluations rewrite them.  A plain mutex would serialize
every warm query; this RW lock lets any number of warm readers proceed
concurrently and gives writers exclusive access.

Writer preference — a waiting writer blocks *new* readers — keeps a stream
of cheap warm queries from starving the adoption of a store delta forever.

The lock is deliberately not reentrant and not upgradable: a thread holding
the read lock must release it before taking the write lock (the server's
warm/cold two-phase pattern — check warm under read, recheck and recompute
under write — does exactly that).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """Many concurrent readers xor one writer, writers preferred."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------- primitives

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------- context managers

    @contextmanager
    def read(self):
        """``with lock.read():`` — shared access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # ------------------------------------------------------------ diagnostics

    @property
    def readers(self) -> int:
        with self._cond:
            return self._readers

    @property
    def writer_active(self) -> bool:
        with self._cond:
            return self._writer_active
