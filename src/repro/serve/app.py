"""The HTTP layer: a stdlib ``ThreadingHTTPServer`` over a ServerState.

Endpoints (all JSON; see DESIGN.md §9):

* ``GET /model`` — datasets, lattice geometry, store version.
* ``GET /regions`` — region addressing for browse/drill-down.
* ``GET /cube[?level=i,j]`` — lattice levels / one level's cells.
* ``POST /bellwether`` — ``{"budget": B, "items": [ids...]}`` plus the
  approximate tier's ``"mode": "approx"`` / ``"tolerance": t`` knobs.
* ``POST /predict`` — ``{"items": [...], "region": key, "budget": B}``
  (same ``mode``/``tolerance`` knobs).
* ``GET /aqp`` / ``POST /aqp/train`` — approximate-tier status / retrain.
* ``GET /healthz`` / ``GET /metricsz`` — liveness / registry snapshot.

One thread per request (``ThreadingHTTPServer``); every handler funnels
through :meth:`_Handler._dispatch`, which maps any
:class:`~repro.exceptions.ReproError` onto the structured JSON error
payload of :mod:`repro.serve.errors` and keeps the thread alive on any
other failure.  Latency/request counters are recorded through
:func:`repro.serve.state.record_request` under the instrument lock.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ReproError

from .errors import BadRequestError, MethodNotAllowedError, NotFoundError, error_payload
from .state import ServerState, record_request

__all__ = ["BellwetherHTTPServer", "ServerHandle", "make_server", "serve_in_thread"]

_GET_ROUTES = ("/model", "/regions", "/cube", "/aqp", "/healthz", "/metricsz")
_POST_ROUTES = ("/bellwether", "/predict", "/aqp/train")


class BellwetherHTTPServer(ThreadingHTTPServer):
    """Thread-per-request server sharing one :class:`ServerState`."""

    daemon_threads = True
    allow_reuse_address = True
    # Hold a 256-client connection burst instead of refusing at the
    # default backlog of 5.
    request_queue_size = 512

    def __init__(self, address, state: ServerState):
        super().__init__(address, _Handler)
        self.state = state


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: BellwetherHTTPServer

    # ------------------------------------------------------------ dispatching

    def do_GET(self) -> None:  # noqa: N802 (http.server's naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        endpoint = "unknown"
        error = False
        self._body_consumed = False
        try:
            path, params = self._split_path()
            endpoint = path.lstrip("/") or "unknown"
            status, payload = 200, self._route(method, path, params)
        except ReproError as exc:
            error = True
            status, payload = error_payload(exc)
        except Exception as exc:  # lint: ignore[RPR006] — a request thread answers 500, it must not die
            error = True
            status, payload = error_payload(exc, status=500)
        # An error raised before the route read its body (405, bad level
        # param, ...) would leave the bytes on the socket and desync the
        # next keep-alive request — drain them before replying.
        self._drain_body()
        self._send_json(status, payload)
        record_request(endpoint, time.perf_counter() - start, error)

    def _route(self, method: str, path: str, params: dict) -> dict:
        state = self.server.state
        if path in _GET_ROUTES:
            if method != "GET":
                raise MethodNotAllowedError(f"{path} answers GET only")
            if path == "/model":
                return state.model_info()
            if path == "/regions":
                return state.regions_info()
            if path == "/cube":
                return state.cube_info(self._level_param(params))
            if path == "/aqp":
                return state.aqp_status()
            if path == "/healthz":
                return state.healthz()
            return state.metricsz()
        if path in _POST_ROUTES:
            if method != "POST":
                raise MethodNotAllowedError(f"{path} answers POST only")
            if path == "/aqp/train":
                # The journal is the input; any body is drained (keep-alive
                # connections must not leave unread bytes) and ignored.
                self._drain_body()
                return state.aqp_train()
            body = self._read_json()
            if path == "/bellwether":
                return state.bellwether(
                    budget=body.get("budget"),
                    items=body.get("items"),
                    mode=body.get("mode"),
                    tolerance=body.get("tolerance"),
                )
            return state.predict(
                items=body.get("items"),
                region=body.get("region"),
                budget=body.get("budget"),
                mode=body.get("mode"),
                tolerance=body.get("tolerance"),
            )
        raise NotFoundError(f"no endpoint {path!r}")

    # --------------------------------------------------------------- parsing

    def _split_path(self) -> tuple[str, dict]:
        parts = urlsplit(self.path)
        return parts.path.rstrip("/") or "/", parse_qs(parts.query)

    @staticmethod
    def _level_param(params: dict) -> tuple[int, ...] | None:
        values = params.get("level")
        if not values:
            return None
        try:
            return tuple(int(x) for x in values[0].split(",") if x != "")
        except ValueError as exc:
            raise BadRequestError(
                f"level must be comma-separated integers: {values[0]!r}"
            ) from exc

    def _drain_body(self) -> None:
        if self._body_consumed:
            return
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)

    def _read_json(self) -> dict:
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequestError("request body must be a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequestError(f"malformed JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequestError("request body must be a JSON object")
        return body

    # --------------------------------------------------------------- replies

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # Client hung up mid-reply; nothing to answer anymore.
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:
        """Silence the per-request stderr line (metrics cover it)."""


def make_server(
    state: ServerState, host: str = "127.0.0.1", port: int = 0
) -> BellwetherHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks a free port."""
    return BellwetherHTTPServer((host, port), state)


class ServerHandle:
    """A server running in a daemon thread, for tests and the load harness."""

    def __init__(self, server: BellwetherHTTPServer):
        self.server = server
        self.thread = threading.Thread(
            target=server.serve_forever, name="repro-serve", daemon=True
        )
        self.thread.start()

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def state(self) -> ServerState:
        return self.server.state

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_in_thread(
    state: ServerState, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start an in-process server on a free port; ``close()`` when done."""
    return ServerHandle(make_server(state, host, port))
