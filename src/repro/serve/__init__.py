"""Bellwether-as-a-service: a concurrent HTTP/JSON query server.

The interactive counterpart of the batch CLI: a stdlib-only
``ThreadingHTTPServer`` answering "which region predicts item subset S
under budget B" (``POST /bellwether``) and "what aggregate does region r
predict for S" (``POST /predict``) in milliseconds, plus model/region/cube
browse endpoints — all request threads sharing one versioned
:class:`ServerState` behind an RW lock, answering warm queries with zero
fact scans from the PR 7 materialized cube tables, and adopting store
deltas live through the PR 3 patch-forward path.

Quickstart::

    python -m repro.serve --port 8000 --backend npz --aqp
    curl -s localhost:8000/model
    curl -s -X POST localhost:8000/bellwether -d '{"budget": 50}'
    curl -s -X POST localhost:8000/aqp/train
    curl -s -X POST localhost:8000/bellwether \
        -d '{"budget": 50, "mode": "approx", "tolerance": 0.5}'

Load harness: :mod:`repro.serve.loadgen` /
``python -m repro.serve.loadgen --port 8000`` (fig13 journals it).
"""

from .app import BellwetherHTTPServer, ServerHandle, make_server, serve_in_thread
from .client import ServeClient, ServeHTTPError
from .errors import (
    BadRequestError,
    InfeasibleQueryError,
    MethodNotAllowedError,
    NotFoundError,
    ServeError,
)
from .loadgen import LoadgenResult, run_loadgen
from .locks import RWLock
from .state import ENDPOINTS, ServerState

__all__ = [
    "BadRequestError",
    "BellwetherHTTPServer",
    "ENDPOINTS",
    "InfeasibleQueryError",
    "LoadgenResult",
    "MethodNotAllowedError",
    "NotFoundError",
    "RWLock",
    "ServeClient",
    "ServeError",
    "ServeHTTPError",
    "ServerHandle",
    "ServerState",
    "make_server",
    "run_loadgen",
    "serve_in_thread",
]
