"""Process-wide serving state shared by every request thread.

One :class:`ServerState` owns the versioned store, the
:class:`~repro.core.BasicBellwetherSearch` profile, the materialized cube
tables (:mod:`repro.storage.cubetables`) and a small per-version model
cache, all behind a writer-preferring :class:`~repro.serve.locks.RWLock`:

* **Warm queries** take the read lock and answer from cached state only —
  no fact scans, no mutation, any number in parallel.
* **Cold queries** (first touch of an item subset, or the store moved)
  take the write lock, bring the state up to the store's current version
  through the adopt-and-patch path (:func:`build_cube_tables` +
  :meth:`BasicBellwetherSearch.refresh`), recompute what is missing, and
  then answer.  A live server therefore tracks an appending store without
  restarts, and every response is stamped with the ``store_version`` it
  was computed at.

The :mod:`repro.obs` registry is single-threaded by design, so all serve
instrument updates go through ``_INSTRUMENT_LOCK`` here
(:func:`record_request` is the hook the HTTP layer calls).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.analysis.runtime import (
    SERVE_INSTRUMENT,
    SERVE_STATE_RW,
    TrackedLock,
    assert_holds_read,
    assert_holds_write,
)
from repro.aqp import ApproxMiss, AqpConfig, AqpEngine
from repro.core import BasicBellwetherSearch, BellwetherCubeBuilder
from repro.exceptions import ConfigError
from repro.exec import ParallelConfig
from repro.incremental import build_cube_tables
from repro.ml import TrainingSetEstimator, default_model_factory
from repro.obs.catalog import (
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_ERRORS,
    SERVE_LATENCY_AQP,
    SERVE_LATENCY_AQP_TRAIN,
    SERVE_LATENCY_BELLWETHER,
    SERVE_LATENCY_CUBE,
    SERVE_LATENCY_MODEL,
    SERVE_LATENCY_PREDICT,
    SERVE_LATENCY_REGIONS,
    SERVE_REQUESTS,
    SERVE_VERSION_ADOPTIONS,
    SERVE_ZERO_SCAN_QUERIES,
    STORE_FULL_SCANS,
)
from repro.obs.metrics import get_registry
from repro.core.exceptions import SearchError
from repro.incremental import versions_behind
from repro.storage import StorageError, TrainingDataStore
from repro.storage.columnar import region_from_json, region_to_json

from .errors import (
    BadRequestError,
    InfeasibleQueryError,
    NotFoundError,
    ServiceUnavailableError,
)
from .locks import LockTimeoutError, RWLock

__all__ = ["ENDPOINTS", "ServerState", "record_request"]

#: Routable endpoints, advertised by /model and /healthz.
ENDPOINTS = (
    "GET /model",
    "GET /regions",
    "GET /cube",
    "GET /aqp",
    "POST /bellwether",
    "POST /predict",
    "POST /aqp/train",
    "GET /healthz",
    "GET /metricsz",
)

# The registry's increments are plain ``+=`` (single-threaded by design);
# the service is the one multi-threaded client, so it brings its own lock.
# TrackedLock reports to the opt-in runtime checker under the canonical
# name the static rules (RPR007/RPR008) use for the same lock.
_INSTRUMENT_LOCK = TrackedLock(SERVE_INSTRUMENT)
_REGISTRY = get_registry()
_REQUESTS = _REGISTRY.counter(SERVE_REQUESTS)
_ERRORS = _REGISTRY.counter(SERVE_ERRORS)
_CACHE_HITS = _REGISTRY.counter(SERVE_CACHE_HITS)
_CACHE_MISSES = _REGISTRY.counter(SERVE_CACHE_MISSES)
_VERSION_ADOPTIONS = _REGISTRY.counter(SERVE_VERSION_ADOPTIONS)
_ZERO_SCAN_QUERIES = _REGISTRY.counter(SERVE_ZERO_SCAN_QUERIES)
_FULL_SCANS = _REGISTRY.counter(STORE_FULL_SCANS)
_LATENCY = {
    "model": _REGISTRY.histogram(SERVE_LATENCY_MODEL),
    "regions": _REGISTRY.histogram(SERVE_LATENCY_REGIONS),
    "cube": _REGISTRY.histogram(SERVE_LATENCY_CUBE),
    "bellwether": _REGISTRY.histogram(SERVE_LATENCY_BELLWETHER),
    "predict": _REGISTRY.histogram(SERVE_LATENCY_PREDICT),
    "aqp": _REGISTRY.histogram(SERVE_LATENCY_AQP),
    "aqp/train": _REGISTRY.histogram(SERVE_LATENCY_AQP_TRAIN),
}


def record_request(endpoint: str, elapsed_s: float, error: bool) -> None:
    """Count one answered request and observe its latency (thread-safe)."""
    with _INSTRUMENT_LOCK:
        _REQUESTS.inc()
        if error:
            _ERRORS.inc()
        hist = _LATENCY.get(endpoint)
        if hist is not None:
            hist.observe(elapsed_s)


def _record_cache(hit: bool) -> None:
    with _INSTRUMENT_LOCK:
        (_CACHE_HITS if hit else _CACHE_MISSES).inc()


def _record_adoption() -> None:
    with _INSTRUMENT_LOCK:
        _VERSION_ADOPTIONS.inc()


def _record_zero_scan() -> None:
    with _INSTRUMENT_LOCK:
        _ZERO_SCAN_QUERIES.inc()


class ServerState:
    """The one shared, versioned serving state behind the RW lock.

    Parameters
    ----------
    task, store:
        The problem definition and its (possibly appending) training store.
    hierarchies:
        Item hierarchies enabling the /cube drill-down endpoints and the
        materialized-tables warm path; requires ``tables_dir``.
    tables_dir:
        Directory for the persisted cube tables + suffstats cache (the
        PR 3/7 adopt-and-patch state).  Mandatory with ``hierarchies``.
    costs:
        Optional precomputed per-region costs (else from ``task.cost``).
    parallel:
        Fan cold evaluations out over this :class:`ParallelConfig`.  Use a
        thread backend — forking from a multi-threaded server process is
        deadlock-prone.
    dataset_name:
        Advertised by /model and /healthz.
    min_subset_size, min_examples:
        Builder/search thresholds, as in the batch paths.
    aqp_dir:
        Directory for the approximate tier's workload journal.  Enables
        ``mode=approx`` on /bellwether and /predict plus the /aqp
        endpoints; omitted = exact-only serving, exactly as before.
    aqp_config:
        Optional :class:`~repro.aqp.AqpConfig` tuning the learned surface.
    health_timeout:
        Seconds ``/healthz`` waits for the read lock before answering 503
        (a wedged writer must degrade the health check, not hang it).
        ``None`` waits forever, as every other endpoint does.
    """

    def __init__(
        self,
        task,
        store: TrainingDataStore,
        hierarchies=None,
        *,
        tables_dir: str | Path | None = None,
        costs=None,
        parallel: ParallelConfig | None = None,
        dataset_name: str = "dataset",
        min_subset_size: int = 3,
        min_examples: int | None = None,
        aqp_dir: str | Path | None = None,
        aqp_config: AqpConfig | None = None,
        health_timeout: float | None = 1.0,
    ):
        est = task.error_estimator
        algebraic = (
            isinstance(est, TrainingSetEstimator)
            and est.model_factory is default_model_factory
        )
        if hierarchies is not None and tables_dir is None:
            raise ConfigError(
                "serving with hierarchies requires tables_dir (the "
                "materialized cube tables back the /cube and warm paths)"
            )
        if tables_dir is not None and not algebraic:
            raise ConfigError(
                "materialized cube tables answer the algebraic training-set "
                "estimator only; this task's estimator needs raw rows — "
                "serve without tables_dir/hierarchies"
            )
        if parallel is not None and parallel.workers > 1 and (
            parallel.backend == "process"
        ):
            raise ConfigError(
                "a threaded server must not fork worker processes; use "
                "ParallelConfig(backend='thread') (or workers=1)"
            )
        self.task = task
        self.store = store
        self.dataset_name = dataset_name
        self.search = BasicBellwetherSearch(
            task, store, costs=costs, min_examples=min_examples
        )
        self.builder = (
            BellwetherCubeBuilder(
                task,
                store,
                hierarchies,
                min_subset_size=min_subset_size,
                min_examples=min_examples,
            )
            if hierarchies is not None
            else None
        )
        self._tables_dir = None if tables_dir is None else Path(tables_dir)
        self._tables = None
        self._tables_version: int | None = None
        self._cube = None
        self._cube_version: int | None = None
        # (region, item-id tuple | None, store version) -> (model, block, mean)
        self._models: dict = {}
        self._rw = RWLock(name=SERVE_STATE_RW)
        self._parallel = parallel
        self._known_items = {int(i) for i in task.item_ids}
        self._t0 = time.monotonic()
        self._health_timeout = health_timeout
        # The approximate tier: journal + learned surface.  Counter updates
        # share the serve instrument lock (the registry is single-threaded
        # by design); the model reference itself is guarded by the RW lock
        # like every other piece of serving state.
        self.aqp = (
            AqpEngine(
                aqp_dir,
                task=task,
                hierarchies=hierarchies,
                config=aqp_config,
                instrument_lock=_INSTRUMENT_LOCK,
            )
            if aqp_dir is not None
            else None
        )
        # Pre-warm: first table build + profile, before any thread exists.
        # The write lock is uncontended here; taking it anyway keeps the
        # runtime checker's "write lock held" contract uniform.
        with self._rw.write():
            self._refresh_locked()

    # ------------------------------------------------------------ versioning

    def _is_warm(self, key) -> bool:
        """Cached profile current for this item-subset key?  (lock held)"""
        return (
            self.search.profile_version == self.store.version
            and self.search.has_profile(key)
        )

    def _refresh_locked(self) -> None:
        """Bring tables + profile to the store's version.  (write lock held)

        Cube tables adopt the newest persisted snapshot and patch forward
        through the store changelog (:func:`build_cube_tables` reuses the
        incremental maintainer), then the search profile refreshes from
        them — region reads at most, never a fact scan once tables exist.
        """
        assert_holds_write(SERVE_STATE_RW)
        v = int(self.store.version)
        adopted = False
        if self.builder is not None and self._tables_dir is not None:
            if self._tables is None or self._tables_version != v:
                self._tables = build_cube_tables(self.builder, self._tables_dir)
                self._tables_version = v
                self._cube = None
                adopted = True
        if not self._is_warm(None):
            self.search.refresh(parallel=self._parallel, tables=self._tables)
            adopted = True
        if adopted:
            self._models.clear()
            _record_adoption()

    def apply_delta(self, delta) -> dict:
        """Apply a store delta and adopt it immediately (exclusive).

        The approximate tier's model is deliberately left stale: the next
        ``mode=approx`` query sees the version gap, answers exactly, and
        (with ``auto_retrain``) triggers the retrain behind the write lock
        — the fallback-then-retrain sequence the blitz pins down.
        """
        with self._rw.write():
            self.store.apply_delta(delta)
            self._refresh_locked()
            version = int(self.store.version)
        if self.aqp is not None:
            self.aqp.journal.log_delta(store_version=version)
        return {"store_version": version}

    # ---------------------------------------------------------- validation

    def _canonical_items(self, items) -> list[int] | None:
        """Sorted unique python ints, validated against the item table."""
        if items is None:
            return None
        if not isinstance(items, (list, tuple)) or not items:
            raise BadRequestError("items must be a non-empty list of item ids")
        try:
            ids = sorted({int(i) for i in items})
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"items must be integers: {exc}") from exc
        unknown = [i for i in ids if i not in self._known_items]
        if unknown:
            raise BadRequestError(f"unknown item ids: {unknown[:8]}")
        return ids

    def _decode_region(self, values):
        try:
            return region_from_json(values)
        except StorageError as exc:
            raise BadRequestError(f"unintelligible region key: {exc}") from exc

    @staticmethod
    def _check_budget(budget):
        if budget is None:
            return None
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise BadRequestError(f"budget must be a number, got {budget!r}")
        return float(budget)

    @staticmethod
    def _check_mode(mode, tolerance):
        if mode is not None and mode not in ("exact", "approx"):
            raise BadRequestError(
                f"mode must be 'exact' or 'approx', got {mode!r}"
            )
        if tolerance is not None:
            if mode != "approx":
                raise BadRequestError(
                    "tolerance is only meaningful with mode='approx'"
                )
            if (
                isinstance(tolerance, bool)
                or not isinstance(tolerance, (int, float))
                or not tolerance > 0
            ):
                raise BadRequestError(
                    f"tolerance must be a positive number, got {tolerance!r}"
                )
            tolerance = float(tolerance)
        return mode, tolerance

    # ------------------------------------------------------------- payloads

    def _region_result_json(self, r) -> dict:
        return {
            "region": region_to_json(r.region),
            "region_str": str(r.region),
            "cost": float(r.cost),
            "coverage": float(r.coverage),
            "n_examples": int(r.n_items),
            "rmse": float(r.rmse),
            "sse": None if r.error.sse is None else float(r.error.sse),
            "dof": int(r.error.dof),
            "error_kind": r.error.kind,
        }

    # ---------------------------------------------------------------- /model

    def model_info(self) -> dict:
        with self._rw.read():
            lattice = None
            if self.builder is not None:
                lattice = {
                    "n_levels": self.builder.n_levels,
                    "n_significant_subsets": len(
                        self.builder.significant_subsets
                    ),
                    "min_subset_size": self.builder.min_subset_size,
                    "min_examples": self.builder.min_examples,
                    "geometry": self.builder.geometry_signature(),
                }
            return {
                "service": "repro.serve",
                "dataset": self.dataset_name,
                "backend": type(self.store).__name__,
                "store_version": int(self.store.version),
                "n_regions": len(self.store.regions()),
                "n_items": int(self.task.n_items),
                "item_ids": sorted(self._known_items),
                "n_examples_total": int(self.store.n_examples_total),
                "feature_names": list(self.store.feature_names),
                "lattice": lattice,
                "aqp_enabled": self.aqp is not None,
                "endpoints": list(ENDPOINTS),
            }

    # -------------------------------------------------------------- /healthz

    def healthz(self) -> dict:
        try:
            with self._rw.read(timeout=self._health_timeout):
                return {
                    "status": "ok",
                    "dataset": self.dataset_name,
                    "store_version": int(self.store.version),
                    "uptime_s": round(time.monotonic() - self._t0, 3),
                }
        except LockTimeoutError as exc:
            # A writer has wedged the state past the health deadline: the
            # process is alive but cannot answer — degrade to 503 rather
            # than hanging the probe (which reads as a dead process).
            raise ServiceUnavailableError(
                f"state write-locked for over {self._health_timeout:.3f}s"
            ) from exc

    # ------------------------------------------------------------- /metricsz

    def metricsz(self) -> dict:
        with self._rw.read():
            version = int(self.store.version)
        with _INSTRUMENT_LOCK:
            snapshot = _REGISTRY.as_dict()
        return {"store_version": version, "metrics": snapshot}

    # -------------------------------------------------------------- /regions

    def regions_info(self) -> dict:
        with self._rw.read():
            if self._is_warm(None):
                _record_cache(hit=True)
                return self._regions_locked()
        with self._rw.write():
            self._refresh_locked()
            _record_cache(hit=False)
            return self._regions_locked()

    def _regions_locked(self) -> dict:
        assert_holds_read(SERVE_STATE_RW)
        profile = self.search.evaluate_all()
        by_region = {r.region: r for r in profile}
        entries = []
        for index, region in enumerate(self.store.regions()):
            rr = by_region.get(region)
            entries.append(
                {
                    "index": index,
                    "key": region_to_json(region),
                    "region": str(region),
                    "cost": float(rr.cost if rr else self.task.cost(region)),
                    "evaluable": rr is not None,
                    "coverage": None if rr is None else float(rr.coverage),
                    "n_examples": None if rr is None else int(rr.n_items),
                    "rmse": None if rr is None else float(rr.rmse),
                }
            )
        return {
            "store_version": int(self.store.version),
            "n_regions": len(entries),
            "regions": entries,
        }

    # ----------------------------------------------------------------- /cube

    def cube_info(self, level: tuple[int, ...] | None = None) -> dict:
        if self.builder is None:
            raise NotFoundError(
                "this deployment serves no item hierarchies; /cube needs them"
            )
        with self._rw.read():
            if (
                self._cube is not None
                and self._cube_version == self.store.version
            ):
                _record_cache(hit=True)
                return self._cube_locked(level)
        with self._rw.write():
            self._refresh_locked()
            if self._cube is None or self._cube_version != self.store.version:
                self._cube = self.builder.build_from_tables(self._tables)
                self._cube_version = int(self.store.version)
            _record_cache(hit=False)
            return self._cube_locked(level)

    def _cube_locked(self, level: tuple[int, ...] | None) -> dict:
        assert_holds_read(SERVE_STATE_RW)
        cube = self._cube
        levels = sorted({s.level for s in cube.subsets})
        if level is None:
            counts = {
                lv: sum(1 for s in cube.subsets if s.level == lv)
                for lv in levels
            }
            return {
                "store_version": int(self.store.version),
                "n_subsets": len(cube),
                "levels": [
                    {"level": list(lv), "n_subsets": counts[lv]}
                    for lv in levels
                ],
            }
        if level not in levels:
            raise NotFoundError(
                f"no lattice level {list(level)}; have "
                f"{[list(lv) for lv in levels]}"
            )
        entries = []
        for e in cube.crosstab(level):
            entries.append(
                {
                    "nodes": [str(n) for n in e.subset.nodes],
                    "n_items": int(e.n_items),
                    "found": e.found,
                    "region": None if e.region is None else region_to_json(e.region),
                    "region_str": None if e.region is None else str(e.region),
                    "rmse": None if e.error is None else float(e.error.rmse),
                }
            )
        return {
            "store_version": int(self.store.version),
            "level": list(level),
            "n_subsets": len(entries),
            "subsets": entries,
        }

    # ------------------------------------------------------------ /bellwether

    def bellwether(self, budget=None, items=None, mode=None, tolerance=None) -> dict:
        """Best region for item subset ``items`` under ``budget``.

        Exact path — warm (profile current for this subset): read lock,
        zero scans.  Cold: write lock, version adoption, then at most one
        scan for a never-seen restricted subset (the all-items profile
        never rescans once tables exist).

        ``mode="approx"`` (needs ``aqp_dir``): answer from the learned
        surface under the read lock — no store access at all — with a
        declared ``tolerance`` bounding the rmse deviation.  Any miss
        (untrained key, version drift, out-of-tolerance self-estimate)
        answers exactly instead, annotated with ``fallback_reason``, and
        may trigger an adaptive retrain behind the write lock.
        """
        mode, tolerance = self._check_mode(mode, tolerance)
        budget = self._check_budget(budget)
        ids = self._canonical_items(items)
        fallback_reason = None
        if mode == "approx":
            engine = self._require_aqp_mode()
            with self._rw.read():
                try:
                    model, answer = engine.try_answer_bellwether(
                        int(self.store.version), budget, ids, tolerance
                    )
                    if not answer.found:
                        raise InfeasibleQueryError(
                            f"no feasible region for budget={budget!r} over "
                            f"{'all items' if ids is None else f'{len(ids)} items'}"
                        )
                    _record_cache(hit=True)
                    _record_zero_scan()
                    return self._approx_bellwether_payload(
                        model, answer, budget, ids, tolerance
                    )
                except ApproxMiss as miss:
                    fallback_reason = miss.reason
            engine.note_fallback()
        payload = self._bellwether_exact(budget, ids)
        if fallback_reason is not None:
            payload["requested_mode"] = "approx"
            payload["fallback_reason"] = fallback_reason
            self._maybe_retrain(fallback_reason)
        return payload

    def _bellwether_exact(self, budget, ids) -> dict:
        key = frozenset(ids) if ids is not None else None
        # Unlocked `.value` reads below are a CPython-atomic int load; a
        # racing scan from another request at worst skips one zero-scan
        # tally, it cannot corrupt the counter.
        scans_before = _FULL_SCANS.value  # lint: ignore[RPR007]
        payload = None
        with self._rw.read():
            if self._is_warm(key):
                _record_cache(hit=True)
                payload = self._bellwether_locked(budget, ids)
                if _FULL_SCANS.value == scans_before:  # lint: ignore[RPR007]
                    _record_zero_scan()
        if payload is None:
            with self._rw.write():
                self._refresh_locked()
                if key is not None and not self.search.has_profile(key):
                    self.search.evaluate_all(
                        item_ids=ids, parallel=self._parallel
                    )
                _record_cache(hit=False)
                payload = self._bellwether_locked(budget, ids)
                if _FULL_SCANS.value == scans_before:  # lint: ignore[RPR007]
                    _record_zero_scan()
        if self.aqp is not None:
            self.aqp.journal.log_bellwether(
                store_version=payload["store_version"],
                budget=budget,
                items=ids,
                winner=payload["bellwether"]["region_str"],
            )
        return payload

    def _bellwether_locked(self, budget, ids) -> dict:
        assert_holds_read(SERVE_STATE_RW)
        result = self.search.run(budget=budget, item_ids=ids)
        if result.bellwether is None:
            raise InfeasibleQueryError(
                f"no feasible region for budget={budget!r} over "
                f"{'all items' if ids is None else f'{len(ids)} items'}"
            )
        return {
            "store_version": int(self.store.version),
            "mode": "exact",
            "budget": budget,
            "items": ids,
            "found": True,
            "bellwether": self._region_result_json(result.bellwether),
            "n_feasible": len(result.feasible),
            "feasible": [
                self._region_result_json(r) for r in result.feasible
            ],
        }

    def _approx_bellwether_payload(
        self, model, answer, budget, ids, tolerance
    ) -> dict:
        region = model.regions[answer.region_index]
        declared = tolerance if tolerance is not None else answer.estimated_error
        return {
            "store_version": model.store_version,
            "model_version": model.model_version,
            "mode": "approx",
            "tolerance": float(declared),
            "estimated_error": float(answer.estimated_error),
            "budget": budget,
            "items": ids,
            "found": True,
            "bellwether": {
                "region": region_to_json(region),
                "region_str": str(region),
                "cost": answer.cost,
                "coverage": answer.coverage,
                "n_examples": answer.n_examples,
                "rmse": answer.rmse,
                "error_kind": "approx",
            },
            "n_feasible": len(answer.feasible),
            "feasible": [
                {"region_str": str(model.regions[j]), "rmse": rmse}
                for j, rmse in answer.feasible
            ],
        }

    # --------------------------------------------------------------- /predict

    def predict(
        self, items, region=None, budget=None, mode=None, tolerance=None
    ) -> dict:
        """Predicted per-item values and aggregate for ``items`` from a region.

        ``region`` (a /regions ``key``) defaults to the bellwether for
        ``items`` under ``budget``.  The model is ``h_r`` fit on the
        region's rows restricted to ``items`` (exactly
        :meth:`BasicBellwetherSearch.fit_model`); items without rows in the
        region fall back to the training-set mean.

        ``mode="approx"`` answers from the trained artifact store: the
        exact payload replayed at train time for this (items, budget,
        region) — bit-for-bit the exact answer at the model's store
        version, zero store access.  Off-artifact queries fall back.
        """
        mode, tolerance = self._check_mode(mode, tolerance)
        budget = self._check_budget(budget)
        ids = self._canonical_items(items)
        if ids is None:
            raise BadRequestError("predict requires items")
        fallback_reason = None
        if mode == "approx":
            engine = self._require_aqp_mode()
            with self._rw.read():
                try:
                    model, artifact = engine.try_answer_predict(
                        int(self.store.version), ids, budget, region
                    )
                    _record_cache(hit=True)
                    _record_zero_scan()
                    payload = dict(artifact)
                    payload["mode"] = "approx"
                    payload["model_version"] = model.model_version
                    payload["tolerance"] = (
                        0.0 if tolerance is None else float(tolerance)
                    )
                    payload["estimated_error"] = 0.0
                    return payload
                except ApproxMiss as miss:
                    fallback_reason = miss.reason
            engine.note_fallback()
        payload = self._predict_exact(ids, region, budget)
        if fallback_reason is not None:
            payload["requested_mode"] = "approx"
            payload["fallback_reason"] = fallback_reason
            self._maybe_retrain(fallback_reason)
        return payload

    def _predict_exact(self, ids, region, budget) -> dict:
        region_obj = None if region is None else self._decode_region(region)
        key = frozenset(ids)
        payload = None
        with self._rw.read():
            if self._is_warm(key if region_obj is None else None) or (
                region_obj is not None
            ):
                payload = self._predict_locked(
                    ids, region_obj, budget, allow_build=False
                )
                if payload is not None:
                    _record_cache(hit=True)
        if payload is None:
            with self._rw.write():
                self._refresh_locked()
                if region_obj is None and not self.search.has_profile(key):
                    self.search.evaluate_all(
                        item_ids=ids, parallel=self._parallel
                    )
                _record_cache(hit=False)
                payload = self._predict_locked(
                    ids, region_obj, budget, allow_build=True
                )
        if self.aqp is not None:
            self.aqp.journal.log_predict(
                store_version=payload["store_version"],
                budget=budget,
                items=ids,
                region=region,
            )
        return payload

    def _predict_locked(self, ids, region, budget, allow_build: bool) -> dict | None:
        assert_holds_read(SERVE_STATE_RW)
        if region is None:
            if not self.search.has_profile(frozenset(ids)):
                return None
            result = self.search.run(budget=budget, item_ids=ids)
            if result.bellwether is None:
                raise InfeasibleQueryError(
                    f"no feasible region for budget={budget!r} "
                    f"over {len(ids)} items"
                )
            region = result.bellwether.region
        elif region not in set(self.store.regions()):
            raise NotFoundError(f"unknown region {region}")
        cache_key = (region, tuple(ids), int(self.store.version))
        entry = self._models.get(cache_key)
        if entry is None:
            if not allow_build:
                return None
            model = self.search.fit_model(region, item_ids=ids)
            block = self.store.read(region)
            train = block.restrict_to(np.asarray(ids))
            train_mean = float(train.y.mean()) if train.n_examples else 0.0
            entry = (model, block, train_mean)
            self._models[cache_key] = entry
        model, block, train_mean = entry
        predictions = []
        total = 0.0
        for item in ids:
            hit = np.flatnonzero(block.item_ids == item)
            if hit.size:
                value = float(model.predict(block.x[hit[0]])[0])
                fallback = False
            else:
                value = train_mean
                fallback = True
            total += value
            predictions.append(
                {"item": int(item), "value": value, "fallback": fallback}
            )
        return {
            "store_version": int(self.store.version),
            "mode": "exact",
            "budget": budget,
            "items": ids,
            "region": region_to_json(region),
            "region_str": str(region),
            "coef": [float(c) for c in model.coef],
            "predictions": predictions,
            "aggregate": float(total),
        }

    # ------------------------------------------------------------------ /aqp

    def _require_aqp_mode(self):
        if self.aqp is None:
            raise BadRequestError(
                "mode='approx' needs an approximate tier; serve with aqp_dir"
            )
        return self.aqp

    def aqp_status(self) -> dict:
        """GET /aqp: engine/model/journal status (never 404s)."""
        with self._rw.read():
            version = int(self.store.version)
            if self.aqp is None:
                return {"store_version": version, "enabled": False}
            status = self.aqp.status()
            status["store_version"] = version
            model = self.aqp.model
            status["versions_behind"] = (
                None
                if model is None
                else versions_behind(self.store, model.store_version)
            )
            return status

    def aqp_train(self) -> dict:
        """POST /aqp/train: (re)train the surface from the journal."""
        if self.aqp is None:
            raise NotFoundError(
                "this deployment has no approximate tier; serve with aqp_dir"
            )
        with self._rw.write():
            self._refresh_locked()
            model = self._train_locked(drift=False)
            return {
                "store_version": int(self.store.version),
                "model_version": model.model_version,
                "n_records": model.n_records,
                "n_trained_keys": len(model.bounds),
                "n_artifacts": len(model.artifacts),
            }

    def _train_locked(self, drift: bool):
        """Retrain the surface at the current version.  (write lock held)"""
        assert_holds_write(SERVE_STATE_RW)
        return self.aqp.train(
            self.search,
            costs=self.search.costs,
            predict_fn=self._replay_predict_locked,
            drift=drift,
        )

    def _replay_predict_locked(self, ids, region_key, budget):
        """Replay one journaled predict query exactly.  (write lock held)

        Returns None when the query no longer answers at this version
        (region dropped, budget now infeasible) — the artifact is skipped.
        """
        region_obj = (
            None if region_key is None else self._decode_region(region_key)
        )
        try:
            if region_obj is None and not self.search.has_profile(
                frozenset(ids)
            ):
                self.search.evaluate_all(item_ids=ids, parallel=self._parallel)
            return self._predict_locked(ids, region_obj, budget, allow_build=True)
        except (InfeasibleQueryError, NotFoundError, SearchError):
            return None

    def _maybe_retrain(self, reason: str) -> None:
        """Adaptive retrain after an approx fallback (no locks held).

        Version drift always retrains (the store moved; the journal is the
        up-to-date workload); otherwise only a drifting workload — a
        windowed miss-rate above threshold — does.  A degraded engine
        (unreadable journal) stays exact-only until an explicit
        /aqp/train succeeds.
        """
        engine = self.aqp
        if engine is None or not engine.config.auto_retrain or engine.degraded:
            return
        drift = engine.drift_detected
        if reason != "version_drift" and not drift:
            return
        with self._rw.write():
            self._refresh_locked()
            try:
                self._train_locked(drift=drift and reason != "version_drift")
            except StorageError:
                # Degraded mode is set; serving continues exact-only.
                return
