"""HTTP-facing errors for the query service.

Every error a request can surface descends from
:class:`~repro.exceptions.ReproError` and maps to one structured JSON
payload::

    {"error": {"type": "<class name>", "message": "...", "status": <code>}}

Service-specific conditions get their own :class:`ServeError` subclasses
carrying an HTTP status; domain errors raised by the engine (a
:class:`~repro.core.exceptions.SearchError` on an infeasible query, a
:class:`~repro.exceptions.ConfigError` on bad parameters) are mapped onto
statuses here so handler code can simply let them propagate.
"""

from __future__ import annotations

from repro.core.exceptions import SearchError, TaskError
from repro.exceptions import ConfigError, ReproError

from .locks import LockTimeoutError

__all__ = [
    "BadRequestError",
    "InfeasibleQueryError",
    "MethodNotAllowedError",
    "NotFoundError",
    "ServeError",
    "ServiceUnavailableError",
    "error_payload",
    "status_of",
]


class ServeError(ReproError):
    """A request the service refuses; subclasses pin the HTTP status."""

    status = 500


class BadRequestError(ServeError):
    """Malformed request: bad JSON, missing/ill-typed fields, unknown items."""

    status = 400


class NotFoundError(ServeError):
    """Unknown endpoint, region, or lattice level."""

    status = 404


class MethodNotAllowedError(ServeError):
    """The endpoint exists but not under this HTTP method."""

    status = 405


class InfeasibleQueryError(ServeError):
    """No region satisfies the query's criterion (e.g. budget too tight)."""

    status = 409


class ServiceUnavailableError(ServeError):
    """The service is up but cannot answer right now (wedged writer)."""

    status = 503


def status_of(exc: ReproError) -> int:
    """The HTTP status a :class:`ReproError` answers with."""
    if isinstance(exc, ServeError):
        return exc.status
    if isinstance(exc, (ConfigError, TaskError)):
        return 400
    if isinstance(exc, SearchError):
        # The engine's "cannot satisfy this query" outcome: infeasible
        # budget, empty training set, estimator/table mismatch.
        return 409
    if isinstance(exc, LockTimeoutError):
        # A request deadline elapsed while a writer held the state: the
        # service is alive but momentarily unable to answer.
        return 503
    return 500


def error_payload(exc: Exception, status: int | None = None) -> tuple[int, dict]:
    """``(status, body)`` for an exception escaping a request handler."""
    if status is None:
        status = status_of(exc) if isinstance(exc, ReproError) else 500
    return status, {
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "status": status,
        }
    }
