"""Figure 14 (approximate tier): learned answering vs the exact warm path.

The PR 9 approximate tier promises three things at once: warm
``mode=approx`` answers come from the learned surface alone (zero fact
scans), they are *faster* than the already-warm exact cube-table path,
and every one of them lands within its declared tolerance of the exact
answer.  This figure measures all three on one in-process
:class:`~repro.serve.ServerState` — no HTTP, so the latency split is the
answering paths themselves, not socket noise.

Protocol: an exact pass over the query plan journals the workload and
pays every cold evaluation; ``/aqp/train`` fits the surface; then each
query is re-asked ``repeats`` times in exact mode and ``repeats`` times
in approx mode, interleaved per query, with per-call latency sampled.
The approx pass runs under in-code gates — any fallback, any tolerance
violation, or any ``store.full_scans`` movement raises
:class:`~repro.exceptions.VerificationError` instead of journalling a
lie.  The journal record (``fig14.<backend>``) carries the AQP counter
deltas plus both p50s, so the PR 6 sentinel bands the speedup once
history accrues.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import build_store
from repro.datasets import make_mailorder
from repro.exceptions import ConfigError, VerificationError
from repro.ml import TrainingSetEstimator
from repro.obs.bench import BenchJournal
from repro.obs.catalog import (
    AQP_APPROX_ANSWERS,
    AQP_FALLBACKS,
    AQP_QUERIES,
    AQP_TRAINS,
    STORE_FULL_SCANS,
)
from repro.obs.metrics import get_registry
from repro.serve import InfeasibleQueryError, ServerState
from repro.storage import DiskStore

__all__ = ["Fig14Result", "run_fig14"]

_BACKENDS = ("memory", "npz", "columnar")

#: Counter deltas attached to the journal record.  Under the seeded plan
#: every one of them is deterministic, so the sentinel gates them as exact
#: ops contracts — ``aqp.fallbacks`` drifting off zero in the measured
#: pass would trip the band even before the latency split degrades.
_OP_METRICS = (
    STORE_FULL_SCANS,
    AQP_QUERIES,
    AQP_APPROX_ANSWERS,
    AQP_FALLBACKS,
    AQP_TRAINS,
)


@dataclass
class Fig14Result:
    """One approximate-tier sweep: warm exact vs warm approx, per query."""

    backend: str
    repeats: int
    exact_p50_ms: float = 0.0
    approx_p50_ms: float = 0.0
    n_queries: int = 0
    n_violations: int = 0
    max_deviation: float = 0.0
    rows: list[dict] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.exact_p50_ms / self.approx_p50_ms if self.approx_p50_ms else 0.0

    def render(self) -> str:
        lines = [
            f"fig14: warm exact vs mode=approx on {self.backend}, "
            f"{self.n_queries} queries x {self.repeats} repeats  "
            f"(violations={self.n_violations})"
        ]
        for row in self.rows:
            lines.append(
                f"  budget={row['budget']:6.1f} items={row['items']:>6}: "
                f"exact p50={row['exact_p50_ms']:7.3f}ms  "
                f"approx p50={row['approx_p50_ms']:7.3f}ms  "
                f"dev={row['deviation']:.4f} <= tol={row['tolerance']:.4f}"
            )
        lines.append(
            f"  overall: exact p50={self.exact_p50_ms:.3f}ms  "
            f"approx p50={self.approx_p50_ms:.3f}ms  "
            f"speedup={self.speedup:.1f}x"
        )
        return "\n".join(lines)


def _counter_snapshot() -> dict[str, float]:
    values = get_registry().counter_values()
    return {name: values.get(name, 0.0) for name in _OP_METRICS}


def _timed(call, repeats: int) -> tuple[dict, list[float]]:
    """Run ``call`` ``repeats`` times; return (last payload, latencies in ms)."""
    samples = []
    payload: dict = {}
    for __ in range(repeats):
        start = time.perf_counter()
        payload = call()
        samples.append((time.perf_counter() - start) * 1e3)
    return payload, samples


def run_fig14(
    backend: str = "npz",
    repeats: int = 30,
    n_items: int = 50,
    n_months: int = 8,
    seed: int = 0,
    budgets: tuple[float, ...] = (20.0, 50.0, 90.0),
    min_subset_size: int = 5,
    journal_path: str | Path | None = "BENCH_figures.json",
) -> Fig14Result:
    """Measure the learned approximate tier against the warm exact path.

    One deployment, one surface: exact queries journal the workload, one
    train call fits it, then every (budget, subset) point is re-asked in
    both modes.  The measured approx pass is gated in code — fallbacks,
    tolerance violations, and fact scans all raise
    :class:`VerificationError` — so a journalled fig14 record certifies
    the zero-scan warm-approx contract, not just a timing.  Journals as
    ``fig14.<backend>`` (``journal_path=None`` to skip).
    """
    if backend not in _BACKENDS:
        raise ConfigError(
            f"unknown fig14 backend {backend!r}; use one of {_BACKENDS}"
        )
    journal = (
        BenchJournal(
            journal_path,
            context={"figure": "fig14", "seed": seed, "n_items": n_items},
        )
        if journal_path is not None
        else None
    )
    ds = make_mailorder(
        n_items=n_items,
        n_months=n_months,
        seed=seed,
        error_estimator=TrainingSetEstimator(),
    )
    all_ids = sorted(int(i) for i in ds.task.item_ids)
    subset = all_ids[:: max(1, len(all_ids) // 12)]
    plan = [(budget, items) for budget in budgets for items in (None, subset)]
    result = Fig14Result(backend=backend, repeats=repeats)
    memory_store, costs, __ = build_store(ds.task)
    with tempfile.TemporaryDirectory(prefix="repro-fig14-") as tmp:
        root = Path(tmp)
        store = (
            memory_store
            if backend == "memory"
            else DiskStore.from_memory(root / "store", memory_store, backend=backend)
        )
        state = ServerState(
            ds.task,
            store,
            ds.hierarchies,
            tables_dir=root / "tables",
            costs=costs,
            dataset_name="mailorder",
            min_subset_size=min_subset_size,
            aqp_dir=root / "aqp",
        )
        # Exact pass: pays every cold profile once and journals the
        # workload the surface will be trained on.
        feasible_plan = []
        for budget, items in plan:
            try:
                state.bellwether(budget=budget, items=items)
            except InfeasibleQueryError:
                continue
            feasible_plan.append((budget, items))
        train_info = state.aqp_train()
        before = _counter_snapshot()
        exact_ms: list[float] = []
        approx_ms: list[float] = []
        for budget, items in feasible_plan:
            exact, e_samples = _timed(
                lambda: state.bellwether(budget=budget, items=items), repeats
            )
            approx, a_samples = _timed(
                lambda: state.bellwether(budget=budget, items=items, mode="approx"),
                repeats,
            )
            if approx["mode"] != "approx":
                raise VerificationError(
                    f"fig14 measured pass fell off the approx path: "
                    f"{approx.get('fallback_reason')!r} at budget {budget}"
                )
            deviation = abs(
                approx["bellwether"]["rmse"] - exact["bellwether"]["rmse"]
            )
            tolerance = approx["tolerance"]
            if deviation > tolerance:
                result.n_violations += 1
            result.max_deviation = max(result.max_deviation, deviation)
            exact_ms.extend(e_samples)
            approx_ms.extend(a_samples)
            result.rows.append(
                {
                    "budget": budget,
                    "items": "all" if items is None else f"|{len(items)}|",
                    "exact_p50_ms": statistics.median(e_samples),
                    "approx_p50_ms": statistics.median(a_samples),
                    "deviation": deviation,
                    "tolerance": tolerance,
                    "winner_match": (
                        approx["bellwether"]["region_str"]
                        == exact["bellwether"]["region_str"]
                    ),
                }
            )
        after = _counter_snapshot()
    deltas = {k: after[k] - before[k] for k in _OP_METRICS}
    result.n_queries = len(feasible_plan)
    result.exact_p50_ms = statistics.median(exact_ms)
    result.approx_p50_ms = statistics.median(approx_ms)
    # In-code gates: a fig14 record certifies the warm-approx contract.
    if result.n_violations:
        raise VerificationError(
            f"fig14: {result.n_violations} approx answers exceeded their "
            f"declared tolerance (max deviation {result.max_deviation:.6f})"
        )
    if deltas[STORE_FULL_SCANS]:
        raise VerificationError(
            f"fig14: warm measured pass touched the fact store "
            f"({int(deltas[STORE_FULL_SCANS])} full scans; expected 0)"
        )
    if deltas[AQP_FALLBACKS]:
        raise VerificationError(
            f"fig14: {int(deltas[AQP_FALLBACKS])} fallbacks in the warm "
            f"measured pass; expected 0"
        )
    if journal is not None:
        journal.record(
            f"fig14.{backend}",
            elapsed_s=sum(exact_ms + approx_ms) / 1e3,
            metrics=deltas,
            backend=backend,
            repeats=repeats,
            n_queries=result.n_queries,
            n_trained_keys=train_info["n_trained_keys"],
            n_records=train_info["n_records"],
            exact_p50_ms=round(result.exact_p50_ms, 4),
            approx_p50_ms=round(result.approx_p50_ms, 4),
            speedup=round(result.speedup, 2),
            max_deviation=round(result.max_deviation, 6),
            n_violations=result.n_violations,
        )
    return result
