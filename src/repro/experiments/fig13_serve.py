"""Figure 13 (service): query-service latency and throughput under load.

The paper's system is interactive — an analyst asks "which region predicts
subset S under budget B" and expects an answer in seconds, not a batch
job.  This figure measures that regime end to end: a live
:mod:`repro.serve` process over an on-disk store, hit by N concurrent
seeded synthetic clients (:mod:`repro.serve.loadgen`).  The warm-up pass
pays every cold evaluation once; the measured pass then runs entirely on
the server's read-locked, zero-scan path, so p50/p99 latency and
throughput characterize the materialized-tables serving architecture, not
ad-hoc rescans.

Each (backend, client-count) point journals to ``BENCH_figures.json``
under the PR 6 sentinel, with the ``serve.requests`` /
``store.full_scans`` counter deltas attached — the deterministic query
plan makes both exact contracts, so a future change that silently
reintroduces fact scans into the warm path trips the sentinel's two-sided
ops band, not just the latency band.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import build_store
from repro.datasets import make_mailorder
from repro.exceptions import ConfigError
from repro.ml import TrainingSetEstimator
from repro.obs.bench import BenchJournal
from repro.obs.catalog import (
    SERVE_REQUESTS,
    SERVE_ZERO_SCAN_QUERIES,
    STORE_FULL_SCANS,
)
from repro.obs.metrics import get_registry
from repro.serve import ServerState, run_loadgen, serve_in_thread
from repro.storage import DiskStore

__all__ = ["Fig13Result", "run_fig13"]

_BACKENDS = ("memory", "npz", "columnar")

#: Counter deltas attached to every journal record (deterministic under
#: the seeded plan, hence sentinel-gated as exact ops contracts).
_OP_METRICS = (SERVE_REQUESTS, STORE_FULL_SCANS, SERVE_ZERO_SCAN_QUERIES)


@dataclass
class Fig13Result:
    """One serving sweep: a row per storage backend."""

    clients: int
    requests_per_client: int
    rows: list[dict] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"fig13: {self.clients} concurrent clients x "
            f"{self.requests_per_client} requests, live repro.serve"
        ]
        for row in self.rows:
            lines.append(
                f"  {row['backend']:>8}: {row['rps']:7.0f} req/s  "
                f"p50={row['p50_ms']:7.2f}ms  p99={row['p99_ms']:7.2f}ms  "
                f"errors={row['n_errors']}  "
                f"full_scans={row['full_scans']}"
            )
        return "\n".join(lines)


def _counter_snapshot() -> dict[str, float]:
    values = get_registry().counter_values()
    return {name: values.get(name, 0.0) for name in _OP_METRICS}


def run_fig13(
    backends=("npz",),
    clients: int = 256,
    requests_per_client: int = 4,
    n_items: int = 50,
    n_months: int = 8,
    seed: int = 0,
    budgets: tuple[float, ...] = (20.0, 50.0, 90.0),
    min_subset_size: int = 5,
    journal_path: str | Path | None = "BENCH_figures.json",
) -> Fig13Result:
    """Serve the mail-order deployment and measure it under concurrent load.

    One live server per backend (fresh temp directory, materialized cube
    tables), ``clients`` synchronized client threads each walking a seeded
    ``requests_per_client``-query mix.  Results journal as
    ``fig13.<backend>.c<clients>`` (pass ``journal_path=None`` to skip).
    """
    for backend in backends:
        if backend not in _BACKENDS:
            raise ConfigError(
                f"unknown fig13 backend {backend!r}; use one of {_BACKENDS}"
            )
    journal = (
        BenchJournal(
            journal_path,
            context={"figure": "fig13", "seed": seed, "n_items": n_items},
        )
        if journal_path is not None
        else None
    )
    ds = make_mailorder(
        n_items=n_items,
        n_months=n_months,
        seed=seed,
        error_estimator=TrainingSetEstimator(),
    )
    result = Fig13Result(clients=clients, requests_per_client=requests_per_client)
    for backend in backends:
        memory_store, costs, __ = build_store(ds.task)
        with tempfile.TemporaryDirectory(prefix="repro-fig13-") as tmp:
            root = Path(tmp)
            store = (
                memory_store
                if backend == "memory"
                else DiskStore.from_memory(
                    root / "store", memory_store, backend=backend
                )
            )
            state = ServerState(
                ds.task,
                store,
                ds.hierarchies,
                tables_dir=root / "tables",
                costs=costs,
                dataset_name="mailorder",
                min_subset_size=min_subset_size,
            )
            with serve_in_thread(state) as handle:
                before = _counter_snapshot()
                load = run_loadgen(
                    handle.host,
                    handle.port,
                    clients=clients,
                    requests_per_client=requests_per_client,
                    seed=seed,
                    budgets=budgets,
                )
                after = _counter_snapshot()
        deltas = {k: after[k] - before[k] for k in _OP_METRICS}
        # The delta brackets warm-up + measured pass.  Warm-up pays one scan
        # per cold subset profile; the measured pass answers from the
        # read-locked cached state, so the total stays a small constant of
        # the plan — hundreds of measured queries falling off the warm path
        # would blow the sentinel's two-sided ops band immediately.
        full_scans = int(deltas[STORE_FULL_SCANS])
        row = {
            "backend": backend,
            "n_requests": load.n_requests,
            "n_errors": load.n_errors,
            "n_infeasible": load.n_infeasible,
            "elapsed_s": load.elapsed_s,
            "p50_ms": load.p50_ms,
            "p99_ms": load.p99_ms,
            "rps": load.rps,
            "full_scans": full_scans,
        }
        result.rows.append(row)
        if journal is not None:
            journal.record(
                f"fig13.{backend}.c{clients}",
                elapsed_s=load.elapsed_s,
                metrics=deltas,
                backend=backend,
                clients=clients,
                requests_per_client=requests_per_client,
                n_requests=load.n_requests,
                n_errors=load.n_errors,
                n_infeasible=load.n_infeasible,
                p50_ms=round(load.p50_ms, 3),
                p99_ms=round(load.p99_ms, 3),
                rps=round(load.rps, 1),
            )
    return result
