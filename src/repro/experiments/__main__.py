"""Command-line runner for the paper's figures.

Usage::

    python -m repro.experiments fig7           # one figure
    python -m repro.experiments fig10a fig10b  # several
    python -m repro.experiments all            # everything
    python -m repro.experiments all --fast     # small sizes, quick sanity
    python -m repro.experiments fig7 --workers 4   # parallel region fan-out

Observability (see ``repro.obs``)::

    python -m repro.experiments fig7 --fast --trace
        # span tree + critical path + hot spans + metrics on stderr
    python -m repro.experiments fig7 --fast --profile
        # like --trace, plus per-span peak-RSS / GC / read-rate samples
    python -m repro.experiments all --fast --metrics-out runs.jsonl
        # one JSON line per figure: elapsed, metric deltas, span tree
        # (analyze later with `python -m repro.obs report runs.jsonl`)
    python -m repro.experiments all --fast --bench
        # one summary line per figure: elapsed, scan/read/fit counts

Each figure prints the same series the benches record under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exec import ParallelConfig, set_default_config
from repro.obs import observe

from . import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10a,
    run_fig10b,
    run_fig11a,
    run_fig11b,
    run_fig11c,
    run_fig11d,
    run_fig11e,
    run_fig11f,
    run_fig12a,
    run_fig12b,
    run_fig13,
    run_fig14,
)


def _fig7(fast: bool):
    kwargs = dict(n_items=60, budgets=(5.0, 25.0, 45.0, 65.0, 85.0)) if fast else {}
    return run_fig7(**kwargs).render()


def _fig8(fast: bool):
    kwargs = dict(n_items=60, budgets=(10.0, 30.0), n_folds=3) if fast else {}
    return run_fig8(**kwargs).render()


def _fig9(fast: bool):
    kwargs = (
        dict(n_items=60, budgets=(10.0, 40.0, 80.0),
             prediction_budgets=(20.0, 80.0), n_folds=3)
        if fast
        else dict(n_folds=3)
    )
    return run_fig9(**kwargs).render()


def _fig10a(fast: bool):
    kwargs = (
        dict(n_datasets=1, n_items=150, n_folds=3, noises=(0.05, 0.5, 2.0))
        if fast
        else dict(n_datasets=3, n_folds=3)
    )
    return run_fig10a(**kwargs).render()


def _fig10b(fast: bool):
    kwargs = (
        dict(n_datasets=1, n_items=150, n_folds=3, node_counts=(3, 15, 63))
        if fast
        else dict(n_datasets=3, n_folds=3)
    )
    return run_fig10b(**kwargs).render()


def _fig11a(fast: bool):
    kwargs = dict(region_counts=(4, 8), n_items=200) if fast else {}
    return run_fig11a(**kwargs).render()


def _fig11b(fast: bool):
    kwargs = dict(region_counts=(8, 16), n_items=400) if fast else {}
    return run_fig11b(**kwargs).render()


def _fig11c(fast: bool):
    kwargs = dict(region_counts=(8, 16), n_items=400) if fast else {}
    return run_fig11c(**kwargs).render()


def _fig11d(fast: bool):
    kwargs = dict(region_counts=(8, 16), n_items=400, workers=2) if fast else {}
    return run_fig11d(**kwargs).render()


def _fig11e(fast: bool, append_months: int | None = None):
    kwargs = dict(n_items=80, base_months=7, append_months=2) if fast else {}
    if append_months is not None:
        kwargs["append_months"] = append_months
    return run_fig11e(**kwargs).render()


def _fig11f(fast: bool, backend: str = "both"):
    backends = ("npz", "columnar") if backend == "both" else (backend,)
    # Fast mode is a smoke test at toy scale; journalling it would mix
    # 3.6k-example timings into the 10M-example sentinel baselines.
    kwargs = dict(n_items=300, n_regions=12, journal_path=None) if fast else {}
    return run_fig11f(backends=backends, **kwargs).render()


def _fig12a(fast: bool):
    kwargs = dict(leaf_counts=(2, 4), n_items=300) if fast else {}
    return run_fig12a(**kwargs).render()


def _fig12b(fast: bool):
    kwargs = dict(feature_counts=(2, 6), n_items=300) if fast else {}
    return run_fig12b(**kwargs).render()


def _fig13(fast: bool):
    kwargs = (
        dict(
            clients=8,
            requests_per_client=3,
            n_items=24,
            n_months=4,
            journal_path=None,
        )
        if fast
        else {}
    )
    return run_fig13(**kwargs).render()


def _fig14(fast: bool):
    kwargs = (
        dict(
            repeats=5,
            n_items=24,
            n_months=4,
            journal_path=None,
        )
        if fast
        else {}
    )
    return run_fig14(**kwargs).render()


FIGURES = {
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10a": _fig10a,
    "fig10b": _fig10b,
    "fig11a": _fig11a,
    "fig11b": _fig11b,
    "fig11c": _fig11c,
    "fig11d": _fig11d,
    "fig11e": _fig11e,
    "fig11f": _fig11f,
    "fig12a": _fig12a,
    "fig12b": _fig12b,
    "fig13": _fig13,
    "fig14": _fig14,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=[*FIGURES, "all"],
        help="which figures to run",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="small problem sizes (sanity runs, not the recorded series)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record tracing spans; print the span tree, critical path, "
        "hot spans, and metrics to stderr",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample peak RSS / GC / store read rate per span "
        "(implies --trace)",
    )
    parser.add_argument(
        "--lockcheck",
        action="store_true",
        help="enable the runtime lock checker for each figure "
        "(raises on lock-order violations)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="append one JSON line per figure (elapsed, metrics, spans)",
    )
    parser.add_argument(
        "--bench",
        action="store_true",
        help="print a one-line summary per figure (elapsed, scans, fits)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan region work out over N worker processes (default 1 = serial; "
        "results are identical, only wall-clock changes)",
    )
    parser.add_argument(
        "--backend",
        choices=("npz", "columnar", "both"),
        default="both",
        help="fig11f only: which out-of-core storage backend(s) to sweep "
        "(default: both)",
    )
    parser.add_argument(
        "--append-months",
        type=int,
        default=None,
        metavar="N",
        help="fig11e only: stream N new months of orders into the deployed "
        "store (default: the figure's standard 3, or 2 with --fast)",
    )
    args = parser.parse_args(argv)
    if args.workers != 1:
        set_default_config(ParallelConfig(workers=args.workers))
    tracing = args.trace or args.profile
    names = list(FIGURES) if "all" in args.figures else args.figures
    for name in names:
        start = time.perf_counter()
        with observe(
            name,
            trace=tracing,
            profile=args.profile,
            lockcheck=args.lockcheck,
        ) as report:
            if name == "fig11e":
                rendered = _fig11e(args.fast, args.append_months)
            elif name == "fig11f":
                rendered = _fig11f(args.fast, args.backend)
            else:
                rendered = FIGURES[name](args.fast)
        print(rendered)
        print(f"[{name} in {time.perf_counter() - start:.1f}s]\n")
        if tracing:
            print(report.render(), file=sys.stderr)
        if args.bench:
            print(report.summary_line(), file=sys.stderr)
        if args.metrics_out:
            report.append_to(args.metrics_out, include_spans=tracing)
    return 0


if __name__ == "__main__":
    sys.exit(main())
