"""Figure 7: basic bellwether analysis of the mail-order dataset.

* (a) Bel Err / Avg Err / Smp Err vs budget with 10-fold CV error —
  bellwether error falls with budget and converges (paper: near budget 50 at
  ``[1-8, MD]``), beating random sampling and far beating the average region.
* (b) Fraction of regions indistinguishable from the bellwether at 95%/99%
  confidence — near-unique through the mid-budget band.
* (c) Same as (a) with training-set error — nearly identical to (a),
  validating the cheap estimator for linear models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    BasicBellwetherSearch,
    BudgetPoint,
    RandomSamplingBaseline,
    TrainingDataGenerator,
    budget_sweep,
)
from repro.datasets import RetailDataset, make_mailorder
from repro.ml import CrossValidationEstimator, TrainingSetEstimator

DEFAULT_BUDGETS = (5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0, 85.0)


@dataclass
class Fig7Result:
    """All three panels' series."""

    budgets: tuple[float, ...]
    cv_points: list[BudgetPoint]        # panel (a) + (b)
    training_points: list[BudgetPoint]  # panel (c)

    def render(self) -> str:
        from repro.core import render_table

        parts = [
            "Figure 7(a,b) — mail order, 10-fold CV error",
            render_table(self.cv_points),
            "",
            "Figure 7(c) — mail order, training-set error",
            render_table(self.training_points),
        ]
        return "\n".join(parts)


def run_fig7(
    n_items: int = 150,
    seed: int = 0,
    budgets: tuple[float, ...] = DEFAULT_BUDGETS,
    sampling_trials: int = 3,
    dataset: RetailDataset | None = None,
) -> Fig7Result:
    """Run the full Figure 7 experiment on the synthetic mail-order data."""
    from repro.core import build_store

    ds = dataset or make_mailorder(
        n_items=n_items, seed=seed,
        error_estimator=CrossValidationEstimator(n_folds=10, seed=seed),
    )
    gen = TrainingDataGenerator(ds.task)
    store, costs, coverage = build_store(ds.task)
    sampling = RandomSamplingBaseline(
        ds.task, ds.cell_costs, generator=gen, seed=seed
    )
    # (a)+(b): cross-validation error
    cv_search = BasicBellwetherSearch(ds.task, store, costs=costs)
    cv_points = budget_sweep(
        cv_search, budgets, sampling=sampling, sampling_trials=sampling_trials
    )
    # (c): training-set error on the same store
    training_task = ds.task.with_criterion(ds.task.criterion)
    training_task.error_estimator = TrainingSetEstimator()
    tr_search = BasicBellwetherSearch(training_task, store, costs=costs)
    tr_points = budget_sweep(tr_search, budgets)
    return Fig7Result(tuple(budgets), cv_points, tr_points)
