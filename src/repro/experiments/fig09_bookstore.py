"""Figure 9: bellwether analysis of the book store dataset.

The negative result: (a) the bellwether error flattens with budget, but
(b) a large fraction of regions stays indistinguishable from the returned
one — no unique bellwether — and (c) basic/tree/cube show no clear winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    BasicBellwetherSearch,
    BudgetPoint,
    RandomSamplingBaseline,
    TrainingDataGenerator,
    budget_sweep,
    build_store,
    compare_methods,
)
from repro.datasets import RetailDataset, make_bookstore
from repro.ml import CrossValidationEstimator, TrainingSetEstimator
from repro.storage import FilteredStore

from .tables import render_series

DEFAULT_BUDGETS = (10.0, 20.0, 40.0, 60.0, 80.0, 100.0)
PREDICTION_BUDGETS = (20.0, 50.0, 80.0)


@dataclass
class Fig9Result:
    budgets: tuple[float, ...]
    sweep_points: list[BudgetPoint]  # panels (a) and (b)
    prediction_budgets: tuple[float, ...]
    basic: list[float]
    tree: list[float]
    cube: list[float]

    def render(self) -> str:
        from repro.core import render_table

        parts = [
            "Figure 9(a,b) — book store, 10-fold CV error",
            render_table(self.sweep_points),
            "",
            render_series(
                "Figure 9(c) — prediction methods on book store (RMSE)",
                "budget",
                self.prediction_budgets,
                {"basic": self.basic, "tree": self.tree, "cube": self.cube},
            ),
        ]
        return "\n".join(parts)


def run_fig9(
    n_items: int = 150,
    seed: int = 7,
    budgets: tuple[float, ...] = DEFAULT_BUDGETS,
    prediction_budgets: tuple[float, ...] = PREDICTION_BUDGETS,
    n_folds: int = 5,
    sampling_trials: int = 3,
    dataset: RetailDataset | None = None,
) -> Fig9Result:
    ds = dataset or make_bookstore(
        n_items=n_items,
        seed=seed,
        error_estimator=CrossValidationEstimator(n_folds=10, seed=seed),
    )
    gen = TrainingDataGenerator(ds.task)
    store, costs, coverage = build_store(ds.task)
    sampling = RandomSamplingBaseline(
        ds.task, ds.cell_costs, generator=gen, seed=seed
    )
    search = BasicBellwetherSearch(ds.task, store, costs=costs)
    points = budget_sweep(
        search, budgets, sampling=sampling, sampling_trials=sampling_trials
    )
    # (c) prediction comparison with a cheap estimator (method ranking only)
    fast_task = ds.task.with_criterion(ds.task.criterion)
    fast_task.error_estimator = TrainingSetEstimator()
    basic, tree, cube = [], [], []
    for budget in prediction_budgets:
        feasible = [r for r in store.regions() if costs[r] <= budget]
        view = FilteredStore(store, feasible)
        out = compare_methods(
            fast_task,
            view,
            hierarchies=ds.hierarchies,
            split_attrs=("category", "rdexpense"),
            n_folds=n_folds,
            seed=seed,
            tree_kwargs=dict(min_items=25, max_depth=1, max_numeric_splits=4,
                             min_relative_goodness=0.35),
            cube_kwargs=dict(min_subset_size=30),
        )
        basic.append(out["basic"])
        tree.append(out["tree"])
        cube.append(out["cube"])
    return Fig9Result(
        tuple(budgets), points, tuple(prediction_budgets), basic, tree, cube
    )
