"""Figure 11(e) — append-stream maintenance: incremental vs full rebuild.

This reproduction's addition on top of the paper's scalability study: a
mail-order deployment that has materialized its training data through month
``M`` keeps receiving new months of orders.  Each arrival becomes a
:class:`~repro.storage.StoreDelta` (every candidate window ending at the new
month is a brand-new region); the figure then times two ways of bringing
the bellwether answers current:

* **full rebuild** — a fresh basic-search evaluation plus a fresh optimized
  cube build over the updated store (one full scan each);
* **incremental refresh** — :meth:`BasicBellwetherSearch.refresh` plus
  :meth:`IncrementalCubeMaintainer.refresh`, which replay the store's
  changelog onto cached statistics (no full scan, one batched solve per
  dirty lattice level).

Both paths produce bit-for-bit identical picks (asserted here and in the
equivalence tests); only the work differs.  Timings and the counter deltas
(``store.full_scans``, ``ml.linear.batched_problems``, ``ml.linear.fits``,
``incr.*``) are journalled to ``BENCH_figures.json``.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core import BasicBellwetherSearch, BellwetherCubeBuilder
from repro.datasets import make_mailorder
from repro.exec import get_default_config
from repro.incremental import month_append_delta, month_split_store
from repro.ml import TrainingSetEstimator
from repro.exceptions import VerificationError
from repro.obs import catalog
from repro.obs.bench import BenchJournal
from repro.obs.metrics import get_registry

from .fig11_scalability import ScalingResult

_WATCHED = (
    catalog.STORE_FULL_SCANS,
    catalog.STORE_REGION_READS,
    catalog.ML_LINEAR_FITS,
    catalog.ML_LINEAR_BATCHED_SOLVES,
    catalog.ML_LINEAR_BATCHED_PROBLEMS,
    catalog.INCR_CELLS_RESOLVED,
    catalog.INCR_REGIONS_REFRESHED,
    catalog.INCR_CACHE_HITS,
)


def _timed(fn) -> tuple[float, dict[str, float]]:
    """(seconds, watched-counter deltas) of one call."""
    registry = get_registry()
    before = registry.counter_values()
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    after = registry.counter_values()
    deltas = {
        name: after.get(name, 0) - before.get(name, 0) for name in _WATCHED
    }
    return elapsed, {k: v for k, v in deltas.items() if v}


def _same_cube(a, b) -> bool:
    if a.subsets != b.subsets:
        return False
    for s in a.subsets:
        ea, eb = a.entry(s), b.entry(s)
        if ea.region != eb.region:
            return False
        if (ea.error is None) != (eb.error is None):
            return False
        if ea.error is not None and ea.error.rmse != eb.error.rmse:
            return False
    return True


def run_fig11e(
    n_items: int = 250,
    base_months: int = 7,
    append_months: int = 3,
    seed: int = 0,
    journal_path: str | Path | None = "BENCH_figures.json",
) -> ScalingResult:
    """Stream ``append_months`` months into a month-``base_months`` deployment.

    For each appended month, times a full rebuild (fresh search + fresh
    optimized cube, full scans) against the incremental refresh of the same
    answers, asserting the picks match bit for bit.  Set
    ``journal_path=None`` to skip journalling.
    """
    n_months = base_months + append_months
    journal = (
        BenchJournal(
            journal_path,
            context={
                "figure": "fig11e",
                "workers": get_default_config().workers,
            },
        )
        if journal_path is not None
        else None
    )
    ds = make_mailorder(
        n_items=n_items,
        n_months=n_months,
        seed=seed,
        error_estimator=TrainingSetEstimator(),
    )
    gen, regions, store = month_split_store(ds.task, base_months)
    search = BasicBellwetherSearch(ds.task, store)
    search.evaluate_all()
    maintainer = BellwetherCubeBuilder(
        ds.task, store, ds.hierarchies
    ).incremental()
    maintainer.refresh()
    series: dict[str, list[float]] = {
        "full rebuild": [],
        "incremental refresh": [],
    }
    xs = []
    for month in range(base_months + 1, n_months + 1):
        store.apply_delta(month_append_delta(gen, regions, month))
        xs.append(store.n_examples_total)

        scratch: dict = {}

        def _rebuild():
            scratch["profile"] = BasicBellwetherSearch(
                ds.task, store
            ).evaluate_all()
            scratch["cube"] = BellwetherCubeBuilder(
                ds.task, store, ds.hierarchies
            ).build("optimized")

        incr: dict = {}

        def _refresh():
            incr["profile"] = search.refresh()
            incr["cube"] = maintainer.refresh()

        full_s, full_metrics = _timed(_rebuild)
        incr_s, incr_metrics = _timed(_refresh)
        if not _same_cube(incr["cube"], scratch["cube"]):
            raise VerificationError(
                f"incremental cube diverged from rebuild at month {month}"
            )
        if [(r.region, r.rmse) for r in incr["profile"]] != [
            (r.region, r.rmse) for r in scratch["profile"]
        ]:
            raise VerificationError(
                f"incremental profile diverged from rebuild at month {month}"
            )
        series["full rebuild"].append(full_s)
        series["incremental refresh"].append(incr_s)
        if journal is not None:
            journal.record(
                "fig11e.full_rebuild", full_s,
                metrics=full_metrics, month=month, examples=xs[-1],
            )
            journal.record(
                "fig11e.incremental_refresh", incr_s,
                metrics=incr_metrics, month=month, examples=xs[-1],
            )
    return ScalingResult(
        tuple(xs), "examples", series,
        title="Figure 11(e) — append stream: full rebuild vs incremental refresh (seconds)",
    )
