"""Figure 10: cube/basic/tree errors on the Section 7.3 simulation.

(a) RMSE vs noise level at fixed generator complexity (15 tree nodes):
cube and tree beat basic consistently; the gap shrinks as noise grows.
(b) RMSE vs generator complexity (tree node count) at noise 0.5: same
ordering; the improvement shrinks as the bellwether distribution gets
complex.  Each point averages several generated datasets, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import compare_methods
from repro.datasets import make_simulation
from repro.ml import TrainingSetEstimator

from .tables import render_series

DEFAULT_NOISES = (0.05, 0.5, 1.0, 2.0)
DEFAULT_NODE_COUNTS = (3, 7, 15, 31, 63)


@dataclass
class Fig10Result:
    xs: tuple
    x_name: str
    basic: list[float]
    tree: list[float]
    cube: list[float]
    title: str

    def render(self) -> str:
        return render_series(
            self.title,
            self.x_name,
            self.xs,
            {"cube": self.cube, "basic": self.basic, "tree": self.tree},
        )


def _average_over_datasets(
    n_datasets: int,
    n_items: int,
    n_tree_nodes: int,
    noise: float,
    n_folds: int,
    seed: int,
) -> dict[str, float]:
    sums = {"basic": 0.0, "tree": 0.0, "cube": 0.0}
    for d in range(n_datasets):
        ds = make_simulation(
            n_items=n_items,
            n_tree_nodes=n_tree_nodes,
            noise=noise,
            seed=seed + 97 * d,
            error_estimator=TrainingSetEstimator(),
        )
        out = compare_methods(
            ds.task,
            ds.store,
            hierarchies=ds.hierarchies,
            n_folds=n_folds,
            seed=seed,
            tree_kwargs=dict(min_items=25, max_depth=4),
            cube_kwargs=dict(min_subset_size=15),
        )
        for k in sums:
            sums[k] += out[k]
    return {k: v / n_datasets for k, v in sums.items()}


def run_fig10a(
    noises: tuple[float, ...] = DEFAULT_NOISES,
    n_tree_nodes: int = 15,
    n_datasets: int = 3,
    n_items: int = 400,
    n_folds: int = 5,
    seed: int = 0,
) -> Fig10Result:
    basic, tree, cube = [], [], []
    for noise in noises:
        out = _average_over_datasets(
            n_datasets, n_items, n_tree_nodes, noise, n_folds, seed
        )
        basic.append(out["basic"])
        tree.append(out["tree"])
        cube.append(out["cube"])
    return Fig10Result(
        tuple(noises), "noise", basic, tree, cube,
        title="Figure 10(a) — simulation: RMSE vs noise (15-node generator)",
    )


def run_fig10b(
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    noise: float = 0.5,
    n_datasets: int = 3,
    n_items: int = 400,
    n_folds: int = 5,
    seed: int = 0,
) -> Fig10Result:
    basic, tree, cube = [], [], []
    for nodes in node_counts:
        out = _average_over_datasets(
            n_datasets, n_items, nodes, noise, n_folds, seed
        )
        basic.append(out["basic"])
        tree.append(out["tree"])
        cube.append(out["cube"])
    return Fig10Result(
        tuple(node_counts), "n_nodes", basic, tree, cube,
        title="Figure 10(b) — simulation: RMSE vs generator complexity (noise 0.5)",
    )
