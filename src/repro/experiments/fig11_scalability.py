"""Figure 11: efficiency and scalability of the construction algorithms.

(a) With every training-data request served from disk (no caching), the
single-scan cube, optimized cube and RF tree beat the naive cube/tree by a
growing margin as the entire training data grows.
(b) Single-scan vs optimized cube runtime grows linearly in the number of
examples, with the optimized cube ahead.
(c) RF tree runtime grows linearly in the number of examples (it scans once
per level, vs once total for the cubes — the paper's noted gap).
(d) Execution-layer ablation (this reproduction's addition): per-pair serial
solves vs one batched solve per lattice level in the optimized cube, and
serial vs multi-worker basic-search evaluation.  Timings are journalled to
``BENCH_figures.json`` so the repo accumulates a trajectory.

Sizes are scaled to laptop budgets (the paper ran up to 10 M examples on a
2006 Pentium IV); the *linearity in the swept axis* and the algorithm
ordering are the reproduced claims.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.core import BasicBellwetherSearch, BellwetherCubeBuilder, BellwetherTreeBuilder
from repro.datasets import make_scalability, write_scalability
from repro.exceptions import ConfigError
from repro.exec import ParallelConfig
from repro.incremental import build_cube_tables
from repro.obs.bench import BenchJournal
from repro.obs.catalog import STORE_FULL_SCANS
from repro.obs.metrics import get_registry
from repro.storage import DiskStore
from repro.verify import assert_same_cube

from .tables import render_series


@dataclass
class ScalingResult:
    xs: tuple            # examples in the entire training data
    x_name: str
    series: dict[str, list[float]]  # algorithm -> seconds
    title: str

    def render(self) -> str:
        return render_series(self.title, self.x_name, self.xs, self.series)


def _best_of(fn, repeats: int = 2) -> float:
    """Minimum wall time over repeats — robust to transient machine load."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _cube_seconds(ds, store, method: str, min_subset_size: int = 50) -> float:
    builder = BellwetherCubeBuilder(
        ds.task, store, ds.hierarchies, min_subset_size=min_subset_size
    )
    return _best_of(lambda: builder.build(method=method))


def _tree_seconds(ds, store, method: str, **kwargs) -> float:
    builder = BellwetherTreeBuilder(
        ds.task,
        store,
        split_attrs=ds.task.item_feature_attrs,
        min_items=kwargs.pop("min_items", 100),
        max_depth=kwargs.pop("max_depth", 3),
        max_numeric_splits=kwargs.pop("max_numeric_splits", 4),
    )
    return _best_of(lambda: builder.build(method=method))


def run_fig11a(
    region_counts: tuple[int, ...] = (6, 10, 14),
    n_items: int = 400,
    seed: int = 0,
    scratch_dir: str | Path = "/tmp/repro_fig11a",
) -> ScalingResult:
    """Disk-resident comparison: naive vs scan-oriented algorithms."""
    series: dict[str, list[float]] = {
        "naive cube": [], "single-scan cube": [], "optimized cube": [],
        "naive tree": [], "RF tree": [],
    }
    xs = []
    for k, n_regions in enumerate(region_counts):
        ds = make_scalability(
            n_items=n_items, n_regions=n_regions, seed=seed,
            hierarchy_leaves=3,
        )
        disk = DiskStore.from_memory(
            Path(scratch_dir) / f"sz{n_regions}", ds.store
        )
        xs.append(ds.n_examples_total)
        series["naive cube"].append(_cube_seconds(ds, disk, "naive", min_subset_size=40))
        series["single-scan cube"].append(
            _cube_seconds(ds, disk, "single_scan", min_subset_size=40)
        )
        series["optimized cube"].append(
            _cube_seconds(ds, disk, "optimized", min_subset_size=40)
        )
        series["naive tree"].append(_tree_seconds(ds, disk, "naive"))
        series["RF tree"].append(_tree_seconds(ds, disk, "rf"))
    return ScalingResult(
        tuple(xs), "examples",
        series,
        title="Figure 11(a) — disk-resident: naive vs scan-oriented (seconds)",
    )


def run_fig11b(
    region_counts: tuple[int, ...] = (16, 32, 48, 64),
    n_items: int = 1_500,
    seed: int = 0,
) -> ScalingResult:
    """Cube algorithms scale linearly in the entire training data."""
    series: dict[str, list[float]] = {"single-scan cube": [], "optimized cube": []}
    xs = []
    for n_regions in region_counts:
        ds = make_scalability(
            n_items=n_items, n_regions=n_regions, seed=seed, hierarchy_leaves=3
        )
        xs.append(ds.n_examples_total)
        series["single-scan cube"].append(
            _cube_seconds(ds, ds.store, "single_scan", min_subset_size=50)
        )
        series["optimized cube"].append(
            _cube_seconds(ds, ds.store, "optimized", min_subset_size=50)
        )
    return ScalingResult(
        tuple(xs), "examples", series,
        title="Figure 11(b) — cube scalability in examples (seconds)",
    )


def run_fig11c(
    region_counts: tuple[int, ...] = (16, 32, 48, 64),
    n_items: int = 1_500,
    seed: int = 0,
) -> ScalingResult:
    """The RF tree also scales linearly (one scan per level)."""
    series: dict[str, list[float]] = {"RF tree": []}
    xs = []
    for n_regions in region_counts:
        ds = make_scalability(
            n_items=n_items, n_regions=n_regions, seed=seed, hierarchy_leaves=3
        )
        xs.append(ds.n_examples_total)
        series["RF tree"].append(_tree_seconds(ds, ds.store, "rf"))
    return ScalingResult(
        tuple(xs), "examples", series,
        title="Figure 11(c) — RF tree scalability in examples (seconds)",
    )


def run_fig11d(
    region_counts: tuple[int, ...] = (16, 32, 48),
    n_items: int = 1_500,
    workers: int = 4,
    seed: int = 0,
    journal_path: str | Path | None = "BENCH_figures.json",
) -> ScalingResult:
    """Execution-layer ablation: serial vs batched solves vs worker fan-out.

    Compares the optimized cube with per-pair serial solves
    (``method="optimized_serial"``) against the batched kernel
    (one ``np.linalg.solve`` per lattice level), and the basic search's
    region evaluation serially vs fanned over ``workers``.  All variants
    produce bit-identical bellwethers; only wall-clock differs.  Each point
    is appended to ``journal_path`` (pass ``None`` to skip journalling).
    """
    journal = (
        BenchJournal(journal_path, context={"figure": "fig11d", "workers": workers})
        if journal_path is not None
        else None
    )
    par = ParallelConfig(workers=workers)
    series: dict[str, list[float]] = {
        "optimized cube (serial solves)": [],
        "optimized cube (batched solves)": [],
        "basic search (serial)": [],
        f"basic search ({workers} workers)": [],
    }
    xs = []
    for n_regions in region_counts:
        ds = make_scalability(
            n_items=n_items, n_regions=n_regions, seed=seed, hierarchy_leaves=3
        )
        xs.append(ds.n_examples_total)

        def _search_seconds(cfg: ParallelConfig) -> float:
            # fresh search each run: evaluate_all caches its profile
            return _best_of(
                lambda: BasicBellwetherSearch(ds.task, ds.store).evaluate_all(
                    parallel=cfg
                )
            )

        points = {
            "optimized cube (serial solves)": _cube_seconds(
                ds, ds.store, "optimized_serial", min_subset_size=50
            ),
            "optimized cube (batched solves)": _cube_seconds(
                ds, ds.store, "optimized", min_subset_size=50
            ),
            "basic search (serial)": _search_seconds(ParallelConfig(workers=1)),
            f"basic search ({workers} workers)": _search_seconds(par),
        }
        for label, seconds in points.items():
            series[label].append(seconds)
            if journal is not None:
                journal.record(
                    f"fig11d.{label}",
                    seconds,
                    examples=ds.n_examples_total,
                    n_regions=n_regions,
                    workers=workers,
                )
    return ScalingResult(
        tuple(xs), "examples", series,
        title="Figure 11(d) — execution layer: serial vs batched vs parallel (seconds)",
    )


def run_fig11f(
    backends: tuple[str, ...] = ("npz", "columnar"),
    n_items: int = 2_500,
    n_regions: int = 4_032,
    seed: int = 0,
    min_subset_size: int = 50,
    scratch_dir: str | Path = "/tmp/repro_fig11f",
    journal_path: str | Path | None = "BENCH_figures.json",
) -> ScalingResult:
    """Out-of-core storage backends and materialized cube tables at 10M rows.

    The paper's largest Figure 11 runs hit 10M examples — far past what the
    in-memory generator can hold.  This figure streams the entire training
    data to disk with :func:`~repro.datasets.write_scalability` (peak memory is
    one region block), then times, per backend:

    * ``generate`` — streaming dataset creation;
    * ``cold optimized cube`` — ``build("optimized")``, one full fact scan;
    * ``table build`` — :func:`~repro.incremental.build_cube_tables` from
      scratch (scan + persist the per-level suffstats tables);
    * ``warm build`` — ``build_cube_tables(skip_existing=True)`` hitting the
      persisted tables plus ``build_from_tables``; asserted to read **zero**
      facts and to reproduce the cold cube bit-for-bit.

    Every point is journalled under ``fig11f.<backend>.<stage>`` (pass
    ``journal_path=None`` to skip).  The reproduced claim: the warm table
    path is an order of magnitude faster than any scratch build because it
    replays Theorem 1 aggregates instead of rescanning facts.
    """
    for backend in backends:
        if backend not in ("npz", "columnar"):
            raise ConfigError(
                f"unknown fig11f backend {backend!r}; use 'npz' or 'columnar'"
            )
    journal = (
        BenchJournal(journal_path, context={"figure": "fig11f", "seed": seed})
        if journal_path is not None
        else None
    )
    full_scans = get_registry().counter(STORE_FULL_SCANS)
    stages = ("generate", "cold optimized cube", "table build", "warm build")
    series: dict[str, list[float]] = {stage: [] for stage in stages}
    examples = []
    for backend in backends:
        base = Path(scratch_dir) / backend
        start = time.perf_counter()
        ds = write_scalability(
            base / "store",
            n_items=n_items,
            n_regions=n_regions,
            seed=seed,
            backend=backend,
        )
        t_generate = time.perf_counter() - start
        examples.append(ds.n_examples_total)

        builder = BellwetherCubeBuilder(
            ds.task, ds.store, ds.hierarchies, min_subset_size=min_subset_size
        )
        start = time.perf_counter()
        cold = builder.build(method="optimized")
        t_cold = time.perf_counter() - start

        start = time.perf_counter()
        build_cube_tables(builder, base / "tables", skip_existing=False)
        t_tables = time.perf_counter() - start

        scans_before = full_scans.value
        start = time.perf_counter()
        tables = build_cube_tables(builder, base / "tables", skip_existing=True)
        warm = builder.build_from_tables(tables)
        t_warm = time.perf_counter() - start
        if full_scans.value != scans_before:
            raise ConfigError(
                "fig11f warm build scanned the fact store; the persisted "
                "cube tables should have served it"
            )
        assert_same_cube(cold, warm)

        points = dict(zip(stages, (t_generate, t_cold, t_tables, t_warm)))
        for stage, seconds in points.items():
            series[stage].append(seconds)
            if journal is not None:
                journal.record(
                    f"fig11f.{backend}.{_FIG11F_STAGE_KEYS[stage]}",
                    seconds,
                    examples=ds.n_examples_total,
                    n_regions=n_regions,
                    n_items=n_items,
                    backend=backend,
                )
    return ScalingResult(
        tuple(backends), "backend", series,
        title=(
            "Figure 11(f) — out-of-core backends & materialized cube tables "
            f"({examples[0]:,} examples, seconds)"
        ),
    )


_FIG11F_STAGE_KEYS = {
    "generate": "generate",
    "cold optimized cube": "cold_build",
    "table build": "table_build",
    "warm build": "warm_build",
}
