"""Figure 12: cost drivers of the optimized cube and the RF tree.

(a) Optimized-cube runtime is linear in the number of *significant cube
subsets* (swept via item-hierarchy fanout).
(b) RF-tree runtime is linear in the number of *item-table features* (each
numeric feature contributes split candidates evaluated per region block).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BellwetherCubeBuilder, BellwetherTreeBuilder
from repro.datasets import make_scalability

from .tables import render_grid


@dataclass
class CharacteristicResult:
    rows: list[tuple]  # (swept value, measured x, seconds)
    header: tuple[str, str, str]
    title: str

    def render(self) -> str:
        return render_grid(self.title, self.header, self.rows)

    @property
    def xs(self) -> list:
        return [r[1] for r in self.rows]

    @property
    def seconds(self) -> list[float]:
        return [r[2] for r in self.rows]


def run_fig12a(
    leaf_counts: tuple[int, ...] = (2, 4, 6, 8),
    n_items: int = 1_200,
    n_regions: int = 24,
    seed: int = 0,
) -> CharacteristicResult:
    rows = []
    for leaves in leaf_counts:
        ds = make_scalability(
            n_items=n_items,
            n_regions=n_regions,
            hierarchy_leaves=leaves,
            seed=seed,
        )
        builder = BellwetherCubeBuilder(
            ds.task, ds.store, ds.hierarchies, min_subset_size=1
        )
        n_subsets = len(builder.significant_subsets)
        from .fig11_scalability import _best_of

        rows.append((leaves, n_subsets, _best_of(lambda: builder.build(method="optimized"))))
    return CharacteristicResult(
        rows,
        ("hierarchy_leaves", "n_significant_subsets", "seconds"),
        title="Figure 12(a) — optimized cube vs number of significant subsets",
    )


def run_fig12b(
    feature_counts: tuple[int, ...] = (2, 4, 8, 12),
    n_items: int = 1_200,
    n_regions: int = 16,
    seed: int = 0,
) -> CharacteristicResult:
    rows = []
    for n_features in feature_counts:
        ds = make_scalability(
            n_items=n_items,
            n_regions=n_regions,
            n_numeric_features=n_features,
            seed=seed,
        )
        builder = BellwetherTreeBuilder(
            ds.task,
            ds.store,
            split_attrs=ds.task.item_feature_attrs,
            min_items=150,
            max_depth=2,
            max_numeric_splits=4,
        )
        from .fig11_scalability import _best_of

        rows.append((n_features, n_features, _best_of(lambda: builder.build(method="rf"))))
    return CharacteristicResult(
        rows,
        ("n_item_features", "n_item_features", "seconds"),
        title="Figure 12(b) — RF tree vs number of item-table features",
    )
