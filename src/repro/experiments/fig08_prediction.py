"""Figure 8: item-centric bellwether prediction on the mail-order dataset.

10-fold cross-validation prediction RMSE of the basic, tree and cube methods
at several budgets.  With category-dependent planted regions, tree and cube
improve on the basic search in the low-budget band (the paper reports
improvement from budget 10 to 30, shrinking after).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import build_store, compare_methods
from repro.datasets import RetailDataset, make_mailorder
from repro.ml import TrainingSetEstimator
from repro.storage import FilteredStore

from .tables import render_series

DEFAULT_BUDGETS = (10.0, 20.0, 30.0, 50.0, 70.0)


@dataclass
class Fig8Result:
    budgets: tuple[float, ...]
    basic: list[float]
    tree: list[float]
    cube: list[float]

    def render(self) -> str:
        return render_series(
            "Figure 8 — bellwether-based prediction on mail order (RMSE)",
            "budget",
            self.budgets,
            {"basic": self.basic, "tree": self.tree, "cube": self.cube},
        )


def run_fig8(
    n_items: int = 120,
    seed: int = 3,
    budgets: tuple[float, ...] = DEFAULT_BUDGETS,
    n_folds: int = 5,
    dataset: RetailDataset | None = None,
) -> Fig8Result:
    ds = dataset or make_mailorder(
        n_items=n_items,
        seed=seed,
        heterogeneous=True,
        error_estimator=TrainingSetEstimator(),
    )
    store, costs, coverage = build_store(ds.task)
    basic, tree, cube = [], [], []
    for budget in budgets:
        feasible = [r for r in store.regions() if costs[r] <= budget]
        view = FilteredStore(store, feasible)
        out = compare_methods(
            ds.task,
            view,
            hierarchies=ds.hierarchies,
            split_attrs=("category", "rdexpense"),
            n_folds=n_folds,
            seed=seed,
            tree_kwargs=dict(min_items=20, max_depth=3, max_numeric_splits=4),
            cube_kwargs=dict(min_subset_size=10),
        )
        basic.append(out["basic"])
        tree.append(out["tree"])
        cube.append(out["cube"])
    return Fig8Result(tuple(budgets), basic, tree, cube)
