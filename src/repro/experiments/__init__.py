"""Experiment drivers: one module per figure of the paper's evaluation."""

from .fig07_mailorder import Fig7Result, run_fig7
from .fig08_prediction import Fig8Result, run_fig8
from .fig09_bookstore import Fig9Result, run_fig9
from .fig10_simulation import Fig10Result, run_fig10a, run_fig10b
from .fig11_scalability import (
    ScalingResult,
    run_fig11a,
    run_fig11b,
    run_fig11c,
    run_fig11d,
    run_fig11f,
)
from .fig11e_incremental import run_fig11e
from .fig12_characteristics import CharacteristicResult, run_fig12a, run_fig12b
from .fig13_serve import Fig13Result, run_fig13
from .fig14_aqp import Fig14Result, run_fig14
from .tables import render_grid, render_series

__all__ = [
    "CharacteristicResult",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Fig13Result",
    "Fig14Result",
    "ScalingResult",
    "render_grid",
    "render_series",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10a",
    "run_fig10b",
    "run_fig11a",
    "run_fig11b",
    "run_fig11c",
    "run_fig11d",
    "run_fig11e",
    "run_fig11f",
    "run_fig12a",
    "run_fig12b",
    "run_fig13",
    "run_fig14",
]
