"""Plain-text rendering of experiment series (the repo's "figures")."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def render_grid(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence],
) -> str:
    """A fixed-width grid with a title line, matching the bench output style."""
    text_rows = [[_fmt(c) for c in row] for row in rows]
    all_rows = [list(header)] + text_rows
    widths = [max(len(r[j]) for r in all_rows) for j in range(len(header))]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-" * len(lines[-1]))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_name: str,
    xs: Sequence,
    series: Mapping[str, Sequence],
) -> str:
    """Columns: x plus one column per named series."""
    header = [x_name, *series.keys()]
    rows = [
        [x, *[values[i] for values in series.values()]]
        for i, x in enumerate(xs)
    ]
    return render_grid(title, header, rows)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
