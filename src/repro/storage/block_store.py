"""Training-data stores: per-region training sets, in memory or on disk.

The *entire training data* (Section 5.2) is the collection of training sets
for all feasible regions.  Bellwether algorithms access it through one of two
patterns:

* ``read(region)`` — fetch one region's block (what the naive algorithms do
  per node/split/subset), and
* ``scan()`` — stream every region's block once (what the RF tree does per
  level and the cube algorithms do once).

Both stores count these accesses via :class:`~repro.storage.stats.IOStats`.
:class:`DiskStore` spills blocks to ``.npz`` files, giving the "every request
is a disk read" regime of Section 7.4.1 for the Figure 11(a) comparison.

Stores are *versioned*: contents start at version 0 and every
:meth:`TrainingDataStore.apply_delta` (appended / retracted training rows —
see :mod:`repro.storage.delta`) bumps the version and appends an
:class:`~repro.storage.delta.AppliedDelta` record to the store's changelog.
Callers that cached derived state (per-region error profiles, suffstats
stacks) ask :meth:`TrainingDataStore.deltas_since` what moved and refresh
only that; a changelog gap (e.g. a reopened :class:`DiskStore`, whose log is
not persisted) raises :class:`StorageError`, telling the caller to rebuild
rather than silently serving stale numbers.
"""

from __future__ import annotations

import os
import pickle
import zipfile
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dimensions import Region
from repro.exceptions import ReproError
from repro.obs.trace import get_tracer

from .stats import IOStats

_TRACER = get_tracer()


class StorageError(ReproError):
    """A store was used inconsistently (unknown region, bad directory, ...)."""


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    A crash mid-write leaves either the old file or the new one, never a torn
    hybrid — the property both backends rely on for their manifests.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


@dataclass(frozen=True)
class RegionBlock:
    """The training set generated from one region.

    Attributes
    ----------
    item_ids:
        Item ID per training example (one example per item in the region).
    x:
        ``(n, p)`` regional feature matrix (item-table features included).
    y:
        ``(n,)`` target values.
    weights:
        Optional per-example weights for weighted least squares
        (Section 6.4's WLS extension); ``None`` means unit weights.
    """

    item_ids: np.ndarray
    x: np.ndarray
    y: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.item_ids)
        if self.x.shape[0] != n or self.y.shape != (n,):
            raise StorageError(
                f"inconsistent block: ids={n}, x={self.x.shape}, y={self.y.shape}"
            )
        if self.weights is not None and self.weights.shape != (n,):
            raise StorageError(
                f"inconsistent block weights: {self.weights.shape} for {n} rows"
            )

    @property
    def n_examples(self) -> int:
        return len(self.item_ids)

    @property
    def n_features(self) -> int:
        return self.x.shape[1]

    @property
    def nbytes(self) -> int:
        extra = self.weights.nbytes if self.weights is not None else 0
        return self.item_ids.nbytes + self.x.nbytes + self.y.nbytes + extra

    def restrict_to(self, item_ids: np.ndarray) -> "RegionBlock":
        """The sub-block for a subset of items (S_r in the paper)."""
        mask = np.isin(self.item_ids, item_ids)
        return RegionBlock(
            self.item_ids[mask],
            self.x[mask],
            self.y[mask],
            None if self.weights is None else self.weights[mask],
        )


class TrainingDataStore:
    """Interface shared by the in-memory and on-disk stores."""

    feature_names: tuple[str, ...]
    stats: IOStats
    #: Monotone content version; bumped by every applied delta.
    version: int = 0
    #: Versions ``<= _log_floor`` are not in the in-memory changelog.
    _log_floor: int = 0

    def regions(self) -> list[Region]:
        raise NotImplementedError

    def read(self, region: Region) -> RegionBlock:
        raise NotImplementedError

    # ---------------------------------------------------------- delta contract

    def apply_delta(self, delta) -> int:
        """Fold a :class:`~repro.storage.delta.StoreDelta` in; new version."""
        raise StorageError(f"{type(self).__name__} does not accept deltas")

    def deltas_since(self, version: int) -> list:
        """Changelog entries applied after ``version``, oldest first.

        Raises :class:`StorageError` when that history is unavailable (the
        caller's snapshot predates this store's in-memory log, or claims a
        version the store never reached) — the signal to rebuild from a
        full scan instead of trusting stale derived state.
        """
        if version == self.version:
            return []
        if version > self.version:
            raise StorageError(
                f"version {version} is ahead of the store (at {self.version})"
            )
        if version < self._log_floor:
            raise StorageError(
                f"delta history before version {self._log_floor} is gone; "
                "rebuild from a full scan"
            )
        changelog = getattr(self, "_changelog", [])
        return [entry for entry in changelog if entry.version > version]

    def _apply_delta_to_blocks(self, delta, blocks: dict[Region, RegionBlock]):
        """Shared apply path: mutate ``blocks`` in place, log, bump version.

        Returns the :class:`~repro.storage.delta.AppliedDelta` recorded.
        """
        from .delta import AppliedDelta, apply_block_delta

        removed: dict[Region, RegionBlock] = {}
        new_regions: list[Region] = []
        for region in delta.drop_regions:
            try:
                removed[region] = blocks.pop(region)
            except KeyError:
                raise StorageError(f"cannot drop unknown region {region}") from None
        for region, bd in delta.blocks.items():
            old = blocks.get(region)
            if old is None:
                new_regions.append(region)
            new, gone = apply_block_delta(old, bd, len(self.feature_names))
            blocks[region] = new
            if gone is not None and gone.n_examples:
                removed[region] = gone
        self.version += 1
        applied = AppliedDelta(
            version=self.version,
            delta=delta,
            removed=removed,
            new_regions=tuple(new_regions),
        )
        if not hasattr(self, "_changelog"):
            self._changelog = []
        self._changelog.append(applied)
        return applied

    def scan(self) -> Iterator[tuple[Region, RegionBlock]]:
        """One pass over every region's block (counted as one full scan).

        The span covers the whole consumption of the generator: work the
        caller does between blocks is attributed to the scan, which is the
        paper's accounting (a scan's cost includes processing its blocks).
        """
        regions = self.regions()
        with _TRACER.span(
            "store.scan", store=type(self).__name__, regions=len(regions)
        ):
            self.stats.record_full_scan()
            for region in regions:
                yield region, self._fetch(region)

    def _fetch(self, region: Region) -> RegionBlock:
        raise NotImplementedError

    @property
    def n_examples_total(self) -> int:
        """Total training rows across every region.

        This fallback fetches each block just to count rows; concrete stores
        override it with manifest/metadata row counts so sizing a workload
        never costs a full scan's worth of I/O.
        """
        return sum(self._fetch(r).n_examples for r in self.regions())


class MemoryStore(TrainingDataStore):
    """All region blocks held in RAM (counts logical reads all the same)."""

    def __init__(
        self,
        blocks: Mapping[Region, RegionBlock],
        feature_names: Sequence[str],
    ):
        self._blocks = dict(blocks)
        self.feature_names = tuple(feature_names)
        self.stats = IOStats()
        self.version = 0
        self._changelog: list = []
        for block in self._blocks.values():
            if block.n_features != len(self.feature_names):
                raise StorageError(
                    f"block has {block.n_features} features, "
                    f"store declares {len(self.feature_names)}"
                )

    def regions(self) -> list[Region]:
        return list(self._blocks)

    def apply_delta(self, delta) -> int:
        """Append/retract rows (and add/drop regions); returns new version.

        New regions land after the existing ones in :meth:`regions` order,
        exactly where a regenerated store would also scan them last.
        """
        self._apply_delta_to_blocks(delta, self._blocks)
        return self.version

    def _fetch(self, region: Region) -> RegionBlock:
        try:
            return self._blocks[region]
        except KeyError:
            raise StorageError(f"unknown region {region}") from None

    def read(self, region: Region) -> RegionBlock:
        block = self._fetch(region)
        self.stats.record_region_read(block.nbytes)
        return block

    @property
    def n_examples_total(self) -> int:
        return sum(block.n_examples for block in self._blocks.values())


class FilteredStore(TrainingDataStore):
    """A view of another store restricted to a subset of regions.

    Used for budget sweeps: one materialized store serves every budget, with
    a cheap per-budget view of the feasible regions.  I/O counts accrue to
    this view's own stats.
    """

    def __init__(self, inner: TrainingDataStore, regions: Sequence[Region]):
        known = set(inner.regions())
        missing = [r for r in regions if r not in known]
        if missing:
            raise StorageError(f"regions not in the underlying store: {missing[:3]}")
        self._inner = inner
        self._regions = list(regions)
        self.feature_names = inner.feature_names
        self.stats = IOStats()

    def regions(self) -> list[Region]:
        return list(self._regions)

    def _fetch(self, region: Region) -> RegionBlock:
        if region not in set(self._regions):
            raise StorageError(f"region {region} filtered out of this view")
        return self._inner._fetch(region)

    def read(self, region: Region) -> RegionBlock:
        block = self._fetch(region)
        self.stats.record_region_read(block.nbytes)
        return block


class DiskStore(TrainingDataStore):
    """Region blocks spilled to ``.npz`` files under a directory.

    A pickle manifest maps regions to file names.  Every ``read``/``scan``
    genuinely hits the filesystem — nothing is cached — so I/O counts match
    physical behaviour.
    """

    _MANIFEST = "manifest.pkl"

    def __init__(self, directory: str | Path):
        self._dir = Path(directory)
        manifest_path = self._dir / self._MANIFEST
        if not manifest_path.exists():
            raise StorageError(f"{self._dir} has no manifest; use DiskStore.create")
        try:
            with manifest_path.open("rb") as f:
                manifest = pickle.load(f)
            self._files: dict[Region, str] = manifest["files"]
            self.feature_names = tuple(manifest["feature_names"])
            # Manifests written before versioning count as version 0.
            self.version = int(manifest.get("version", 0))
            # Manifests written before row counts fall back to fetching
            # blocks in n_examples_total (None, not {}).
            self._rows: dict[Region, int] | None = manifest.get("rows")
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(
                f"corrupt manifest {manifest_path}: {exc!r}"
            ) from exc
        self.stats = IOStats()
        # The persisted version survives reopening, but the delta log does
        # not: deltas_since(anything older) must fail loudly.
        self._log_floor = self.version
        self._changelog: list = []

    @staticmethod
    def _write_block(path: Path, block: RegionBlock) -> None:
        arrays = {"item_ids": block.item_ids, "x": block.x, "y": block.y}
        if block.weights is not None:
            arrays["weights"] = block.weights
        # Through a file handle: a bare path would get ".npz" appended,
        # and writing the temp then os.replace keeps a crashed or racing
        # apply_delta from exposing a torn block to readers.
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, path)

    def _write_manifest(self) -> None:
        # Atomic: a crash between two block rewrites of apply_delta can leave
        # the old manifest or the new one, but never a torn pickle.
        _atomic_write(
            self._dir / self._MANIFEST,
            pickle.dumps(
                {
                    "files": self._files,
                    "feature_names": self.feature_names,
                    "version": self.version,
                    "rows": self._rows,
                }
            ),
        )

    @classmethod
    def create(
        cls,
        directory: str | Path,
        blocks: Mapping[Region, RegionBlock],
        feature_names: Sequence[str],
        backend: str = "npz",
    ) -> TrainingDataStore:
        """Write all blocks and the manifest, then open the store.

        ``backend="npz"`` (default) spills one ``.npz`` per region;
        ``backend="columnar"`` delegates to
        :class:`repro.storage.columnar.ColumnarStore` (same directory layout
        contract, different file format — see :func:`open_store`).
        """
        if backend == "columnar":
            from .columnar import ColumnarStore

            return ColumnarStore.create(directory, blocks, feature_names)
        if backend != "npz":
            raise StorageError(f"unknown storage backend {backend!r}")
        with cls.writer(directory, feature_names) as w:
            for region, block in blocks.items():
                w.add(region, block)
        return w.store

    @classmethod
    def writer(
        cls, directory: str | Path, feature_names: Sequence[str]
    ) -> "BlockWriter":
        """Streaming creation: blocks added one at a time, manifest last.

        Lets out-of-core generators build stores far larger than RAM — each
        block is written and dropped before the next is generated.
        """
        return BlockWriter(directory, feature_names)

    def apply_delta(self, delta) -> int:
        """Apply a delta, rewriting touched ``.npz`` blocks and the manifest.

        The bumped version is persisted in the manifest, so a cache written
        against an older version is detectably stale after reopening.
        """
        touched: dict[Region, RegionBlock] = {}
        for region in tuple(delta.blocks) + tuple(delta.drop_regions):
            if region in self._files:
                touched[region] = self._fetch(region)
        self._apply_delta_to_blocks(delta, touched)
        for region in delta.drop_regions:
            (self._dir / self._files.pop(region)).unlink(missing_ok=True)
            if self._rows is not None:
                self._rows.pop(region, None)
        next_idx = 1 + max(
            (int(name[len("region_"):-len(".npz")]) for name in self._files.values()),
            default=-1,
        )
        for region in delta.blocks:
            name = self._files.get(region)
            if name is None:
                name = f"region_{next_idx:06d}.npz"
                next_idx += 1
                self._files[region] = name
            self._write_block(self._dir / name, touched[region])
            if self._rows is not None:
                self._rows[region] = touched[region].n_examples
        self._write_manifest()
        return self.version

    @classmethod
    def from_memory(
        cls, directory: str | Path, store: MemoryStore, backend: str = "npz"
    ) -> TrainingDataStore:
        return cls.create(
            directory,
            {r: store._fetch(r) for r in store.regions()},
            store.feature_names,
            backend=backend,
        )

    def regions(self) -> list[Region]:
        return list(self._files)

    def _fetch(self, region: Region) -> RegionBlock:
        try:
            name = self._files[region]
        except KeyError:
            raise StorageError(f"unknown region {region}") from None
        # Truncated, corrupt, or missing block files must surface as
        # StorageError — never a raw OSError/BadZipFile, and never silently
        # wrong numbers.
        try:
            with np.load(self._dir / name) as data:
                weights = data["weights"] if "weights" in data.files else None
                return RegionBlock(data["item_ids"], data["x"], data["y"], weights)
        except StorageError:
            raise
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
            raise StorageError(
                f"unreadable block {name} for region {region}: {exc!r}"
            ) from exc

    def read(self, region: Region) -> RegionBlock:
        block = self._fetch(region)
        self.stats.record_region_read(block.nbytes)
        return block

    @property
    def n_examples_total(self) -> int:
        if self._rows is not None:
            return sum(self._rows.values())
        # Pre-row-count manifest: the slow fallback is the only honest answer.
        return super().n_examples_total


class BlockWriter:
    """Streaming :class:`DiskStore` creation (one block in RAM at a time).

    Use as a context manager; the manifest is written (atomically) only on a
    clean exit, so an interrupted build never looks like a complete store::

        with DiskStore.writer(directory, feature_names) as w:
            for region, block in generate():
                w.add(region, block)
        store = w.store
    """

    def __init__(self, directory: str | Path, feature_names: Sequence[str]):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.feature_names = tuple(feature_names)
        self._files: dict[Region, str] = {}
        self._rows: dict[Region, int] = {}
        self.store: DiskStore | None = None

    def add(self, region: Region, block: RegionBlock) -> None:
        if self.store is not None:
            raise StorageError("writer already finished")
        if region in self._files:
            raise StorageError(f"duplicate region {region}")
        if block.n_features != len(self.feature_names):
            raise StorageError(
                f"block has {block.n_features} features, "
                f"writer declares {len(self.feature_names)}"
            )
        name = f"region_{len(self._files):06d}.npz"
        DiskStore._write_block(self._dir / name, block)
        self._files[region] = name
        self._rows[region] = block.n_examples

    def finish(self) -> DiskStore:
        if self.store is None:
            _atomic_write(
                self._dir / DiskStore._MANIFEST,
                pickle.dumps(
                    {
                        "files": self._files,
                        "feature_names": self.feature_names,
                        "version": 0,
                        "rows": self._rows,
                    }
                ),
            )
            self.store = DiskStore(self._dir)
        return self.store

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()


def open_store(directory: str | Path) -> TrainingDataStore:
    """Open an on-disk store, sniffing which backend wrote it.

    A JSON manifest means :class:`repro.storage.columnar.ColumnarStore`; a
    pickle manifest means :class:`DiskStore`.
    """
    directory = Path(directory)
    from .columnar import ColumnarStore

    if (directory / ColumnarStore.MANIFEST).exists():
        return ColumnarStore(directory)
    if (directory / DiskStore._MANIFEST).exists():
        return DiskStore(directory)
    raise StorageError(f"{directory} holds no npz or columnar manifest")
