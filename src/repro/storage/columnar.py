"""Columnar on-disk training-data store (the out-of-core backend).

Where :class:`~repro.storage.block_store.DiskStore` spills one ``.npz``
archive per region, this backend writes one *raw column file* per region —
``item_ids``, ``y``, each feature of ``x`` and (optionally) ``weights``
stored back-to-back as contiguous typed buffers — plus a single JSON
manifest (``manifest.json``) carrying the schema, the store version, and
per-column byte offsets.  Reads go through ``np.memmap`` windows, so

* :meth:`ColumnarStore.read` / :meth:`ColumnarStore._fetch` materialize one
  region exactly like the npz backend (bit-for-bit identical arrays), and
* :meth:`ColumnarStore.scan_chunks` streams a full scan in bounded-memory
  sub-blocks of at most ``chunk_rows`` rows without ever holding a whole
  region, which is what lets fig11 run the paper's 10M-row configurations
  out-of-core.

Accounting stays truthful: ``read`` counts a region read, a (chunked or
whole-block) scan counts one full scan, and chunks additionally land on the
``store.columnar.chunks_read`` / ``store.bytes_read`` counters.  Writing is
streamed through :class:`ColumnarWriter` (one block in RAM at a time) and
counted on ``store.columnar.bytes_written`` / ``regions_written``.

An optional Parquet codec (``codec="parquet"``) delegates the per-region
files to ``pyarrow.parquet``; it is gated behind the ``repro[columnar]``
extra and raises :class:`~repro.exceptions.ConfigError` when pyarrow is not
installed — the raw codec has no dependencies beyond numpy.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterator, Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.dimensions import Region
from repro.dimensions.interval import Interval
from repro.exceptions import ConfigError
from repro.obs.catalog import (
    STORE_COLUMNAR_BYTES_WRITTEN,
    STORE_COLUMNAR_REGIONS_WRITTEN,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

from .block_store import (
    RegionBlock,
    StorageError,
    TrainingDataStore,
    _atomic_write,
)
from .stats import IOStats

_TRACER = get_tracer()
_BYTES_WRITTEN = get_registry().counter(STORE_COLUMNAR_BYTES_WRITTEN)
_REGIONS_WRITTEN = get_registry().counter(STORE_COLUMNAR_REGIONS_WRITTEN)

_FORMAT = "repro-columnar"
_LAYOUT_VERSION = 1
_CODECS = ("raw", "parquet")

#: Default bounded-memory chunk size for :meth:`ColumnarStore.scan_chunks`.
DEFAULT_CHUNK_ROWS = 65_536


# ----------------------------------------------------------- region JSON codec


def region_to_json(region: Region) -> list:
    """A JSON-stable encoding of a region (strings plain, intervals tagged)."""
    return [
        v if isinstance(v, str) else {"interval": [v.start, v.end]}
        for v in region.values
    ]


def region_from_json(values: list) -> Region:
    decoded = []
    for v in values:
        if isinstance(v, str):
            decoded.append(v)
        elif isinstance(v, dict) and "interval" in v:
            start, end = v["interval"]
            decoded.append(Interval(int(start), int(end)))
        else:
            raise StorageError(f"unintelligible region value {v!r} in manifest")
    return Region(tuple(decoded))


# ------------------------------------------------------------------ raw codec


def _encode_columns(block: RegionBlock) -> dict[str, np.ndarray]:
    """The block as named 1-D columns, in the on-disk layout order."""
    cols: dict[str, np.ndarray] = {
        "item_ids": np.ascontiguousarray(block.item_ids),
        "y": np.ascontiguousarray(block.y),
    }
    for j in range(block.n_features):
        cols[f"x{j}"] = np.ascontiguousarray(block.x[:, j])
    if block.weights is not None:
        cols["weights"] = np.ascontiguousarray(block.weights)
    for name, arr in cols.items():
        if arr.dtype.hasobject:
            raise StorageError(
                f"column {name!r} has object dtype; the columnar backend "
                "stores fixed-width typed buffers only"
            )
    return cols


def _write_raw(path: Path, cols: Mapping[str, np.ndarray]) -> tuple[int, dict]:
    """Write columns back-to-back; returns (total bytes, per-column meta)."""
    offset = 0
    meta: dict[str, dict] = {}
    # Temp file + os.replace: truncating the live file in place would tear
    # the memmap windows a concurrent reader holds over the old layout.
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as f:
        for name, arr in cols.items():
            payload = arr.tobytes()
            meta[name] = {"offset": offset, "dtype": arr.dtype.str}
            f.write(payload)
            offset += len(payload)
    os.replace(tmp, path)
    return offset, meta


def _raw_column(path: Path, rows: int, col_meta: Mapping) -> np.ndarray:
    """A read-only memmap window over one stored column."""
    dtype = np.dtype(col_meta["dtype"])
    if rows == 0:
        return np.empty(0, dtype=dtype)
    return np.memmap(
        path, mode="r", dtype=dtype, offset=int(col_meta["offset"]), shape=(rows,)
    )


# -------------------------------------------------------------- parquet codec


def _pyarrow_parquet():
    """The gated pyarrow.parquet module (``repro[columnar]`` extra)."""
    try:
        import pyarrow.parquet as pq
    except ImportError as exc:
        raise ConfigError(
            "the parquet codec needs pyarrow; install the repro[columnar] "
            "extra or use the dependency-free raw codec"
        ) from exc
    return pq


def _write_parquet(path: Path, cols: Mapping[str, np.ndarray]) -> tuple[int, dict]:
    pq = _pyarrow_parquet()
    import pyarrow as pa

    table = pa.table({name: pa.array(arr) for name, arr in cols.items()})
    tmp = path.with_name(path.name + ".tmp")
    pq.write_table(table, tmp)
    os.replace(tmp, path)
    # Offsets live in the parquet footer; the manifest records dtypes only.
    meta = {name: {"dtype": arr.dtype.str} for name, arr in cols.items()}
    return path.stat().st_size, meta


def _read_parquet(path: Path, col_meta: Mapping) -> dict[str, np.ndarray]:
    pq = _pyarrow_parquet()
    table = pq.read_table(path)
    out: dict[str, np.ndarray] = {}
    for name in col_meta:
        arr = table.column(name).to_numpy(zero_copy_only=False)
        out[name] = arr.astype(np.dtype(col_meta[name]["dtype"]), copy=False)
    return out


# ----------------------------------------------------------------- the store


class ColumnarStore(TrainingDataStore):
    """Per-region column files + a JSON manifest; memmap-backed reads.

    Directory layout::

        manifest.json          # schema, codec, version, per-column offsets
        region_000000.col      # raw codec: typed buffers back-to-back
        region_000001.col
        ...

    Open an existing directory with ``ColumnarStore(directory)`` (or
    :func:`repro.storage.open_store`, which sniffs the backend); build a new
    one with :meth:`create` (all blocks in RAM) or :meth:`writer` (streamed,
    one block at a time).
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: str | Path):
        self._dir = Path(directory)
        manifest_path = self._dir / self.MANIFEST
        if not manifest_path.exists():
            raise StorageError(
                f"{self._dir} has no columnar manifest; use ColumnarStore.create"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
            if manifest.get("format") != _FORMAT:
                raise StorageError(
                    f"{manifest_path} is not a {_FORMAT} manifest "
                    f"(format={manifest.get('format')!r})"
                )
            layout = int(manifest.get("layout_version", -1))
            if layout != _LAYOUT_VERSION:
                raise StorageError(
                    f"manifest layout v{layout} unsupported "
                    f"(this build reads v{_LAYOUT_VERSION})"
                )
            self._codec = str(manifest["codec"])
            if self._codec not in _CODECS:
                raise StorageError(f"unknown codec {self._codec!r} in manifest")
            self.feature_names = tuple(manifest["feature_names"])
            self.version = int(manifest["version"])
            self._meta: dict[Region, dict] = {}
            for entry in manifest["regions"]:
                region = region_from_json(entry["key"])
                self._meta[region] = {
                    "file": str(entry["file"]),
                    "rows": int(entry["rows"]),
                    "columns": dict(entry["columns"]),
                }
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(f"corrupt manifest {manifest_path}: {exc!r}") from exc
        self.stats = IOStats()
        # As with DiskStore: the version survives reopening, the delta log
        # does not, so deltas_since(anything older) fails loudly.
        self._log_floor = self.version
        self._changelog: list = []

    # -------------------------------------------------------------- creation

    @classmethod
    def create(
        cls,
        directory: str | Path,
        blocks: Mapping[Region, RegionBlock],
        feature_names: Sequence[str],
        codec: str = "raw",
    ) -> "ColumnarStore":
        with cls.writer(directory, feature_names, codec=codec) as w:
            for region, block in blocks.items():
                w.add(region, block)
        return w.store

    @classmethod
    def writer(
        cls,
        directory: str | Path,
        feature_names: Sequence[str],
        codec: str = "raw",
    ) -> "ColumnarWriter":
        return ColumnarWriter(directory, feature_names, codec=codec)

    # --------------------------------------------------------------- reading

    def regions(self) -> list[Region]:
        return list(self._meta)

    def _columns(self, region: Region, meta: Mapping) -> dict[str, np.ndarray]:
        """Every stored column of one region (memmaps under the raw codec)."""
        path = self._dir / meta["file"]
        try:
            if self._codec == "raw":
                return {
                    name: _raw_column(path, meta["rows"], col)
                    for name, col in meta["columns"].items()
                }
            return _read_parquet(path, meta["columns"])
        except (StorageError, ConfigError):
            raise
        except Exception as exc:
            raise StorageError(
                f"unreadable column file {meta['file']} for region {region}: {exc!r}"
            ) from exc

    @staticmethod
    def _assemble(
        cols: Mapping[str, np.ndarray], p: int, lo: int | None = None, hi: int | None = None
    ) -> RegionBlock:
        """Copy (a slice of) memmapped columns out into a normal block."""
        window = slice(lo, hi)
        item_ids = np.array(cols["item_ids"][window])
        y = np.array(cols["y"][window])
        if len(item_ids) == 0:
            x = np.empty((0, p), dtype=cols["x0"].dtype if p else np.float64)
        else:
            x = np.stack([np.array(cols[f"x{j}"][window]) for j in range(p)], axis=1)
        weights = np.array(cols["weights"][window]) if "weights" in cols else None
        return RegionBlock(item_ids, x, y, weights)

    def _fetch(self, region: Region) -> RegionBlock:
        try:
            meta = self._meta[region]
        except KeyError:
            raise StorageError(f"unknown region {region}") from None
        cols = self._columns(region, meta)
        try:
            return self._assemble(cols, len(self.feature_names))
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(
                f"unreadable column file {meta['file']} for region {region}: {exc!r}"
            ) from exc

    def read(self, region: Region) -> RegionBlock:
        block = self._fetch(region)
        self.stats.record_region_read(block.nbytes)
        return block

    def scan_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[tuple[Region, RegionBlock]]:
        """One full scan streamed as bounded-memory sub-blocks.

        Yields ``(region, chunk)`` pairs where each chunk holds at most
        ``chunk_rows`` consecutive rows of that region's block; a region
        spanning several chunks is yielded several times, in row order.
        Counts one full scan plus per-chunk bytes (``store.bytes_read`` and
        ``store.columnar.chunks_read``) — never whole-region materialization.
        """
        if chunk_rows < 1:
            raise ConfigError(f"chunk_rows must be >= 1, got {chunk_rows}")
        p = len(self.feature_names)
        with _TRACER.span(
            "store.scan",
            store=type(self).__name__,
            regions=len(self._meta),
            chunk_rows=chunk_rows,
        ):
            self.stats.record_full_scan()
            for region, meta in self._meta.items():
                cols = self._columns(region, meta)
                rows = meta["rows"]
                for lo in range(0, max(rows, 1), chunk_rows):
                    hi = min(lo + chunk_rows, rows)
                    chunk = self._assemble(cols, p, lo, hi)
                    self.stats.record_chunk_read(chunk.nbytes)
                    yield region, chunk

    @property
    def n_examples_total(self) -> int:
        return sum(meta["rows"] for meta in self._meta.values())

    # ---------------------------------------------------------------- deltas

    def _write_manifest(self) -> None:
        entries = [
            {
                "key": region_to_json(region),
                "file": meta["file"],
                "rows": meta["rows"],
                "columns": meta["columns"],
            }
            for region, meta in self._meta.items()
        ]
        payload = json.dumps(
            {
                "format": _FORMAT,
                "layout_version": _LAYOUT_VERSION,
                "codec": self._codec,
                "version": self.version,
                "feature_names": list(self.feature_names),
                "regions": entries,
            }
        ).encode()
        _atomic_write(self._dir / self.MANIFEST, payload)

    def _write_region(self, region: Region, block: RegionBlock, name: str) -> None:
        cols = _encode_columns(block)
        if self._codec == "raw":
            nbytes, col_meta = _write_raw(self._dir / name, cols)
        else:
            nbytes, col_meta = _write_parquet(self._dir / name, cols)
        self._meta[region] = {
            "file": name,
            "rows": block.n_examples,
            "columns": col_meta,
        }
        _BYTES_WRITTEN.inc(nbytes)

    def apply_delta(self, delta) -> int:
        """Apply a delta, rewriting touched column files and the manifest.

        Same semantics as the npz backend: retract-then-append, new regions
        scan last, the bumped version persisted (atomically) in the manifest.
        """
        touched: dict[Region, RegionBlock] = {}
        for region in tuple(delta.blocks) + tuple(delta.drop_regions):
            if region in self._meta:
                touched[region] = self._fetch(region)
        self._apply_delta_to_blocks(delta, touched)
        ext = ".col" if self._codec == "raw" else ".parquet"
        for region in delta.drop_regions:
            meta = self._meta.pop(region)
            (self._dir / meta["file"]).unlink(missing_ok=True)
        next_idx = 1 + max(
            (
                int(meta["file"][len("region_"):-len(ext)])
                for meta in self._meta.values()
            ),
            default=-1,
        )
        for region in delta.blocks:
            meta = self._meta.get(region)
            if meta is None:
                name = f"region_{next_idx:06d}{ext}"
                next_idx += 1
                _REGIONS_WRITTEN.inc()
            else:
                name = meta["file"]
            self._write_region(region, touched[region], name)
        self._write_manifest()
        return self.version


class ColumnarWriter:
    """Streaming :class:`ColumnarStore` creation (one block in RAM at a time).

    The manifest is written (atomically) only on a clean exit, so an
    interrupted build never looks like a complete store::

        with ColumnarStore.writer(directory, feature_names) as w:
            for region, block in generate():
                w.add(region, block)
        store = w.store
    """

    def __init__(
        self,
        directory: str | Path,
        feature_names: Sequence[str],
        codec: str = "raw",
    ):
        if codec not in _CODECS:
            raise ConfigError(f"unknown columnar codec {codec!r}; use one of {_CODECS}")
        if codec == "parquet":
            _pyarrow_parquet()  # fail at construction, not after N blocks
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.feature_names = tuple(feature_names)
        self._codec = codec
        self._entries: list[dict] = []
        self._seen: set[Region] = set()
        self.store: ColumnarStore | None = None

    def add(self, region: Region, block: RegionBlock) -> None:
        if self.store is not None:
            raise StorageError("writer already finished")
        if region in self._seen:
            raise StorageError(f"duplicate region {region}")
        if block.n_features != len(self.feature_names):
            raise StorageError(
                f"block has {block.n_features} features, "
                f"writer declares {len(self.feature_names)}"
            )
        ext = ".col" if self._codec == "raw" else ".parquet"
        name = f"region_{len(self._entries):06d}{ext}"
        cols = _encode_columns(block)
        if self._codec == "raw":
            nbytes, col_meta = _write_raw(self._dir / name, cols)
        else:
            nbytes, col_meta = _write_parquet(self._dir / name, cols)
        self._entries.append(
            {
                "key": region_to_json(region),
                "file": name,
                "rows": block.n_examples,
                "columns": col_meta,
            }
        )
        self._seen.add(region)
        _BYTES_WRITTEN.inc(nbytes)
        _REGIONS_WRITTEN.inc()

    def finish(self) -> ColumnarStore:
        if self.store is None:
            payload = json.dumps(
                {
                    "format": _FORMAT,
                    "layout_version": _LAYOUT_VERSION,
                    "codec": self._codec,
                    "version": 0,
                    "feature_names": list(self.feature_names),
                    "regions": self._entries,
                }
            ).encode()
            _atomic_write(self._dir / ColumnarStore.MANIFEST, payload)
            self.store = ColumnarStore(self._dir)
        return self.store

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()
