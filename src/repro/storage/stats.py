"""I/O accounting for training-data stores.

The paper's efficiency claims are phrased in scans of the "entire training
data" (the union of all feasible regions' training sets): the naive tree
re-reads it per (node, split), the RF tree once per level, the cube
algorithms once in total.  :class:`IOStats` makes those counts observable so
the Lemma 1 / Lemma 2 scan bounds are tested, not assumed.

Every recording also increments the process-wide metrics registry
(``store.region_reads`` / ``store.full_scans`` / ``store.bytes_read``), so
the same counts show up in ``--metrics-out`` exports without touching any
store instance.  To measure a window over a *shared* store, take a
:meth:`snapshot` before the work and subtract it after (``after - before``)
instead of calling :meth:`reset`, which would race with other users.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.catalog import (
    STORE_BYTES_READ,
    STORE_COLUMNAR_CHUNKS_READ,
    STORE_FULL_SCANS,
    STORE_REGION_READS,
)
from repro.obs.metrics import get_registry

_REGION_READS = get_registry().counter(STORE_REGION_READS)
_FULL_SCANS = get_registry().counter(STORE_FULL_SCANS)
_BYTES_READ = get_registry().counter(STORE_BYTES_READ)
_CHUNKS_READ = get_registry().counter(STORE_COLUMNAR_CHUNKS_READ)


@dataclass
class IOStats:
    """Counters accumulated by a training-data store."""

    region_reads: int = 0
    full_scans: int = 0
    bytes_read: int = 0

    def record_region_read(self, n_bytes: int) -> None:
        self.region_reads += 1
        self.bytes_read += n_bytes
        _REGION_READS.inc()
        _BYTES_READ.inc(n_bytes)

    def record_full_scan(self) -> None:
        self.full_scans += 1
        _FULL_SCANS.inc()

    def record_chunk_read(self, n_bytes: int) -> None:
        """One bounded-memory sub-block of a chunked scan.

        Chunks are fragments of an already-counted full scan, so they add
        bytes (the Lemma accounting stays truthful) without inflating
        ``region_reads``; the chunk count lands on its own catalog counter.
        """
        self.bytes_read += n_bytes
        _BYTES_READ.inc(n_bytes)
        _CHUNKS_READ.inc()

    def reset(self) -> None:
        self.region_reads = 0
        self.full_scans = 0
        self.bytes_read = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.region_reads, self.full_scans, self.bytes_read)

    def diff(self, other: "IOStats") -> "IOStats":
        """Counts accrued since ``other`` (an earlier :meth:`snapshot`)."""
        return IOStats(
            self.region_reads - other.region_reads,
            self.full_scans - other.full_scans,
            self.bytes_read - other.bytes_read,
        )

    __sub__ = diff

    def as_dict(self) -> dict[str, int]:
        return {
            "region_reads": self.region_reads,
            "full_scans": self.full_scans,
            "bytes_read": self.bytes_read,
        }

    def __repr__(self) -> str:
        return (
            f"IOStats(region_reads={self.region_reads}, "
            f"full_scans={self.full_scans}, bytes_read={self.bytes_read})"
        )
