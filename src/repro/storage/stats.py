"""I/O accounting for training-data stores.

The paper's efficiency claims are phrased in scans of the "entire training
data" (the union of all feasible regions' training sets): the naive tree
re-reads it per (node, split), the RF tree once per level, the cube
algorithms once in total.  :class:`IOStats` makes those counts observable so
the Lemma 1 / Lemma 2 scan bounds are tested, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Counters accumulated by a training-data store."""

    region_reads: int = 0
    full_scans: int = 0
    bytes_read: int = 0

    def record_region_read(self, n_bytes: int) -> None:
        self.region_reads += 1
        self.bytes_read += n_bytes

    def record_full_scan(self) -> None:
        self.full_scans += 1

    def reset(self) -> None:
        self.region_reads = 0
        self.full_scans = 0
        self.bytes_read = 0

    def snapshot(self) -> "IOStats":
        return IOStats(self.region_reads, self.full_scans, self.bytes_read)

    def __repr__(self) -> str:
        return (
            f"IOStats(region_reads={self.region_reads}, "
            f"full_scans={self.full_scans}, bytes_read={self.bytes_read})"
        )
