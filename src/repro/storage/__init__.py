"""Training-data storage: in-memory and disk-resident region blocks.

Stores are versioned: :meth:`TrainingDataStore.apply_delta` absorbs appended
or retracted training rows (see :mod:`repro.storage.delta`) and bumps a
monotone ``version`` that downstream caches — notably the incremental
suffstats cache of :mod:`repro.incremental` — key on.
"""

from .block_store import (
    DiskStore,
    FilteredStore,
    MemoryStore,
    RegionBlock,
    StorageError,
    TrainingDataStore,
)
from .delta import AppliedDelta, BlockDelta, StoreDelta, apply_block_delta
from .stats import IOStats

__all__ = [
    "AppliedDelta",
    "BlockDelta",
    "DiskStore",
    "FilteredStore",
    "IOStats",
    "MemoryStore",
    "RegionBlock",
    "StorageError",
    "StoreDelta",
    "TrainingDataStore",
    "apply_block_delta",
]
