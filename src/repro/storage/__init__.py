"""Training-data storage: in-memory and disk-resident region blocks.

Stores are versioned: :meth:`TrainingDataStore.apply_delta` absorbs appended
or retracted training rows (see :mod:`repro.storage.delta`) and bumps a
monotone ``version`` that downstream caches — notably the incremental
suffstats cache of :mod:`repro.incremental` — key on.

Two on-disk backends implement the same interface: :class:`DiskStore` (one
``.npz`` per region, pickle manifest) and
:class:`~repro.storage.columnar.ColumnarStore` (per-region raw column files,
JSON manifest, memmap-backed bounded-memory chunked scans).
:func:`open_store` sniffs which backend wrote a directory.
:mod:`repro.storage.cubetables` persists per-level suffstats cube tables on
top of either backend.
"""

from .block_store import (
    BlockWriter,
    DiskStore,
    FilteredStore,
    MemoryStore,
    RegionBlock,
    StorageError,
    TrainingDataStore,
    open_store,
)
from .columnar import ColumnarStore, ColumnarWriter
from .cubetables import CubeTableStore, LevelTable, StaleCacheError
from .delta import AppliedDelta, BlockDelta, StoreDelta, apply_block_delta
from .stats import IOStats

__all__ = [
    "AppliedDelta",
    "BlockDelta",
    "BlockWriter",
    "ColumnarStore",
    "ColumnarWriter",
    "CubeTableStore",
    "DiskStore",
    "FilteredStore",
    "IOStats",
    "LevelTable",
    "MemoryStore",
    "RegionBlock",
    "StaleCacheError",
    "StorageError",
    "StoreDelta",
    "TrainingDataStore",
    "apply_block_delta",
    "open_store",
]
