"""Training-data storage: in-memory and disk-resident region blocks."""

from .block_store import (
    DiskStore,
    FilteredStore,
    MemoryStore,
    RegionBlock,
    StorageError,
    TrainingDataStore,
)
from .stats import IOStats

__all__ = [
    "DiskStore",
    "FilteredStore",
    "IOStats",
    "MemoryStore",
    "RegionBlock",
    "StorageError",
    "TrainingDataStore",
]
