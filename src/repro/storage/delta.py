"""Store deltas: appended / retracted training rows, applied under versioning.

The paper's Theorem 1 makes per-region model error an *algebraic* aggregate,
so the entire training data need not be regenerated when facts change — new
months of orders or new/retired items arrive as a :class:`StoreDelta` and
the stores (see :mod:`repro.storage.block_store`) fold them in, bumping a
monotone ``version``.  Downstream caches (the suffstats cache of
:mod:`repro.incremental`) key on that version and consume the store's
changelog of :class:`AppliedDelta` records to find out *which* (region,
item) coordinates moved.

Apply semantics per region, in order:

1. rows whose item id is in ``retract_ids`` are removed (missing ids are
   ignored — retraction is idempotent);
2. ``append`` rows are concatenated at the *end* of the block.

Appending at the end keeps every surviving row in its original relative
order, which is what makes incremental per-cell sufficient statistics
bit-for-bit identical to a from-scratch pass over the updated block.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.dimensions import Region

from .block_store import RegionBlock, StorageError


@dataclass(frozen=True)
class BlockDelta:
    """The change to one region's training block.

    Attributes
    ----------
    append:
        Rows to concatenate at the end of the block (``None`` = no appends).
        For a region the store does not know yet, this becomes the whole
        block.
    retract_ids:
        Item ids whose rows are removed (``None`` = no retractions).
    """

    append: RegionBlock | None = None
    retract_ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.append is None and self.retract_ids is None:
            raise StorageError("empty BlockDelta: nothing appended or retracted")

    @property
    def touched_ids(self) -> np.ndarray:
        """All item ids this delta may move (appended ∪ retracted)."""
        parts = []
        if self.append is not None:
            parts.append(np.asarray(self.append.item_ids))
        if self.retract_ids is not None:
            parts.append(np.asarray(self.retract_ids))
        return np.unique(np.concatenate(parts))


@dataclass(frozen=True)
class StoreDelta:
    """One batch of changes to a training-data store.

    ``blocks`` maps regions to their :class:`BlockDelta`; ``drop_regions``
    removes whole regions (a region may not appear in both).
    """

    blocks: Mapping[Region, BlockDelta]
    drop_regions: tuple[Region, ...] = ()

    def __post_init__(self) -> None:
        overlap = [r for r in self.drop_regions if r in self.blocks]
        if overlap:
            raise StorageError(f"regions both changed and dropped: {overlap[:3]}")

    @property
    def touched_regions(self) -> tuple[Region, ...]:
        return tuple(self.blocks) + tuple(self.drop_regions)

    @property
    def n_appended(self) -> int:
        return sum(
            bd.append.n_examples
            for bd in self.blocks.values()
            if bd.append is not None
        )


@dataclass(frozen=True)
class AppliedDelta:
    """A delta as the store actually absorbed it (one changelog entry).

    Besides the requested :class:`StoreDelta`, records the rows that were
    *actually removed* per region — retraction requests name item ids, but
    algebraic retraction (``stats - g(removed rows)``) needs the removed
    rows' values, which only the store had at apply time.
    """

    version: int
    delta: StoreDelta
    removed: Mapping[Region, RegionBlock] = field(default_factory=dict)
    new_regions: tuple[Region, ...] = ()

    def touched_items(self, region: Region) -> np.ndarray:
        """Item ids whose rows moved in ``region`` under this delta."""
        parts = []
        bd = self.delta.blocks.get(region)
        if bd is not None and bd.append is not None:
            parts.append(np.asarray(bd.append.item_ids))
        removed = self.removed.get(region)
        if removed is not None and removed.n_examples:
            parts.append(np.asarray(removed.item_ids))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))


def apply_block_delta(
    old: RegionBlock | None,
    bd: BlockDelta,
    n_features: int,
) -> tuple[RegionBlock, RegionBlock | None]:
    """Apply one region's delta; returns ``(new_block, removed_rows)``.

    ``removed_rows`` is ``None`` when nothing was retracted.  Raises
    :class:`StorageError` on feature-count or weight-column mismatches and
    on retraction from an unknown region.
    """
    if bd.append is not None and bd.append.n_features != n_features:
        raise StorageError(
            f"delta block has {bd.append.n_features} features, "
            f"store declares {n_features}"
        )
    if old is None:
        if bd.retract_ids is not None and len(np.asarray(bd.retract_ids)):
            raise StorageError("cannot retract rows from an unknown region")
        assert bd.append is not None  # __post_init__ guarantees one of the two
        return bd.append, None
    removed: RegionBlock | None = None
    kept = old
    if bd.retract_ids is not None:
        gone = np.isin(old.item_ids, np.asarray(bd.retract_ids))
        removed = RegionBlock(
            old.item_ids[gone],
            old.x[gone],
            old.y[gone],
            None if old.weights is None else old.weights[gone],
        )
        kept = RegionBlock(
            old.item_ids[~gone],
            old.x[~gone],
            old.y[~gone],
            None if old.weights is None else old.weights[~gone],
        )
    if bd.append is None:
        return kept, removed
    app = bd.append
    if (kept.weights is None) != (app.weights is None) and kept.n_examples:
        raise StorageError(
            "delta append and existing block disagree on weight column"
        )
    weights = None
    if app.weights is not None or kept.weights is not None:
        w_kept = (
            kept.weights
            if kept.weights is not None
            else np.ones(kept.n_examples)
        )
        w_app = (
            app.weights if app.weights is not None else np.ones(app.n_examples)
        )
        weights = np.concatenate([w_kept, w_app])
    new = RegionBlock(
        np.concatenate([kept.item_ids, app.item_ids]),
        np.concatenate([kept.x, app.x]),
        np.concatenate([kept.y, app.y]),
        weights,
    )
    return new, removed
