"""Materialized suffstats cube tables (Theorem 1, persisted).

A cube build's expensive part is deriving per-(region, subset) sufficient
statistics from raw facts.  Theorem 1 makes those statistics algebraic, so
they can be *materialized*: this module persists, per lattice level, the
rolled-up :class:`~repro.ml.StackedSuffStats` of every (region, significant
subset) problem — the exact arrays
:meth:`~repro.core.cube.BellwetherCubeBuilder._rollup_batched` computes —
keyed on the store version and the builder's lattice geometry.  A warm cube
build then loads the tables and runs one batched solve per level without
ever touching facts (``store.full_scans`` stays at zero), which is the
query-avoidance pattern the ROADMAP's cube-tables item calls for.

Staleness is loud, never silent: a table set written at another store
version or for another geometry raises :class:`StaleCacheError`; unreadable
files raise :class:`~repro.storage.StorageError`.  Byte traffic lands on the
``cube.tables.bytes_written`` / ``cube.tables.bytes_read`` counters —
derived-statistics I/O, deliberately separate from the ``store.*`` scan
accounting the Lemmas are phrased in.

Use :func:`repro.incremental.build_cube_tables` to build/refresh a table
set with ``--skip-existing`` semantics (it reuses the incremental
maintainer's dirty-cell patching to avoid full scans on version bumps).
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dimensions import Region
from repro.ml import StackedSuffStats
from repro.obs.catalog import (
    CUBE_TABLES_BYTES_READ,
    CUBE_TABLES_BYTES_WRITTEN,
)
from repro.analysis.runtime import CUBE_TABLES_IO, TrackedLock
from repro.obs.metrics import get_registry

from .block_store import StorageError, _atomic_write
from .columnar import region_from_json, region_to_json

_BYTES_WRITTEN = get_registry().counter(CUBE_TABLES_BYTES_WRITTEN)
_BYTES_READ = get_registry().counter(CUBE_TABLES_BYTES_READ)

_FORMAT = "repro-cube-tables"
_LAYOUT_VERSION = 1


class StaleCacheError(StorageError):
    """Cached derived statistics were written against another store version
    (or another lattice geometry) — rebuild instead of serving stale bits."""


@dataclass(frozen=True)
class LevelTable:
    """One lattice level's materialized (region, subset) statistics.

    Attributes
    ----------
    level:
        The lattice level (per-hierarchy depth tuple).
    regions:
        Regions holding data, in store-scan order.
    keep_sidx:
        Indices of the level's significant subsets, in the builder's keep
        order (``K`` entries).
    stats:
        ``len(regions) * K`` problems, region-major: problem ``r * K + j``
        is (regions[r], significant subset j) — bit-identical to the
        optimized builder's rollup of the same store.
    """

    level: tuple[int, ...]
    regions: tuple[Region, ...]
    keep_sidx: np.ndarray
    stats: StackedSuffStats

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    @property
    def n_subsets(self) -> int:
        return len(self.keep_sidx)


def _canonical(signature: dict) -> str:
    return json.dumps(signature, sort_keys=True)


class CubeTableStore:
    """Saves/loads a cube's per-level suffstats tables in one directory.

    Layout: ``cube_tables_meta.json`` (format, store version, geometry
    signature, per-level region keys) + ``cube_tables.npz`` (the stacked
    component arrays, keyed ``L{i}_{component}``).  The metadata is written
    last and atomically — it is the commit point; a crash mid-save leaves
    the old table set or none, never a torn one.

    Thread safety: save/load serialize on an instance lock (the query
    service calls both from request threads), the data file is also written
    atomically, and the store version is embedded in it (``__version__``)
    and cross-checked against the metadata on load — a pair torn by a
    concurrent save raises :class:`~repro.storage.StorageError` instead of
    silently mixing versions.
    """

    _META = "cube_tables_meta.json"
    _DATA = "cube_tables.npz"

    def __init__(self, directory: str | Path):
        self._dir = Path(directory)
        self._io_lock = TrackedLock(CUBE_TABLES_IO, reentrant=True)

    @property
    def meta_path(self) -> Path:
        return self._dir / self._META

    @property
    def data_path(self) -> Path:
        return self._dir / self._DATA

    def save(
        self,
        tables: Sequence[LevelTable],
        signature: dict,
        version: int,
    ) -> None:
        """Persist the tables, keyed on geometry ``signature`` + ``version``."""
        with self._io_lock:
            self._save_locked(tables, signature, version)

    def _save_locked(
        self,
        tables: Sequence[LevelTable],
        signature: dict,
        version: int,
    ) -> None:
        self._dir.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {
            "__version__": np.asarray([int(version)], dtype=np.int64)
        }
        p = int(signature.get("p", 0))
        for i, t in enumerate(tables):
            if len(t.stats):
                p = t.stats.p
            arrays[f"L{i}_ytwy"] = t.stats.ytwy
            arrays[f"L{i}_xtwx"] = t.stats.xtwx
            arrays[f"L{i}_xtwy"] = t.stats.xtwy
            arrays[f"L{i}_n"] = t.stats.n
            arrays[f"L{i}_sum_w"] = t.stats.sum_w
        tmp = self.data_path.with_name(self.data_path.name + ".tmp")
        with tmp.open("wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, self.data_path)
        meta_payload = json.dumps(
            {
                "format": _FORMAT,
                "layout_version": _LAYOUT_VERSION,
                "version": int(version),
                "p": p,
                "signature": signature,
                "levels": [
                    {
                        "level": list(t.level),
                        "regions": [region_to_json(r) for r in t.regions],
                        "keep_sidx": [int(s) for s in t.keep_sidx],
                    }
                    for t in tables
                ],
            }
        ).encode()
        _atomic_write(self.meta_path, meta_payload)
        _BYTES_WRITTEN.inc(self.data_path.stat().st_size + len(meta_payload))

    def load(
        self,
        signature: dict,
        expected_version: int,
    ) -> list[LevelTable]:
        """The persisted tables, verified against geometry and store version.

        Raises :class:`StaleCacheError` on a version or geometry mismatch
        and :class:`StorageError` when the files are missing or unreadable.
        """
        with self._io_lock:
            return self._load_locked(signature, expected_version)

    def _load_locked(
        self,
        signature: dict,
        expected_version: int,
    ) -> list[LevelTable]:
        if not self.meta_path.exists():
            raise StorageError(f"no cube tables at {self._dir}")
        try:
            meta = json.loads(self.meta_path.read_text())
            if meta.get("format") != _FORMAT:
                raise StorageError(
                    f"{self.meta_path} is not a {_FORMAT} file "
                    f"(format={meta.get('format')!r})"
                )
            layout = int(meta.get("layout_version", -1))
            if layout != _LAYOUT_VERSION:
                raise StorageError(
                    f"cube-table layout v{layout} unsupported "
                    f"(this build reads v{_LAYOUT_VERSION})"
                )
            version = int(meta["version"])
            p = int(meta["p"])
            levels = list(meta["levels"])
            saved_sig = meta["signature"]
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(
                f"corrupt cube-table metadata {self.meta_path}: {exc!r}"
            ) from exc
        if _canonical(saved_sig) != _canonical(signature):
            raise StaleCacheError(
                "cube tables were materialized for another lattice geometry; "
                "rebuild them for this builder"
            )
        if version != expected_version:
            raise StaleCacheError(
                f"cube tables are at store version {version}, "
                f"store is at {expected_version}"
            )
        try:
            with np.load(self.data_path) as data:
                if "__version__" in data.files:
                    data_version = int(data["__version__"][0])
                    if data_version != version:
                        raise StorageError(
                            f"torn cube tables at {self._dir}: metadata says "
                            f"store version {version}, data file was written "
                            f"at {data_version}"
                        )
                tables: list[LevelTable] = []
                for i, entry in enumerate(levels):
                    regions = tuple(
                        region_from_json(key) for key in entry["regions"]
                    )
                    keep_sidx = np.asarray(entry["keep_sidx"], dtype=np.int64)
                    n_problems = len(regions) * len(keep_sidx)
                    if f"L{i}_ytwy" in data.files:
                        stats = StackedSuffStats(
                            data[f"L{i}_ytwy"],
                            data[f"L{i}_xtwx"],
                            data[f"L{i}_xtwy"],
                            data[f"L{i}_n"],
                            data[f"L{i}_sum_w"],
                        )
                    else:
                        stats = StackedSuffStats.zeros(0, p)
                    if len(stats) != n_problems or (len(stats) and stats.p != p):
                        raise StorageError(
                            f"cube table level {i} has {len(stats)} problems "
                            f"(p={stats.p if len(stats) else '?'}); expected "
                            f"{n_problems} (p={p})"
                        )
                    tables.append(
                        LevelTable(
                            level=tuple(int(x) for x in entry["level"]),
                            regions=regions,
                            keep_sidx=keep_sidx,
                            stats=stats,
                        )
                    )
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(
                f"unreadable cube tables {self.data_path}: {exc!r}"
            ) from exc
        _BYTES_READ.inc(
            self.data_path.stat().st_size + self.meta_path.stat().st_size
        )
        return tables
