"""Candidate regions: combinations of dimension values (Section 3.1, 4.1).

A :class:`Region` fixes one value per fact-table dimension — an interval for
interval dimensions, a hierarchy node for hierarchical ones.  E.g.
``[1-8, MD]`` is "the first eight months, state of Maryland".

:class:`RegionSpace` owns the dimension list, enumerates the candidate region
set ``R`` (the cross product of per-dimension candidate values) and answers
row-membership queries against a fact table.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Union

import numpy as np

from .errors import RegionError
from .hierarchy import HierarchicalDimension
from .interval import Interval, IntervalDimension

Dimension = Union[IntervalDimension, HierarchicalDimension]
RegionValue = Union[Interval, str]


@dataclass(frozen=True)
class Region:
    """One candidate region: a tuple of per-dimension values."""

    values: tuple[RegionValue, ...]

    def __str__(self) -> str:
        parts = [str(v) for v in self.values]
        return f"[{', '.join(parts)}]"

    def __repr__(self) -> str:
        return f"Region({self})"


class RegionSpace:
    """The candidate region set R over a fixed list of dimensions.

    Example
    -------
    >>> time = IntervalDimension("month", 10, unit="month")
    >>> loc = HierarchicalDimension.from_spec(
    ...     "state", {"MW": ["WI", "IL"], "NE": ["NY", "MD"]},
    ...     level_names=("All", "Division", "State"))
    >>> space = RegionSpace([time, loc])
    >>> space.n_regions  # 10 prefixes x 7 nodes (4 states + 2 divisions + All)
    70
    """

    def __init__(self, dimensions: Sequence[Dimension]):
        if not dimensions:
            raise RegionError("RegionSpace needs at least one dimension")
        names = [d.attribute for d in dimensions]
        if len(set(names)) != len(names):
            raise RegionError(f"duplicate dimension attributes: {names}")
        self.dimensions: tuple[Dimension, ...] = tuple(dimensions)

    # ------------------------------------------------------------ enumeration

    def _candidate_values(self, dim: Dimension) -> list[RegionValue]:
        if isinstance(dim, IntervalDimension):
            return list(dim.intervals())
        return [node.name for node in dim.nodes()]

    def all_regions(self) -> list[Region]:
        """Every combination of candidate dimension values."""
        per_dim = [self._candidate_values(d) for d in self.dimensions]
        return [Region(tuple(combo)) for combo in itertools.product(*per_dim)]

    @property
    def n_regions(self) -> int:
        n = 1
        for dim in self.dimensions:
            n *= len(self._candidate_values(dim))
        return n

    def iter_regions(self) -> Iterator[Region]:
        per_dim = [self._candidate_values(d) for d in self.dimensions]
        for combo in itertools.product(*per_dim):
            yield Region(tuple(combo))

    # ------------------------------------------------------------- validation

    def region(self, *values) -> Region:
        """Build a validated region.

        For convenience, an integer ``t`` passed for an interval dimension is
        interpreted as the prefix ``[1, t]`` and a ``(start, end)`` tuple as
        that window (windowed dimensions validate candidacy).
        """
        if len(values) != len(self.dimensions):
            raise RegionError(
                f"expected {len(self.dimensions)} values, got {len(values)}"
            )
        resolved: list[RegionValue] = []
        for dim, value in zip(self.dimensions, values):
            if isinstance(dim, IntervalDimension):
                if isinstance(value, int):
                    value = dim.interval(value)
                elif isinstance(value, tuple) and len(value) == 2:
                    value = Interval(*value)
                if not isinstance(value, Interval):
                    raise RegionError(
                        f"dimension {dim.attribute!r} needs an Interval, got {value!r}"
                    )
                dim.validate_value(value)
            else:
                if not isinstance(value, str) or value not in dim:
                    raise RegionError(
                        f"dimension {dim.attribute!r}: unknown node {value!r}"
                    )
            resolved.append(value)
        return Region(tuple(resolved))

    # ------------------------------------------------------------- membership

    def mask(self, fact, region: Region) -> np.ndarray:
        """Boolean mask over fact rows: which rows fall inside the region."""
        result: np.ndarray | None = None
        for dim, value in zip(self.dimensions, region.values):
            column = fact.column(dim.attribute)
            if isinstance(dim, IntervalDimension):
                part = dim.membership_mask(column, value)  # type: ignore[arg-type]
            else:
                part = dim.membership_mask(column, value)  # type: ignore[arg-type]
            result = part if result is None else (result & part)
        assert result is not None
        return result

    def contains_cell(self, region: Region, cell: Sequence) -> bool:
        """Does the region contain the finest-grained cell (point/leaf tuple)?"""
        for dim, value, coord in zip(self.dimensions, region.values, cell):
            if isinstance(dim, IntervalDimension):
                if not value.contains_point(int(coord)):  # type: ignore[union-attr]
                    return False
            else:
                if not dim.contains_leaf(str(value), str(coord)):
                    return False
        return True

    def finest_cells(self) -> list[tuple]:
        """All finest-grained cells: time points x hierarchy leaves."""
        per_dim: list[list] = []
        for dim in self.dimensions:
            if isinstance(dim, IntervalDimension):
                per_dim.append(list(range(1, dim.n_points + 1)))
            else:
                per_dim.append(list(dim.leaf_names))
        return [tuple(c) for c in itertools.product(*per_dim)]

    def label(self, region: Region) -> str:
        return str(region)

    def __repr__(self) -> str:
        dims = ", ".join(d.attribute for d in self.dimensions)
        return f"RegionSpace({dims}; {self.n_regions} regions)"
