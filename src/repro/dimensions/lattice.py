"""Item hierarchies and the level lattice of cube subsets (Section 6.1).

The item table's attributes each carry an *item hierarchy* (Figure 5); a
combination of one node per hierarchy defines a *cube subset* of items (e.g.
``[Hardware, Low]``), and the combinations of per-hierarchy depths form the
level lattice of Figure 6.

:class:`ItemHierarchies` encodes items into *base cells* (their leaf-level
combination) and provides rollup maps from base cells to the subsets at any
level — the machinery both the single-scan and the optimized bellwether-cube
algorithms are built on.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .errors import HierarchyError
from .hierarchy import HierarchicalDimension


@dataclass(frozen=True)
class CubeSubset:
    """A cube subset of items: one hierarchy node per item attribute."""

    nodes: tuple[str, ...]
    level: tuple[int, ...]

    def __str__(self) -> str:
        return f"[{', '.join(self.nodes)}]"

    def __repr__(self) -> str:
        return f"CubeSubset({self})"


@dataclass(frozen=True)
class RollupMap:
    """Base cell -> subset assignment at one lattice level.

    ``subset_of_base[b]`` is the index into ``subsets`` of the subset
    containing base cell ``b``.
    """

    level: tuple[int, ...]
    subsets: tuple[CubeSubset, ...]
    subset_of_base: np.ndarray


class ItemHierarchies:
    """The item hierarchies attached to an item table.

    Parameters
    ----------
    hierarchies:
        One :class:`HierarchicalDimension` per item-table attribute, whose
        leaves are the values recorded in that attribute.
    """

    def __init__(self, hierarchies: Sequence[HierarchicalDimension]):
        if not hierarchies:
            raise HierarchyError("ItemHierarchies needs at least one hierarchy")
        attrs = [h.attribute for h in hierarchies]
        if len(set(attrs)) != len(attrs):
            raise HierarchyError(f"duplicate item attributes: {attrs}")
        self.hierarchies: tuple[HierarchicalDimension, ...] = tuple(hierarchies)

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(h.attribute for h in self.hierarchies)

    # ---------------------------------------------------------------- lattice

    def levels(self) -> list[tuple[int, ...]]:
        """All lattice levels as per-hierarchy depth tuples.

        Depth ``h.leaf_depth`` is the finest level of hierarchy ``h``;
        depth 0 is its ``All`` node.  The finest combination comes first,
        ``(0, ..., 0)`` (i.e. ``[All, ..., All]``) last.
        """
        ranges = [range(h.leaf_depth, -1, -1) for h in self.hierarchies]
        return [tuple(combo) for combo in itertools.product(*ranges)]

    @property
    def base_level(self) -> tuple[int, ...]:
        return tuple(h.leaf_depth for h in self.hierarchies)

    # ------------------------------------------------------------- base cells

    def encode_items(self, item_table) -> tuple[np.ndarray, np.ndarray]:
        """Assign each item to its base cell.

        Returns ``(cell_of_item, base_cell_leaf_codes)`` where
        ``cell_of_item[i]`` is a dense base-cell id per item row and
        ``base_cell_leaf_codes`` is an ``(n_cells, n_hierarchies)`` array of
        per-hierarchy leaf codes describing each base cell.
        """
        per_attr_codes = []
        for h in self.hierarchies:
            values = item_table.column(h.attribute)
            per_attr_codes.append(h.encode_leaves(values))
        combined = per_attr_codes[0].astype(np.int64)
        for h, codes in zip(self.hierarchies[1:], per_attr_codes[1:]):
            combined = combined * h.n_leaves + codes
        unique_combined, cell_of_item = np.unique(combined, return_inverse=True)
        n_cells = len(unique_combined)
        base_cell_leaf_codes = np.empty((n_cells, len(self.hierarchies)), dtype=np.int64)
        remaining = unique_combined.copy()
        for j in range(len(self.hierarchies) - 1, -1, -1):
            base = self.hierarchies[j].n_leaves
            base_cell_leaf_codes[:, j] = remaining % base
            remaining = remaining // base
        return cell_of_item.astype(np.int64), base_cell_leaf_codes

    # ----------------------------------------------------------------- rollup

    def rollup_map(
        self, level: tuple[int, ...], base_cell_leaf_codes: np.ndarray
    ) -> RollupMap:
        """Map every base cell to its subset at the given level."""
        if len(level) != len(self.hierarchies):
            raise HierarchyError(
                f"level {level} has {len(level)} entries, "
                f"expected {len(self.hierarchies)}"
            )
        n_cells = len(base_cell_leaf_codes)
        ancestor_idx = np.zeros(n_cells, dtype=np.int64)
        per_hier_names: list[list[str]] = []
        radix = 1
        for j, (h, depth) in enumerate(zip(self.hierarchies, level)):
            codes, names = h.ancestor_codes_at_depth(depth)
            per_hier_names.append(names)
            ancestor_idx = ancestor_idx * len(names) + codes[base_cell_leaf_codes[:, j]]
        unique_idx, subset_of_base = np.unique(ancestor_idx, return_inverse=True)
        subsets: list[CubeSubset] = []
        for combined in unique_idx:
            nodes: list[str] = []
            remaining = int(combined)
            for names in reversed(per_hier_names):
                nodes.append(names[remaining % len(names)])
                remaining //= len(names)
            subsets.append(CubeSubset(tuple(reversed(nodes)), level))
        return RollupMap(level, tuple(subsets), subset_of_base.astype(np.int64))

    # ------------------------------------------------------------- membership

    def member_mask(self, item_table, subset: CubeSubset) -> np.ndarray:
        """Boolean mask over item rows: who belongs to the subset."""
        mask = np.ones(item_table.n_rows, dtype=bool)
        for h, node in zip(self.hierarchies, subset.nodes):
            mask &= h.membership_mask(item_table.column(h.attribute), node)
        return mask

    def subsets_containing(self, item_values: Mapping[str, str]) -> list[CubeSubset]:
        """Every cube subset that contains an item with the given leaf values.

        Mirrors Section 6.2's prediction step: for a Desktop/100K item the
        enclosing subsets run from ``[Desktop, 100K]`` up to ``[Any, Any]``.
        """
        per_hier_chains: list[list[tuple[str, int]]] = []
        for h in self.hierarchies:
            try:
                leaf = item_values[h.attribute]
            except KeyError:
                raise HierarchyError(
                    f"item_values missing attribute {h.attribute!r}"
                ) from None
            chain = h.ancestors_of(leaf)  # leaf ... root
            per_hier_chains.append(
                [(name, h.leaf_depth - i) for i, name in enumerate(chain)]
            )
        result = []
        for combo in itertools.product(*per_hier_chains):
            nodes = tuple(name for name, __ in combo)
            level = tuple(depth for __, depth in combo)
            result.append(CubeSubset(nodes, level))
        return result

    def iter_all_subsets(self, base_cell_leaf_codes: np.ndarray) -> Iterator[RollupMap]:
        """Rollup maps for every lattice level (finest first)."""
        for level in self.levels():
            yield self.rollup_map(level, base_cell_leaf_codes)

    def __repr__(self) -> str:
        return f"ItemHierarchies({', '.join(self.attributes)})"
