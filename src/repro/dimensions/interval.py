"""Interval dimensions: prefix time windows (Section 4.1).

The values of an interval dimension are *incremental intervals* ``[1, t]``
(e.g. "the first t weeks"); the fact table records plain time points.  The
paper notes more general windows are possible; we implement the incremental
case it evaluates, parameterized by the number of time points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import RegionError


@dataclass(frozen=True, order=True)
class Interval:
    """The incremental interval ``[start, end]`` (inclusive, 1-based)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 1 or self.end < self.start:
            raise RegionError(f"invalid interval [{self.start}, {self.end}]")

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def contains_point(self, t: int) -> bool:
        return self.start <= t <= self.end

    def __str__(self) -> str:
        return f"{self.start}-{self.end}"


class IntervalDimension:
    """Prefix-interval dimension over an integer fact-table attribute.

    Parameters
    ----------
    attribute:
        Fact-table column holding time points (integers ``1..n_points``).
    n_points:
        Number of finest time points (e.g. 52 weeks, 10 months).
    unit:
        Display label only (e.g. ``"week"``, ``"month"``).
    """

    def __init__(self, attribute: str, n_points: int, unit: str = "t"):
        if n_points < 1:
            raise RegionError(f"n_points must be >= 1, got {n_points}")
        self.attribute = attribute
        self.n_points = n_points
        self.unit = unit

    def intervals(self) -> list[Interval]:
        """All candidate values ``[1,1], [1,2], ..., [1,n_points]``."""
        return [Interval(1, t) for t in range(1, self.n_points + 1)]

    def interval(self, end: int) -> Interval:
        """The prefix interval ending at ``end``."""
        if not 1 <= end <= self.n_points:
            raise RegionError(
                f"dimension {self.attribute!r}: prefix end {end} out of 1..{self.n_points}"
            )
        return Interval(1, end)

    def validate_points(self, values: np.ndarray) -> None:
        """Check all recorded time points are within ``1..n_points``."""
        values = np.asarray(values)
        if len(values) and (values.min() < 1 or values.max() > self.n_points):
            raise RegionError(
                f"dimension {self.attribute!r}: time points outside 1..{self.n_points}"
            )

    def validate_value(self, interval: Interval) -> None:
        """Raise unless the interval is a candidate value of this dimension."""
        if interval.start != 1 or interval.end > self.n_points:
            raise RegionError(
                f"dimension {self.attribute!r}: {interval} is not a valid prefix"
            )

    def membership_mask(self, values: np.ndarray, interval: Interval) -> np.ndarray:
        """Boolean mask: which recorded time points fall in the interval."""
        values = np.asarray(values)
        return (values >= interval.start) & (values <= interval.end)

    def __repr__(self) -> str:
        return f"IntervalDimension({self.attribute!r}, 1..{self.n_points} {self.unit}s)"


class WindowedIntervalDimension(IntervalDimension):
    """An interval dimension with an explicit candidate window list.

    Section 4.1 considers incremental intervals ``[1, t]`` but notes that
    "in general they can be defined by different kinds of windows".  This
    dimension accepts any list of ``(start, end)`` windows — e.g. sliding
    windows of a fixed width, or quarter boundaries.

    Example
    -------
    >>> dim = WindowedIntervalDimension.sliding("week", n_points=8, width=4)
    >>> [str(w) for w in dim.intervals()]
    ['1-4', '2-5', '3-6', '4-7', '5-8']
    """

    def __init__(
        self,
        attribute: str,
        n_points: int,
        windows: list[tuple[int, int]],
        unit: str = "t",
    ):
        super().__init__(attribute, n_points, unit)
        if not windows:
            raise RegionError("windows must be non-empty")
        self._windows: list[Interval] = []
        for start, end in windows:
            interval = Interval(start, end)  # validates start >= 1, end >= start
            if end > n_points:
                raise RegionError(
                    f"window {interval} exceeds n_points={n_points}"
                )
            self._windows.append(interval)

    @classmethod
    def sliding(
        cls, attribute: str, n_points: int, width: int, step: int = 1, unit: str = "t"
    ) -> "WindowedIntervalDimension":
        """All width-``width`` windows advanced by ``step``."""
        if width < 1 or step < 1:
            raise RegionError("width and step must be >= 1")
        windows = [
            (s, s + width - 1)
            for s in range(1, n_points - width + 2, step)
        ]
        return cls(attribute, n_points, windows, unit=unit)

    def intervals(self) -> list[Interval]:
        return list(self._windows)

    def interval(self, end: int) -> Interval:
        """The first candidate window ending at ``end``."""
        for w in self._windows:
            if w.end == end:
                return w
        raise RegionError(
            f"dimension {self.attribute!r}: no candidate window ends at {end}"
        )

    def validate_value(self, interval: Interval) -> None:
        if interval not in self._windows:
            raise RegionError(
                f"dimension {self.attribute!r}: {interval} is not a candidate window"
            )

    def __repr__(self) -> str:
        return (
            f"WindowedIntervalDimension({self.attribute!r}, "
            f"{len(self._windows)} windows over 1..{self.n_points})"
        )
