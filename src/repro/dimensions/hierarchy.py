"""Hierarchical dimensions: values organized as a tree (Section 4.1).

A :class:`HierarchicalDimension` is a rooted tree whose *leaves* are the
values recorded in the fact table (e.g. states); inner nodes are coarser
dimension values (e.g. divisions, regions, ``All``).  The paper requires all
recorded values to sit at the lowest level, so we enforce uniform leaf depth.

Levels are named from the root down, e.g. ``("All", "Region", "Division",
"State")`` — matching Figure 2's Location dimension.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from .errors import HierarchyError


@dataclass
class HierarchyNode:
    """One node in a dimension hierarchy."""

    name: str
    children: list["HierarchyNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["HierarchyNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["HierarchyNode"]:
        for node in self.walk():
            if node.is_leaf:
                yield node

    def __repr__(self) -> str:
        return f"HierarchyNode({self.name!r}, {len(self.children)} children)"


def _from_spec(name: str, spec) -> HierarchyNode:
    """Build a node from a nested mapping / list spec."""
    node = HierarchyNode(name)
    if isinstance(spec, Mapping):
        node.children = [_from_spec(child, sub) for child, sub in spec.items()]
    elif isinstance(spec, Sequence) and not isinstance(spec, str):
        node.children = [HierarchyNode(str(leaf)) for leaf in spec]
    else:
        raise HierarchyError(f"node {name!r}: spec must be a mapping or a list of leaves")
    return node


class HierarchicalDimension:
    """A tree-structured dimension over one fact-table attribute.

    Parameters
    ----------
    attribute:
        Name of the fact-table column holding the *leaf* values.
    root:
        Root of the hierarchy tree.
    level_names:
        One name per depth, root first (e.g. ``("All", "Country", "State")``).

    Example
    -------
    >>> dim = HierarchicalDimension.from_spec(
    ...     "Location",
    ...     {"CA": ["AL2"], "US": ["AL", "WI"], "KR": ["SE"]},
    ...     level_names=("All", "Country", "State"),
    ... )
    >>> sorted(dim.leaves_under("US"))
    ['AL', 'WI']
    """

    def __init__(self, attribute: str, root: HierarchyNode, level_names: Sequence[str]):
        self.attribute = attribute
        self.root = root
        self.level_names = tuple(level_names)
        self._nodes: dict[str, HierarchyNode] = {}
        self._depth: dict[str, int] = {}
        self._parents: dict[str, str | None] = {root.name: None}
        self._register(root, 0)
        leaf_depths = {self._depth[leaf.name] for leaf in root.leaves()}
        if len(leaf_depths) != 1:
            raise HierarchyError(
                f"dimension {attribute!r}: leaves at mixed depths {sorted(leaf_depths)}"
            )
        self.leaf_depth = leaf_depths.pop()
        if len(self.level_names) != self.leaf_depth + 1:
            raise HierarchyError(
                f"dimension {attribute!r}: {len(self.level_names)} level names for "
                f"depth-{self.leaf_depth} tree (need {self.leaf_depth + 1})"
            )
        self._leaf_names = tuple(sorted(leaf.name for leaf in root.leaves()))
        self._leaf_code = {name: i for i, name in enumerate(self._leaf_names)}
        # Per node: sorted array of leaf codes under it (for fast membership).
        self._leaf_codes_under: dict[str, np.ndarray] = {}
        for node in root.walk():
            codes = np.array(
                sorted(self._leaf_code[leaf.name] for leaf in node.leaves()),
                dtype=np.int64,
            )
            self._leaf_codes_under[node.name] = codes

    def _register(self, node: HierarchyNode, depth: int) -> None:
        if node.name in self._nodes:
            raise HierarchyError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._depth[node.name] = depth
        for child in node.children:
            self._parents[child.name] = node.name
            self._register(child, depth + 1)

    # ----------------------------------------------------------------- build

    @classmethod
    def from_spec(
        cls,
        attribute: str,
        spec: Mapping | Sequence,
        level_names: Sequence[str],
        root_name: str = "All",
    ) -> "HierarchicalDimension":
        """Build from a nested mapping; lists are leaf levels."""
        return cls(attribute, _from_spec(root_name, spec), level_names)

    # ------------------------------------------------------------------ query

    @property
    def leaf_names(self) -> tuple[str, ...]:
        return self._leaf_names

    @property
    def n_leaves(self) -> int:
        return len(self._leaf_names)

    def node(self, name: str) -> HierarchyNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise HierarchyError(
                f"dimension {self.attribute!r}: unknown node {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> Iterator[HierarchyNode]:
        """All nodes, root first (pre-order)."""
        return self.root.walk()

    def nodes_at_depth(self, depth: int) -> list[HierarchyNode]:
        return [n for n in self.root.walk() if self._depth[n.name] == depth]

    def depth_of(self, name: str) -> int:
        self.node(name)
        return self._depth[name]

    def level_of(self, name: str) -> str:
        """The level name (e.g. 'State') of a node."""
        return self.level_names[self.depth_of(name)]

    def parent_of(self, name: str) -> str | None:
        self.node(name)
        return self._parents[name]

    def ancestors_of(self, name: str) -> list[str]:
        """Ancestors from the node itself up to the root (inclusive)."""
        chain = [name]
        while (parent := self._parents[chain[-1]]) is not None:
            chain.append(parent)
        return chain

    def leaves_under(self, name: str) -> tuple[str, ...]:
        codes = self._leaf_codes_under[self.node(name).name]
        return tuple(self._leaf_names[c] for c in codes)

    def leaf_code(self, leaf_name: str) -> int:
        try:
            return self._leaf_code[leaf_name]
        except KeyError:
            raise HierarchyError(
                f"dimension {self.attribute!r}: {leaf_name!r} is not a leaf"
            ) from None

    def encode_leaves(self, values: np.ndarray) -> np.ndarray:
        """Map an array of recorded leaf values to dense leaf codes."""
        return np.array([self.leaf_code(str(v)) for v in values], dtype=np.int64)

    def contains_leaf(self, node_name: str, leaf_name: str) -> bool:
        return self.leaf_code(leaf_name) in set(self._leaf_codes_under[self.node(node_name).name])

    def membership_mask(self, values: np.ndarray, node_name: str) -> np.ndarray:
        """Boolean mask: which recorded values fall under the given node."""
        codes = self.encode_leaves(values)
        member = np.zeros(self.n_leaves, dtype=bool)
        member[self._leaf_codes_under[self.node(node_name).name]] = True
        return member[codes]

    def ancestor_at_depth(self, leaf_name: str, depth: int) -> str:
        """The ancestor of a leaf at the given depth (0 = root)."""
        chain = self.ancestors_of(leaf_name)  # leaf ... root
        leaf_depth = self.leaf_depth
        if not 0 <= depth <= leaf_depth:
            raise HierarchyError(f"depth {depth} out of range 0..{leaf_depth}")
        return chain[leaf_depth - depth]

    def ancestor_codes_at_depth(self, depth: int) -> tuple[np.ndarray, list[str]]:
        """For every leaf code, the index of its depth-``depth`` ancestor.

        Returns ``(codes, names)`` with ``names[codes[leaf_code]]`` being the
        ancestor node name — the rollup map used by cube computation.
        """
        names: list[str] = []
        index: dict[str, int] = {}
        codes = np.empty(self.n_leaves, dtype=np.int64)
        for leaf_code, leaf_name in enumerate(self._leaf_names):
            anc = self.ancestor_at_depth(leaf_name, depth)
            if anc not in index:
                index[anc] = len(names)
                names.append(anc)
            codes[leaf_code] = index[anc]
        return codes, names

    def __repr__(self) -> str:
        return (
            f"HierarchicalDimension({self.attribute!r}, levels={self.level_names}, "
            f"{self.n_leaves} leaves)"
        )
