"""Exceptions for the cube-space dimension substrate."""

from repro.exceptions import ReproError


class DimensionError(ReproError):
    """Base class for dimension/region/cost errors."""


class HierarchyError(DimensionError):
    """A hierarchy is malformed (ragged leaves, duplicate names, ...)."""


class RegionError(DimensionError):
    """A region value does not belong to its dimension."""


class CostError(DimensionError):
    """A cost model could not price a region."""
