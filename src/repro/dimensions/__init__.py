"""Cube-space dimensions: hierarchies, intervals, regions, costs, lattices."""

from .cost import (
    CallableCostModel,
    CellCostModel,
    CostModel,
    ProductCostModel,
    ZeroCostModel,
)
from .errors import CostError, DimensionError, HierarchyError, RegionError
from .hierarchy import HierarchicalDimension, HierarchyNode
from .interval import Interval, IntervalDimension, WindowedIntervalDimension
from .lattice import CubeSubset, ItemHierarchies, RollupMap
from .region import Region, RegionSpace

__all__ = [
    "CallableCostModel",
    "CellCostModel",
    "CostError",
    "CostModel",
    "CubeSubset",
    "DimensionError",
    "HierarchicalDimension",
    "HierarchyError",
    "HierarchyNode",
    "Interval",
    "IntervalDimension",
    "ItemHierarchies",
    "ProductCostModel",
    "Region",
    "RegionError",
    "RegionSpace",
    "RollupMap",
    "WindowedIntervalDimension",
    "ZeroCostModel",
]
