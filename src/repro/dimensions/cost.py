"""Cost queries κ_r: the price of collecting data from a region.

Section 4.1 assumes a user-provided cost table ``C(Z, Cost)`` over the
finest-grained regions, with the cost of a larger region being an aggregate
(e.g. sum) over the finest cells it contains.  Section 7.1's mail-order
experiment instead uses a *product* form: ``m * n`` where ``m`` is the number
of months in the interval and ``n`` a per-location weight.  Both appear here,
plus an escape hatch for arbitrary callables.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from .errors import CostError
from .hierarchy import HierarchicalDimension
from .interval import Interval, IntervalDimension
from .region import Region, RegionSpace


class CostModel:
    """Interface: price one region."""

    def cost(self, region: Region) -> float:
        raise NotImplementedError


class CellCostModel(CostModel):
    """κ_r = aggregate of per-finest-cell costs over the cells in r.

    Parameters
    ----------
    space:
        The region space defining dimensions and finest cells.
    cell_costs:
        Mapping from finest cell (tuple of time point / leaf name) to cost.
        Cells absent from the mapping cost 0.
    agg:
        ``"sum"`` (default), ``"max"`` or ``"avg"`` over member cells.
    """

    def __init__(
        self,
        space: RegionSpace,
        cell_costs: Mapping[tuple, float],
        agg: str = "sum",
    ):
        if agg not in ("sum", "max", "avg"):
            raise CostError(f"unsupported cost aggregate {agg!r}")
        self.space = space
        self.agg = agg
        self._cells = list(cell_costs.keys())
        self._costs = np.array([cell_costs[c] for c in self._cells], dtype=np.float64)
        self._cache: dict[Region, float] = {}

    def cost(self, region: Region) -> float:
        if region in self._cache:
            return self._cache[region]
        member = np.array(
            [self.space.contains_cell(region, cell) for cell in self._cells],
            dtype=bool,
        )
        values = self._costs[member]
        if len(values) == 0:
            result = 0.0
        elif self.agg == "sum":
            result = float(values.sum())
        elif self.agg == "max":
            result = float(values.max())
        else:
            result = float(values.mean())
        self._cache[region] = result
        return result


class ProductCostModel(CostModel):
    """κ_r = interval length x location weight (the mail-order form m*n).

    ``location_weights`` maps hierarchy *leaf* names to weights (e.g. number
    of zip code areas / 100); a node's weight is the sum over its leaves.
    """

    def __init__(
        self,
        space: RegionSpace,
        location_weights: Mapping[str, float],
        interval_dim: str | None = None,
        hierarchy_dim: str | None = None,
    ):
        self.space = space
        self._interval_idx: int | None = None
        self._hierarchy_idx: int | None = None
        for i, dim in enumerate(space.dimensions):
            if isinstance(dim, IntervalDimension) and (
                interval_dim is None or dim.attribute == interval_dim
            ):
                if self._interval_idx is None:
                    self._interval_idx = i
            elif isinstance(dim, HierarchicalDimension) and (
                hierarchy_dim is None or dim.attribute == hierarchy_dim
            ):
                if self._hierarchy_idx is None:
                    self._hierarchy_idx = i
        if self._interval_idx is None or self._hierarchy_idx is None:
            raise CostError(
                "ProductCostModel needs one interval and one hierarchical dimension"
            )
        hierarchy = space.dimensions[self._hierarchy_idx]
        missing = set(hierarchy.leaf_names) - set(location_weights)
        if missing:
            raise CostError(f"missing location weights for leaves: {sorted(missing)}")
        self._weights = dict(location_weights)
        self._hierarchy = hierarchy

    def cost(self, region: Region) -> float:
        interval = region.values[self._interval_idx]
        node = region.values[self._hierarchy_idx]
        assert isinstance(interval, Interval)
        weight = sum(self._weights[leaf] for leaf in self._hierarchy.leaves_under(str(node)))
        return float(interval.length) * weight


class CallableCostModel(CostModel):
    """κ_r computed by an arbitrary user function."""

    def __init__(self, fn: Callable[[Region], float]):
        self._fn = fn

    def cost(self, region: Region) -> float:
        return float(self._fn(region))


class ZeroCostModel(CostModel):
    """Every region is free — useful for tests and unconstrained searches."""

    def cost(self, region: Region) -> float:
        return 0.0
