"""Basic bellwether search (Section 4).

With the entire training data materialized (one block per feasible region —
see :mod:`repro.core.training_data`), the search itself is a single scan:
estimate the error of a model per region, keep the minimum-error region that
satisfies the criterion.

:class:`BasicBellwetherSearch` evaluates every region *once* and can then
answer any number of budget queries (:meth:`run`, :meth:`sweep`) from the
cached per-region profile — exactly how the Figure 7/9 budget sweeps are
produced.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import Region
from repro.exec import ParallelConfig, ParallelExecutor
from repro.ml import (
    ErrorEstimate,
    LinearRegression,
    TrainingSetEstimator,
    default_model_factory,
)
from repro.obs.catalog import (
    INCR_CACHE_HITS,
    INCR_FULL_REBUILDS,
    INCR_REGIONS_REFRESHED,
    SEARCH_REGIONS_EVALUATED,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage import StorageError, TrainingDataStore

from .exceptions import SearchError
from .task import BellwetherTask, Criterion

_TRACER = get_tracer()
_REGIONS_EVALUATED = get_registry().counter(SEARCH_REGIONS_EVALUATED)
# Shared with repro.incremental (get-or-create returns the same instrument).
_CACHE_HITS = get_registry().counter(INCR_CACHE_HITS)
_REGIONS_REFRESHED = get_registry().counter(INCR_REGIONS_REFRESHED)
_FULL_REBUILDS = get_registry().counter(INCR_FULL_REBUILDS)


@dataclass(frozen=True)
class RegionResult:
    """The evaluation of one candidate region."""

    region: Region
    cost: float
    coverage: float
    n_items: int
    error: ErrorEstimate

    @property
    def rmse(self) -> float:
        return self.error.rmse


@dataclass(frozen=True)
class BasicBellwetherResult:
    """Outcome of a basic bellwether search under one criterion."""

    bellwether: RegionResult | None
    feasible: tuple[RegionResult, ...]
    criterion: Criterion

    @property
    def found(self) -> bool:
        return self.bellwether is not None

    def indistinguishable_fraction(self, confidence: float = 0.95) -> float:
        """Fraction of feasible regions statistically tied with the winner.

        Figure 7(b)'s measure: the share of feasible regions whose error
        falls inside the P% confidence interval of the bellwether model's
        error.  Low fraction = the bellwether is nearly unique.
        """
        if self.bellwether is None or not self.feasible:
            return float("nan")
        interval = self.bellwether.error
        hits = sum(
            1 for r in self.feasible if interval.contains(r.rmse, confidence)
        )
        return hits / len(self.feasible)

    def average_error(self) -> float:
        """Mean error over feasible regions (Figure 7(a)'s "Avg Err")."""
        if not self.feasible:
            return float("nan")
        return float(np.mean([r.rmse for r in self.feasible]))


class BasicBellwetherSearch:
    """Scan-once, query-many basic bellwether search.

    Parameters
    ----------
    task:
        The problem definition (criterion's coverage bound is honoured; the
        budget can be overridden per query).
    store:
        Entire training data: one block per candidate (or feasible) region.
    costs, coverage:
        Optional precomputed per-region cost/coverage (else recomputed from
        the task / store contents).
    min_examples:
        Regions whose training set (after any item restriction) has fewer
        examples are skipped — a model can't be fit meaningfully.
    """

    def __init__(
        self,
        task: BellwetherTask,
        store: TrainingDataStore,
        costs: dict[Region, float] | None = None,
        coverage: dict[Region, float] | None = None,
        min_examples: int | None = None,
    ):
        self.task = task
        self.store = store
        # A model with fewer examples than design columns interpolates and
        # reports a deceptive near-zero training error; demand headroom.
        p = len(store.feature_names) + 1  # + intercept
        self.min_examples = min_examples if min_examples is not None else max(5, p + 3)
        self._costs = costs or {r: task.cost(r) for r in store.regions()}
        self._coverage = coverage
        # Keyed by frozenset(item_ids), or None for "all items" — None (not
        # frozenset()) so an explicit empty subset is a distinct cache entry.
        self._profile: dict[frozenset | None, list[RegionResult]] = {}
        # Store version the all-items profile was evaluated against; refresh()
        # asks the store what changed since then.
        self._profile_version: int = store.version

    # --------------------------------------------------------------- warmth

    @property
    def profile_version(self) -> int:
        """Store version the cached all-items profile was evaluated at."""
        return self._profile_version

    @property
    def costs(self) -> dict:
        """Per-region evaluation costs as currently known (a copy)."""
        return dict(self._costs)

    def has_profile(self, item_ids: Sequence | None = None) -> bool:
        """Is a profile cached for this item restriction (``None`` = all)?

        Lets callers (e.g. the query service) distinguish the warm path —
        :meth:`evaluate_all` returning a cached list without touching the
        store — from a cold evaluation, without triggering either.
        """
        key = frozenset(item_ids) if item_ids is not None else None
        return key in self._profile

    # -------------------------------------------------------------- evaluate

    def evaluate_all(
        self,
        item_ids: Sequence | None = None,
        parallel: ParallelConfig | None = None,
    ) -> list[RegionResult]:
        """One scan over the store: a RegionResult per region.

        ``item_ids`` restricts training to a subset S of items (used by
        trees/cubes); coverage is then measured against |S|.

        ``parallel`` (default: the process-wide :mod:`repro.exec` config)
        fans the per-region error estimation out over workers.  The scan
        itself stays in this process — ``store.full_scans`` counts exactly
        one — and worker fit counters merge back, so results and metrics
        are identical to a serial run.
        """
        executor = ParallelExecutor(parallel)
        key = frozenset(item_ids) if item_ids is not None else None
        if key in self._profile:
            return self._profile[key]
        restrict = np.asarray(list(item_ids)) if item_ids is not None else None
        n_total = len(restrict) if restrict is not None else self.task.n_items
        results: list[RegionResult] = []
        before = self.store.stats.snapshot()
        with _TRACER.span(
            "search.evaluate_all",
            restricted=restrict is not None,
        ) as sp:
            pending = []
            for region, block in self.store.scan():
                if restrict is not None:
                    block = block.restrict_to(restrict)
                if block.n_examples < self.min_examples:
                    continue
                pending.append((region, block))
            estimator = self.task.error_estimator
            errors = executor.map(
                lambda pair: estimator.estimate(
                    pair[1].x, pair[1].y, pair[1].weights
                ),
                pending,
            )
            for (region, block), error in zip(pending, errors):
                results.append(
                    RegionResult(
                        region=region,
                        cost=self._costs[region],
                        coverage=block.n_examples / n_total,
                        n_items=block.n_examples,
                        error=error,
                    )
                )
            sp.annotate(
                evaluated=len(results),
                full_scans=(self.store.stats - before).full_scans,
            )
        _REGIONS_EVALUATED.inc(len(results))
        self._profile[key] = results
        if key is None:
            self._profile_version = self.store.version
        return results

    def evaluate_from_tables(self, tables) -> list[RegionResult]:
        """The all-items profile from materialized cube tables — no scan.

        ``tables`` is what :func:`repro.incremental.build_cube_tables`
        returned for a cube builder over this store at its *current* version
        (the caller's contract); the root lattice level — the single
        all-items subset — holds exactly one rolled suffstats problem per
        region, so the whole profile is one batched solve with
        ``store.full_scans``/``store.region_reads`` untouched.  Errors equal
        :meth:`evaluate_all`'s training-set estimates up to float
        associativity (rolled per-cell sums versus whole-block products).

        Requires the algebraic (plain training-set) error estimator; any
        other estimator needs the raw rows and raises
        :class:`~repro.core.exceptions.SearchError`.
        """
        est = self.task.error_estimator
        if not (
            isinstance(est, TrainingSetEstimator)
            and est.model_factory is default_model_factory
        ):
            raise SearchError(
                "cube tables answer the algebraic training-set error only; "
                "this task's estimator needs raw rows — use evaluate_all()"
            )
        root = next(
            (
                t
                for t in tables
                if all(x == 0 for x in t.level) and t.n_subsets == 1
            ),
            None,
        )
        if root is None:
            raise SearchError(
                "no root-level (all-items) cube table; the builder's "
                "min_subset_size must admit the full item set"
            )
        results: list[RegionResult] = []
        with _TRACER.span("search.from_tables", regions=root.n_regions) as sp:
            cand = np.flatnonzero(root.stats.n >= self.min_examples)
            if len(cand):
                stats = root.stats.select(cand)
                sse = stats.sse()
                denom = stats.n - stats.p
                denom = np.where(denom <= 0, stats.n, denom)
                rmse = np.sqrt(sse / denom)
                dof = stats.dof
                for k, idx in enumerate(cand):
                    region = root.regions[int(idx)]
                    n = int(stats.n[k])
                    results.append(
                        RegionResult(
                            region=region,
                            cost=self._costs.setdefault(
                                region, self.task.cost(region)
                            ),
                            coverage=n / self.task.n_items,
                            n_items=n,
                            error=ErrorEstimate(
                                rmse=float(rmse[k]),
                                kind="training",
                                sse=float(sse[k]),
                                dof=int(dof[k]),
                            ),
                        )
                    )
            sp.annotate(evaluated=len(results))
        _REGIONS_EVALUATED.inc(len(results))
        self._profile[None] = results
        self._profile_version = self.store.version
        return results

    # -------------------------------------------------------------- refresh

    def refresh(
        self,
        parallel: ParallelConfig | None = None,
        tables=None,
    ) -> list[RegionResult]:
        """Bring the all-items profile up to the store's current version.

        Replays the store's changelog: only regions a delta touched are
        re-read and re-estimated (``store.read``, never a full scan);
        untouched regions keep their cached evaluations, which are identical
        to what a fresh scan would recompute because their blocks did not
        change.  A changelog gap (:class:`~repro.storage.StorageError`)
        falls back to a full re-evaluation, loudly counted.

        Restricted-item profiles are invalidated — their membership may
        shift under the delta — and lazily recomputed on next use.

        ``tables`` (materialized cube tables at the store's current version)
        short-circuits the cold path: a search with no cached profile loads
        the warm profile from them (:meth:`evaluate_from_tables`) instead of
        scanning.  A warm search ignores them — changelog replay over the
        touched regions is already scan-free.
        """
        if None not in self._profile:
            if tables is not None:
                return self.evaluate_from_tables(tables)
            return self.evaluate_all(parallel=parallel)
        try:
            deltas = self.store.deltas_since(self._profile_version)
        except StorageError:
            _FULL_REBUILDS.inc()
            self._profile.clear()
            return self.evaluate_all(parallel=parallel)
        if not deltas:
            _CACHE_HITS.inc()
            return self._profile[None]
        touched: set[Region] = set()
        dropped: set[Region] = set()
        for applied in deltas:
            for region in applied.delta.drop_regions:
                dropped.add(region)
                touched.discard(region)
            for region in applied.delta.blocks:
                dropped.discard(region)
                touched.add(region)
        by_region = {r.region: r for r in self._profile[None]}
        for region in dropped:
            by_region.pop(region, None)
        with _TRACER.span("search.refresh", touched=len(touched)) as sp:
            pending = []
            for region in touched:
                block = self.store.read(region)
                if block.n_examples < self.min_examples:
                    by_region.pop(region, None)
                    continue
                pending.append((region, block))
            executor = ParallelExecutor(parallel)
            estimator = self.task.error_estimator
            errors = executor.map(
                lambda pair: estimator.estimate(
                    pair[1].x, pair[1].y, pair[1].weights
                ),
                pending,
            )
            for (region, block), error in zip(pending, errors):
                by_region[region] = RegionResult(
                    region=region,
                    cost=self._costs.setdefault(region, self.task.cost(region)),
                    coverage=block.n_examples / self.task.n_items,
                    n_items=block.n_examples,
                    error=error,
                )
            sp.annotate(evaluated=len(pending))
        _REGIONS_EVALUATED.inc(len(pending))
        _REGIONS_REFRESHED.inc(len(touched))
        results = [
            by_region[r] for r in self.store.regions() if r in by_region
        ]
        self._profile = {None: results}
        self._profile_version = self.store.version
        return results

    # ------------------------------------------------------------------- run

    def run(
        self,
        budget: float | None = None,
        item_ids: Sequence | None = None,
    ) -> BasicBellwetherResult:
        """Find the bellwether region under the (possibly overridden) budget."""
        criterion = (
            self.task.criterion
            if budget is None
            else self.task.criterion.with_budget(budget)
        )
        with _TRACER.span("search.run", budget=budget):
            evaluated = self.evaluate_all(item_ids)
            feasible = tuple(
                r for r in evaluated if criterion.admits(r.cost, r.coverage)
            )
        best = (
            min(
                feasible,
                key=lambda r: criterion.objective(r.rmse, r.cost, r.coverage),
            )
            if feasible
            else None
        )
        return BasicBellwetherResult(best, feasible, criterion)

    def sweep(
        self,
        budgets: Sequence[float],
        item_ids: Sequence | None = None,
    ) -> list[tuple[float, BasicBellwetherResult]]:
        """run() for each budget, sharing the single evaluation scan."""
        return [(b, self.run(budget=b, item_ids=item_ids)) for b in budgets]

    # ----------------------------------------------------------------- model

    def fit_model(
        self,
        region: Region,
        item_ids: Sequence | None = None,
    ) -> LinearRegression:
        """The bellwether model h_r: fit on the region's training set."""
        block = self.store.read(region)
        if item_ids is not None:
            block = block.restrict_to(np.asarray(list(item_ids)))
        if block.n_examples < 1:
            raise SearchError(f"no training examples in region {region}")
        return LinearRegression().fit(block.x, block.y, block.weights)
