"""Relational bellwether analysis (Section 3.4, third extension).

Some relational predictive models need no feature vectors: they consume the
item's raw relational data in a region.  Here ``φ_{i,r}(DB)`` returns a
*sub-database* — item i's fact rows inside region r plus the reference rows
they touch.

Two layers:

* :meth:`RelationalBellwetherSearch.subdatabase` materializes the per-region
  sub-database (shared across items; per-item slices come free via the
  fact's ID column), so any relational learner can be plugged in through
  the :class:`RelationalLearner` protocol;
* :class:`AggregatingRelationalLearner` is the built-in reduction: it
  derives a feature vector per item from the sub-database with the stylized
  aggregate queries and delegates to the linear model — which also serves as
  the correctness oracle for the plumbing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import Region
from repro.ml import ErrorEstimate, LinearRegression
from repro.table import Database, Reference

from .exceptions import SearchError, TaskError
from .features import RegionalFeature
from .task import BellwetherTask


class RelationalLearner:
    """Interface: learn τ from a per-region sub-database.

    ``fit`` receives the region's sub-database, the training item ids and
    their targets; ``predict`` maps item ids (with data in the sub-database)
    to predictions.
    """

    def fit(self, subdb: Database, item_ids: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def predict(self, subdb: Database, item_ids: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class AggregatingRelationalLearner(RelationalLearner):
    """Reduction: aggregate the sub-database into features, fit linear LS."""

    def __init__(self, features: Sequence[RegionalFeature], id_column: str):
        if not features:
            raise TaskError("need at least one feature query")
        self.features = tuple(features)
        self.id_column = id_column
        self._model: LinearRegression | None = None

    def _featurize(self, subdb: Database, item_ids: np.ndarray) -> np.ndarray:
        fact = subdb.fact
        raw_ids = fact[self.id_column]
        columns: list[np.ndarray] = []
        for feature in self.features:
            values = feature.value_column(subdb)
            if getattr(feature, "distinct_key", None):
                ref = subdb.reference(feature.reference)  # type: ignore[attr-defined]
                fks = np.asarray(fact[ref.key])
            else:
                fks = None
            per_item = []
            for item in item_ids:
                mask = raw_ids == item
                vals = values[mask]
                if fks is not None and len(vals):
                    __, first = np.unique(fks[mask], return_index=True)
                    vals = vals[first]
                if len(vals) == 0:
                    per_item.append(np.nan)
                elif feature.func == "sum":
                    per_item.append(float(vals.sum()))
                elif feature.func == "count":
                    per_item.append(float(len(vals)))
                elif feature.func == "avg":
                    per_item.append(float(vals.mean()))
                elif feature.func == "min":
                    per_item.append(float(vals.min()))
                else:
                    per_item.append(float(vals.max()))
            columns.append(np.asarray(per_item))
        return np.column_stack(columns)

    def fit(self, subdb: Database, item_ids: np.ndarray, y: np.ndarray) -> None:
        x = self._featurize(subdb, item_ids)
        keep = ~np.isnan(x).any(axis=1)
        if keep.sum() < x.shape[1] + 2:
            raise SearchError("too few items with data to fit")
        self._model = LinearRegression().fit(x[keep], y[keep])

    def predict(self, subdb: Database, item_ids: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise SearchError("learner is not fitted")
        x = self._featurize(subdb, item_ids)
        return self._model.predict(x)


@dataclass(frozen=True)
class RelationalResult:
    region: Region
    cost: float
    n_items: int
    error: ErrorEstimate

    @property
    def rmse(self) -> float:
        return self.error.rmse


class RelationalBellwetherSearch:
    """Bellwether search for learners that consume raw relational data."""

    def __init__(self, task: BellwetherTask, learner: RelationalLearner):
        self.task = task
        self.learner = learner
        self._subdb_cache: dict[Region, Database] = {}

    # ----------------------------------------------------------- subdatabase

    def subdatabase(self, region: Region) -> Database:
        """φ_r: the fact rows inside the region plus touched reference rows."""
        if region in self._subdb_cache:
            return self._subdb_cache[region]
        db = self.task.db
        mask = self.task.space.mask(db.fact, region)
        fact = db.fact.select(mask)
        refs = []
        for name in db.reference_names:
            ref = db.reference(name)
            used = set(fact[ref.key])
            keep = np.array([k in used for k in ref.table[ref.key]], dtype=bool)
            refs.append(Reference(name, ref.table.select(keep), ref.key))
        subdb = Database(fact, refs)
        self._subdb_cache[region] = subdb
        return subdb

    def items_in(self, region: Region) -> np.ndarray:
        subdb = self.subdatabase(region)
        present = set(subdb.fact[self.task.id_column])
        ids = np.asarray(self.task.item_ids)
        return ids[[i in present for i in ids]]

    # ---------------------------------------------------------------- search

    def evaluate(self, region: Region, n_folds: int = 5, seed: int = 0) -> RelationalResult | None:
        """k-fold CV of the relational learner on one region's sub-database."""
        subdb = self.subdatabase(region)
        item_ids = self.items_in(region)
        if len(item_ids) < 2 * n_folds:
            return None
        y_all = dict(
            zip(np.asarray(self.task.item_ids), self.task.target_values())
        )
        y = np.array([y_all[i] for i in item_ids])
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(item_ids))
        folds = np.array_split(order, n_folds)
        fold_rmses = []
        for test in folds:
            train_mask = np.ones(len(item_ids), dtype=bool)
            train_mask[test] = False
            try:
                self.learner.fit(subdb, item_ids[train_mask], y[train_mask])
                pred = self.learner.predict(subdb, item_ids[test])
            except SearchError:
                return None
            fold_rmses.append(float(np.sqrt(np.mean((pred - y[test]) ** 2))))
        est = ErrorEstimate(
            rmse=float(np.mean(fold_rmses)),
            kind="cv",
            fold_rmses=tuple(fold_rmses),
            dof=n_folds - 1,
        )
        return RelationalResult(
            region, self.task.cost(region), len(item_ids), est
        )

    def run(
        self,
        budget: float | None = None,
        n_folds: int = 5,
        seed: int = 0,
        candidate_regions: Sequence[Region] | None = None,
    ) -> RelationalResult:
        criterion = (
            self.task.criterion
            if budget is None
            else self.task.criterion.with_budget(budget)
        )
        candidates = (
            list(candidate_regions)
            if candidate_regions is not None
            else self.task.space.all_regions()
        )
        best: RelationalResult | None = None
        n_items = self.task.n_items
        for region in candidates:
            result = self.evaluate(region, n_folds=n_folds, seed=seed)
            if result is None:
                continue
            if not criterion.admits(result.cost, result.n_items / n_items):
                continue
            if best is None or result.rmse < best.rmse:
                best = result
        if best is None:
            raise SearchError("no feasible region for the relational search")
        return best
