"""Exceptions for the bellwether core."""

from repro.exceptions import ReproError


class BellwetherError(ReproError):
    """Base class for bellwether-analysis errors."""


class TaskError(BellwetherError):
    """A task specification is inconsistent."""


class SearchError(BellwetherError):
    """A search could not produce a result (no feasible regions, ...)."""
