"""Combinatorial bellwether analysis (Section 3.4, first extension).

A candidate is a *combination* ``c ⊆ R`` of regions: data is collected from
every member region and the feature queries aggregate over the union of
their data.  The search space is 2^R; the paper poses the problem and leaves
the search technique open, noting it "requires further techniques to
efficiently search through the space".  We provide a budgeted greedy
forward search — the standard baseline for subset selection — with an
optional restart from each single feasible region.

Costing: member regions may overlap (prefix windows nest), so a
combination's cost is the cost of the *union of finest cells* it covers,
priced by a per-cell cost mapping (the same input the random-sampling
baseline uses).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import Region
from repro.ml import ErrorEstimate

from .exceptions import SearchError
from .task import BellwetherTask
from .training_data import TrainingDataGenerator


@dataclass(frozen=True)
class CombinationResult:
    """The selected combination of regions and its model quality."""

    regions: tuple[Region, ...]
    cost: float
    n_items: int
    error: ErrorEstimate

    @property
    def rmse(self) -> float:
        return self.error.rmse


class GreedyCombinationSearch:
    """Budgeted greedy search over combinations of candidate regions.

    Parameters
    ----------
    task:
        The bellwether task (supplies the error estimator and item set).
    generator:
        A :class:`TrainingDataGenerator` for the task; used to aggregate
        features over arbitrary fact-row subsets (union of regions).
    cell_costs:
        Cost per finest-grained cell, keyed by dimension-order tuples
        (time point, leaf name, ...).  A combination pays for each covered
        cell once.
    candidate_regions:
        The pool to draw members from (default: all candidate regions).
    min_examples:
        Minimum training examples for a combination to be scored.
    """

    def __init__(
        self,
        task: BellwetherTask,
        generator: TrainingDataGenerator,
        cell_costs: Mapping[tuple, float],
        candidate_regions: Sequence[Region] | None = None,
        min_examples: int | None = None,
    ):
        if not cell_costs:
            raise SearchError("cell_costs must not be empty")
        self.task = task
        self.generator = generator
        self.candidates = list(
            candidate_regions if candidate_regions is not None
            else generator.all_regions()
        )
        p = len(task.feature_names) + 1
        self.min_examples = min_examples if min_examples is not None else max(5, p + 3)
        # Precompute per-region row masks and covered-cell bitmaps.
        self._cells = list(cell_costs)
        self._cell_cost = np.array(
            [cell_costs[c] for c in self._cells], dtype=np.float64
        )
        self._region_rows: dict[Region, np.ndarray] = {}
        self._region_cells: dict[Region, np.ndarray] = {}
        space = task.space
        for region in self.candidates:
            self._region_rows[region] = generator._region_mask(region)
            member = np.array(
                [space.contains_cell(region, cell) for cell in self._cells],
                dtype=bool,
            )
            self._region_cells[region] = member

    # ------------------------------------------------------------------ score

    def _score(self, row_mask: np.ndarray) -> tuple[ErrorEstimate | None, int]:
        block = self.generator.block_for_mask(row_mask)
        if block.n_examples < self.min_examples:
            return None, block.n_examples
        return self.task.error_estimator.estimate(block.x, block.y), block.n_examples

    def _cost(self, cell_mask: np.ndarray) -> float:
        return float(self._cell_cost[cell_mask].sum())

    def evaluate(self, regions: Sequence[Region]) -> CombinationResult:
        """Score one explicit combination (cost, coverage, model error)."""
        rows = np.zeros_like(next(iter(self._region_rows.values())))
        cells = np.zeros(len(self._cells), dtype=bool)
        for region in regions:
            if region not in self._region_rows:
                raise SearchError(f"{region} is not in the candidate pool")
            rows |= self._region_rows[region]
            cells |= self._region_cells[region]
        error, n_items = self._score(rows)
        if error is None:
            raise SearchError(
                f"combination covers only {n_items} items (< {self.min_examples})"
            )
        return CombinationResult(tuple(regions), self._cost(cells), n_items, error)

    # ------------------------------------------------------------------- run

    def run(
        self,
        budget: float,
        max_regions: int = 4,
    ) -> CombinationResult:
        """Greedy forward selection under the budget.

        Starts from the best feasible single region, then repeatedly adds
        the member that minimizes the combination's error while the union's
        cell cost stays within budget; stops when no addition improves the
        error or ``max_regions`` is reached.
        """
        best: CombinationResult | None = None
        # Seed: best single region within budget.
        for region in self.candidates:
            cost = self._cost(self._region_cells[region])
            if cost > budget:
                continue
            error, n_items = self._score(self._region_rows[region])
            if error is None:
                continue
            if best is None or error.rmse < best.rmse:
                best = CombinationResult((region,), cost, n_items, error)
        if best is None:
            raise SearchError(f"no single region feasible under budget {budget}")
        # Grow greedily.
        chosen = list(best.regions)
        rows = self._region_rows[chosen[0]].copy()
        cells = self._region_cells[chosen[0]].copy()
        while len(chosen) < max_regions:
            step_best: CombinationResult | None = None
            step_state: tuple[np.ndarray, np.ndarray] | None = None
            for region in self.candidates:
                if region in chosen:
                    continue
                new_cells = cells | self._region_cells[region]
                cost = self._cost(new_cells)
                if cost > budget:
                    continue
                new_rows = rows | self._region_rows[region]
                error, n_items = self._score(new_rows)
                if error is None:
                    continue
                if step_best is None or error.rmse < step_best.rmse:
                    step_best = CombinationResult(
                        (*chosen, region), cost, n_items, error
                    )
                    step_state = (new_rows, new_cells)
            if step_best is None or step_best.rmse >= best.rmse:
                break
            best = step_best
            rows, cells = step_state
            chosen = list(step_best.regions)
        return best
