"""Multi-instance bellwether analysis (Section 3.4, second extension).

Here ``φ_{i,r}(DB)`` returns the *set* of feature vectors of item i's fact
rows in region r — no aggregation.  Each training example is a bag of
instances plus the item's target, the setting the paper links to
multi-instance learning.

Two layers:

* :meth:`MultiInstanceBellwetherSearch.bags_for_region` exposes the raw bags
  so any MI learner can be plugged in;
* the built-in learner reduces MI regression to the standard case with the
  classic bag-embedding: per instance column mean/min/max plus bag size,
  fed (with the item-table features) to the same linear model and error
  estimators as the rest of the library.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import Region
from repro.ml import ErrorEstimate, LinearRegression

from .exceptions import SearchError, TaskError
from .task import BellwetherTask


@dataclass(frozen=True)
class BagResult:
    """Evaluation of one region under the multi-instance reduction."""

    region: Region
    cost: float
    n_items: int
    error: ErrorEstimate

    @property
    def rmse(self) -> float:
        return self.error.rmse


class MultiInstanceBellwetherSearch:
    """Bellwether search where regions yield bags of instances.

    Parameters
    ----------
    task:
        Supplies the database, region space, item table, target, cost model,
        criterion and error estimator.  The task's *regional features* are
        ignored — instances come from ``instance_columns`` instead.
    instance_columns:
        Numeric fact-table columns forming each instance vector.
    """

    def __init__(self, task: BellwetherTask, instance_columns: Sequence[str]):
        if not instance_columns:
            raise TaskError("instance_columns must be non-empty")
        fact = task.db.fact
        fact.schema.require(*instance_columns)
        for col in instance_columns:
            if not fact.schema.type_of(col).is_numeric:
                raise TaskError(f"instance column {col!r} must be numeric")
        self.task = task
        self.instance_columns = tuple(instance_columns)
        self._instances = np.column_stack(
            [np.asarray(fact[c], dtype=np.float64) for c in instance_columns]
        )
        ids = np.asarray(task.item_ids)
        id_code = {i: k for k, i in enumerate(ids)}
        raw = fact[task.id_column]
        keep = np.array([i in id_code for i in raw], dtype=bool)
        self._instances = self._instances[keep]
        self._item_codes = np.array([id_code[i] for i in raw[keep]], dtype=np.int64)
        self._keep = keep
        self._ids = ids
        self._y = task.target_values()
        self._item_x = task.item_encoder.matrix(ids)

    # ------------------------------------------------------------------ bags

    def bags_for_region(self, region: Region) -> dict:
        """φ_{i,r} as raw bags: item id -> (n_instances, d) array."""
        mask = self.task.space.mask(self.task.db.fact, region)[self._keep]
        bags: dict = {}
        items = self._item_codes[mask]
        rows = self._instances[mask]
        order = np.argsort(items, kind="stable")
        items = items[order]
        rows = rows[order]
        starts = np.flatnonzero(np.diff(items, prepend=-1))
        bounds = np.append(starts, len(items))
        for b in range(len(starts)):
            code = items[bounds[b]]
            bags[self._ids[code]] = rows[bounds[b]:bounds[b + 1]]
        return bags

    # ------------------------------------------------------------- embedding

    @property
    def embedded_feature_names(self) -> tuple[str, ...]:
        names = list(self.task.item_encoder.feature_names)
        for col in self.instance_columns:
            names += [f"bag_mean_{col}", f"bag_min_{col}", f"bag_max_{col}"]
        names.append("bag_size")
        return tuple(names)

    def embed_region(self, region: Region) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(item_ids, X, y) under the mean/min/max/size bag embedding."""
        bags = self.bags_for_region(region)
        if not bags:
            d = len(self.embedded_feature_names)
            return np.empty(0, dtype=self._ids.dtype), np.empty((0, d)), np.empty(0)
        item_ids = np.array(list(bags))
        code_of = {i: k for k, i in enumerate(self._ids)}
        rows = [code_of[i] for i in item_ids]
        parts = [self._item_x[rows]]
        stats = []
        for bag in bags.values():
            row = []
            for j in range(bag.shape[1]):
                row += [bag[:, j].mean(), bag[:, j].min(), bag[:, j].max()]
            row.append(float(len(bag)))
            stats.append(row)
        parts.append(np.asarray(stats))
        x = np.hstack(parts)
        y = self._y[rows]
        return item_ids, x, y

    # ---------------------------------------------------------------- search

    def evaluate(self, region: Region, min_examples: int | None = None) -> BagResult | None:
        p = len(self.embedded_feature_names) + 1
        min_examples = min_examples if min_examples is not None else max(5, p + 3)
        __, x, y = self.embed_region(region)
        if len(y) < min_examples:
            return None
        est = self.task.error_estimator.estimate(x, y)
        return BagResult(region, self.task.cost(region), len(y), est)

    def run(self, budget: float | None = None) -> BagResult:
        """The minimum-error feasible region under the MI reduction."""
        criterion = (
            self.task.criterion
            if budget is None
            else self.task.criterion.with_budget(budget)
        )
        n_items = self.task.n_items
        best: BagResult | None = None
        for region in self.task.space.all_regions():
            result = self.evaluate(region)
            if result is None:
                continue
            if not criterion.admits(result.cost, result.n_items / n_items):
                continue
            if best is None or result.rmse < best.rmse:
                best = result
        if best is None:
            raise SearchError("no feasible region for the multi-instance search")
        return best

    def fit_model(self, region: Region) -> LinearRegression:
        __, x, y = self.embed_region(region)
        if len(y) < 1:
            raise SearchError(f"no bags in region {region}")
        return LinearRegression().fit(x, y)
