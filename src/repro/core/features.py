"""Target and feature generation queries (Sections 3.2 and 4.1).

Targets
-------
``τ_i(DB)`` returns the label of item ``i`` — e.g. total first-year worldwide
profit.  :class:`AggregateTargetQuery` expresses the common aggregate form;
:class:`TableTargetQuery` accepts precomputed labels.

Regional features
-----------------
``φ_{i,r}(DB)`` has three stylized aggregate-select-join forms (Section 4.1):

* :class:`FactAggregate` — ``α_f(F.A) σ_{ID=i, Z∈r} F``
* :class:`JoinAggregate` — ``α_f(T.A) ((σ_{ID=i, Z∈r} F) ⋈ T)``
* :class:`DistinctJoinAggregate` — ``α_f(T.A) ((π_FK σ_{ID=i, Z∈r} F) ⋈ T)``
  (each matching reference row counted once)

Each query computes *per-fact-row values* once; the per-region aggregation is
done by :mod:`repro.core.training_data`, either naively per region or through
the CUBE-style rewrite of Section 4.2.

Item-table features
-------------------
Item-table features are region-independent and always available
(Section 3.2).  :class:`ItemFeatureEncoder` turns them into a numeric design
block: numeric attributes pass through, categorical attributes are one-hot
encoded (first level dropped; the model carries an intercept).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.table import Database, Table, natural_join
from repro.table.schema import ColumnType

from .exceptions import TaskError
from .rowindex import RowIndex

_SUPPORTED_FUNCS = ("sum", "count", "min", "max", "avg")


def _check_func(func: str) -> None:
    if func not in _SUPPORTED_FUNCS:
        raise TaskError(f"unsupported aggregate {func!r}; known: {_SUPPORTED_FUNCS}")


# ---------------------------------------------------------------------- targets


class TargetQuery:
    """Interface: label every item (τ in the paper)."""

    def values(self, db: Database, item_ids: np.ndarray) -> np.ndarray:
        """Target value per requested item id (aligned with ``item_ids``)."""
        raise NotImplementedError


@dataclass(frozen=True)
class AggregateTargetQuery(TargetQuery):
    """τ_i = f(F.A) over *all* of item i's fact rows.

    The motivating example's "first-year worldwide profit" is
    ``AggregateTargetQuery("sum", "profit", id_column="item")``.
    """

    func: str
    column: str
    id_column: str

    def __post_init__(self) -> None:
        _check_func(self.func)

    def values(self, db: Database, item_ids: np.ndarray) -> np.ndarray:
        from repro.table import AggregateSpec, group_by

        grouped = group_by(
            db.fact, [self.id_column], [AggregateSpec(self.func, self.column, alias="y")]
        )
        lookup = dict(zip(grouped[self.id_column], grouped["y"]))
        missing = [i for i in item_ids if i not in lookup]
        if missing:
            raise TaskError(f"items with no fact rows have no target: {missing[:5]}")
        return np.array([lookup[i] for i in item_ids], dtype=np.float64)


class TableTargetQuery(TargetQuery):
    """τ given as a precomputed (ID, Y) table."""

    def __init__(self, table: Table, id_column: str, y_column: str):
        table.schema.require(id_column, y_column)
        self._lookup = dict(zip(table[id_column], table[y_column]))

    def values(self, db: Database, item_ids: np.ndarray) -> np.ndarray:
        missing = [i for i in item_ids if i not in self._lookup]
        if missing:
            raise TaskError(f"no target for items: {missing[:5]}")
        return np.array([self._lookup[i] for i in item_ids], dtype=np.float64)


# --------------------------------------------------------------------- features


@dataclass(frozen=True)
class RegionalFeature:
    """Base for the three stylized feature-query forms."""

    func: str
    column: str
    alias: str

    def __post_init__(self) -> None:
        _check_func(self.func)
        if not self.alias:
            raise TaskError("feature alias must be non-empty")

    @property
    def distinct_key(self) -> str | None:
        """Foreign-key column to dedupe on, or None for forms 1 and 2."""
        return None

    def value_column(self, db: Database) -> np.ndarray:
        """Per-fact-row values of the aggregated attribute."""
        raise NotImplementedError


@dataclass(frozen=True)
class FactAggregate(RegionalFeature):
    """Form 1: aggregate a fact-table measure, e.g. regional profit."""

    def value_column(self, db: Database) -> np.ndarray:
        return np.asarray(db.fact.column(self.column), dtype=np.float64)


@dataclass(frozen=True)
class JoinAggregate(RegionalFeature):
    """Form 2: aggregate a reference attribute joined per fact row.

    E.g. regional max ad size: every matching OrderTable row contributes its
    ad's size.
    """

    reference: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.reference:
            raise TaskError("JoinAggregate needs a reference table name")

    def value_column(self, db: Database) -> np.ndarray:
        ref = db.reference(self.reference)
        joined = natural_join(
            db.fact.project([ref.key]).with_column("__row__", np.arange(db.fact.n_rows)),
            ref.table.project([ref.key, self.column]),
            on=[ref.key],
        )
        out = np.empty(db.fact.n_rows, dtype=np.float64)
        out[:] = np.nan
        out[joined["__row__"]] = joined[self.column]
        if np.isnan(out).any():
            raise TaskError(
                f"fact rows dangle against reference {self.reference!r}; "
                "run Database.check_integrity()"
            )
        return out


@dataclass(frozen=True)
class DistinctJoinAggregate(RegionalFeature):
    """Form 3: aggregate over *distinct* reference rows (π_FK before join).

    E.g. total ad size with each advertisement counted once, however many
    orders it produced.
    """

    reference: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.reference:
            raise TaskError("DistinctJoinAggregate needs a reference table name")

    @property
    def distinct_key(self) -> str:
        return self.reference  # resolved to the key column via the database

    def key_column(self, db: Database) -> np.ndarray:
        """Per-fact-row foreign-key codes to dedupe on."""
        ref = db.reference(self.reference)
        return np.asarray(db.fact.column(ref.key))

    def value_column(self, db: Database) -> np.ndarray:
        # Same per-row lookup as form 2; dedup happens during aggregation.
        return JoinAggregate(
            self.func, self.column, self.alias, reference=self.reference
        ).value_column(db)


# ------------------------------------------------------------- item features


class ItemFeatureEncoder:
    """Numeric design block from item-table features.

    Numeric columns pass through; categorical (string) columns one-hot encode
    with the lexicographically-first level dropped.
    """

    def __init__(self, item_table: Table, id_column: str, attributes: Sequence[str]):
        item_table.schema.require(id_column, *attributes)
        self.id_column = id_column
        self.attributes = tuple(attributes)
        ids = item_table[id_column]
        if len(set(ids)) != len(ids):
            raise TaskError("duplicate item ids in item table")
        self._index = RowIndex(np.asarray(ids))
        names: list[str] = []
        columns: list[np.ndarray] = []
        for attr in attributes:
            col = item_table.column(attr)
            if item_table.schema.type_of(attr) is ColumnType.STR:
                levels = sorted(set(map(str, col)))
                for level in levels[1:]:
                    names.append(f"{attr}={level}")
                    columns.append((col.astype(str) == level).astype(np.float64))
            else:
                names.append(attr)
                columns.append(np.asarray(col, dtype=np.float64))
        self.feature_names: tuple[str, ...] = tuple(names)
        self._matrix = (
            np.column_stack(columns)
            if columns
            else np.empty((item_table.n_rows, 0))
        )

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def matrix(self, item_ids: np.ndarray) -> np.ndarray:
        """Feature rows aligned with the requested item ids."""
        try:
            rows = self._index.rows_of(np.asarray(item_ids))
        except KeyError as exc:
            raise TaskError(f"unknown item id {exc}") from None
        return self._matrix[rows]
