"""Bellwether cubes (Section 6): a bellwether region per cube subset of items.

A bellwether cube is ``{<S, r_S>}`` for every *significant* cube subset ``S``
(|S| ≥ K) induced by the item hierarchies.  Three construction algorithms:

* **naive** — one basic bellwether search per subset (reads every region's
  block once per subset);
* **single_scan** — one pass over the entire training data, keeping a
  ``MinError[S]`` entry per subset in memory (Lemma 2);
* **optimized** — the single scan plus Theorem 1: per region, sufficient
  statistics are computed once per *base cell* and then merged up the item
  hierarchy lattice, so each subset's model error costs O(p³) instead of a
  refit over its rows.  Implies training-set error (the algebraic measure).
  The default path batches the algebra (``StackedSuffStats``): every level's
  (subset, region) models are fit by one stacked LAPACK solve;
  ``optimized_serial`` keeps the per-pair solve as the reference baseline.

Prediction for a new item (Section 6.2): among the significant subsets
containing the item, pick the one whose bellwether model has the lowest
*upper confidence bound* of error; use its region and model.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import CubeSubset, ItemHierarchies, Region
from repro.ml import (
    ErrorEstimate,
    LinearRegression,
    LinearSuffStats,
    RowProducts,
    StackedSuffStats,
    TrainingSetEstimator,
    add_intercept,
    default_model_factory,
)
from repro.obs.catalog import CUBE_SUBSETS_BUILT
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage import TrainingDataStore

from .exceptions import SearchError, TaskError
from .rowindex import RowIndex
from .task import BellwetherTask

_TRACER = get_tracer()
_SUBSETS_BUILT = get_registry().counter(CUBE_SUBSETS_BUILT)


def _first_strict_min(values: np.ndarray) -> int:
    """Index chosen by the sequential rule ``if v < best: best = v``.

    The first value seeds ``best`` unconditionally — even a NaN seed, which
    then never loses a comparison.  Replicating that exactly keeps the
    batched paths' winners identical to the serial loops'.
    """
    if np.isnan(values[0]):
        return 0
    return int(np.flatnonzero(values == np.nanmin(values))[0])


@dataclass(frozen=True)
class SubsetEntry:
    """One cell of the bellwether cube."""

    subset: CubeSubset
    n_items: int
    region: Region | None
    error: ErrorEstimate | None

    @property
    def found(self) -> bool:
        return self.region is not None


class BellwetherCubeResult:
    """The constructed cube: subset -> (bellwether region, error)."""

    def __init__(
        self,
        entries: dict[CubeSubset, SubsetEntry],
        hierarchies: ItemHierarchies,
        confidence: float,
    ):
        self._entries = entries
        self.hierarchies = hierarchies
        self.confidence = confidence

    @property
    def subsets(self) -> tuple[CubeSubset, ...]:
        return tuple(self._entries)

    def entry(self, subset: CubeSubset) -> SubsetEntry:
        try:
            return self._entries[subset]
        except KeyError:
            raise SearchError(f"subset {subset} is not in the cube") from None

    def __contains__(self, subset: CubeSubset) -> bool:
        return subset in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------ rollup/drilldown

    def crosstab(self, level: tuple[int, ...]) -> list[SubsetEntry]:
        """All cube cells at one lattice level — one rollup/drilldown view.

        Mirrors the cross-tabular interface of Section 6.2: each returned
        entry is a cell showing its bellwether region and model error.
        """
        return [e for s, e in self._entries.items() if s.level == level]

    def crosstab_text(
        self,
        level: tuple[int, ...],
        show: str = "region",
        row_hierarchy: int = 0,
        col_hierarchy: int = 1,
    ) -> str:
        """A 2-D cross tabulation of one lattice level (Section 6.2's UI).

        Rows and columns are nodes of two chosen item hierarchies; each cell
        shows the subset's bellwether region (``show="region"``) or its
        model error (``show="error"``).  Cube subsets over more than two
        hierarchies collapse the remaining ones (they are fixed per level).
        """
        if show not in ("region", "error"):
            raise SearchError(f"show must be 'region' or 'error', got {show!r}")
        entries = self.crosstab(level)
        if not entries:
            return f"(no significant subsets at level {level})"
        n_h = len(self.hierarchies.hierarchies)
        if not (0 <= row_hierarchy < n_h and 0 <= col_hierarchy < n_h):
            raise SearchError("hierarchy indices out of range")
        if row_hierarchy == col_hierarchy:
            raise SearchError("row and column hierarchies must differ")
        rows = sorted({e.subset.nodes[row_hierarchy] for e in entries})
        cols = sorted({e.subset.nodes[col_hierarchy] for e in entries})
        # Index entries by (row node, col node) once; first entry wins when
        # collapsed hierarchies make several subsets share a cell.
        by_cell: dict[tuple, SubsetEntry] = {}
        for e in entries:
            by_cell.setdefault(
                (e.subset.nodes[row_hierarchy], e.subset.nodes[col_hierarchy]), e
            )
        def cell(r, c):
            e = by_cell.get((r, c))
            if e is None:
                return ""
            if not e.found:
                return "-"
            if show == "region":
                return str(e.region)
            return f"{e.error.rmse:.4g}"
        grid = [["", *cols]] + [[r, *[cell(r, c) for c in cols]] for r in rows]
        widths = [max(len(row[j]) for row in grid) for j in range(len(cols) + 1)]
        lines = [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in grid
        ]
        lines.insert(1, "-+-".join("-" * w for w in widths))
        return "\n".join(lines)

    def drilldown(self, subset: CubeSubset) -> list[SubsetEntry]:
        """Entries exactly one level finer on some hierarchy, nested in subset."""
        out: list[SubsetEntry] = []
        for s, e in self._entries.items():
            diffs = [sd - d for sd, d in zip(s.level, subset.level)]
            if sorted(diffs) != [0] * (len(diffs) - 1) + [1]:
                continue
            contained = all(
                node == parent or h.parent_of(node) == parent
                for h, node, parent in zip(
                    self.hierarchies.hierarchies, s.nodes, subset.nodes
                )
            )
            if contained:
                out.append(e)
        return out

    # --------------------------------------------------------------- predict

    def choose_subset(self, item_attrs: dict) -> SubsetEntry:
        """Pick the enclosing subset with the lowest upper error bound."""
        candidates = [
            self._entries[s]
            for s in self.hierarchies.subsets_containing(item_attrs)
            if s in self._entries and self._entries[s].found
        ]
        if not candidates:
            raise SearchError(
                f"no significant subset with a bellwether contains {item_attrs}"
            )
        return min(candidates, key=lambda e: e.error.upper(self.confidence))


class BellwetherCubeBuilder:
    """Builds bellwether cubes with any of the three algorithms.

    Parameters
    ----------
    task, store:
        Problem definition and the entire training data.
    hierarchies:
        Item hierarchies over item-table attributes (Figure 5).
    min_subset_size:
        The significance threshold K: subsets with fewer items are skipped.
    confidence:
        The P% level used by prediction's upper-confidence-bound rule.
    min_examples:
        Minimum (region ∩ subset) examples for a model to count.
    """

    def __init__(
        self,
        task: BellwetherTask,
        store: TrainingDataStore,
        hierarchies: ItemHierarchies,
        min_subset_size: int = 10,
        confidence: float = 0.95,
        min_examples: int | None = None,
        item_ids: Sequence | None = None,
    ):
        for h in hierarchies.hierarchies:
            task.item_table.schema.require(h.attribute)
        self.task = task
        self.store = store
        self.hierarchies = hierarchies
        self.min_subset_size = min_subset_size
        self.confidence = confidence
        p = len(store.feature_names) + 1  # + intercept
        self.min_examples = min_examples if min_examples is not None else max(5, p + 3)
        cell_of_all, self._cells = hierarchies.encode_items(task.item_table)
        all_ids = np.asarray(task.item_ids)
        if item_ids is None:
            keep_rows = np.arange(len(all_ids))
        else:
            wanted = np.asarray(list(item_ids))
            keep_rows = np.flatnonzero(np.isin(all_ids, wanted))
            if len(keep_rows) != len(np.unique(wanted)):
                raise TaskError("item_ids contains ids not in the item table")
        self._ids = all_ids[keep_rows]
        self._cell_of_item = cell_of_all[keep_rows]
        self._index = RowIndex(self._ids)
        # Significant subsets per level (the iceberg step of Section 6.3).
        self._levels: list = []
        for level in hierarchies.levels():
            rm = hierarchies.rollup_map(level, self._cells)
            counts = np.bincount(
                rm.subset_of_base[self._cell_of_item], minlength=len(rm.subsets)
            )
            keep = [
                (s_idx, subset, int(counts[s_idx]))
                for s_idx, subset in enumerate(rm.subsets)
                if counts[s_idx] >= self.min_subset_size
            ]
            if keep:
                self._levels.append((level, rm, keep))

    @property
    def significant_subsets(self) -> list[CubeSubset]:
        return [s for __, __, keep in self._levels for __, s, __ in keep]

    @property
    def n_levels(self) -> int:
        """Lattice levels holding at least one significant subset.

        The batched optimized build issues at most one batched solve per
        level (the ``ml.linear.batched_solves`` counter is bounded by this).
        """
        return len(self._levels)

    # ------------------------------------------------------------------ build

    def build(self, method: str = "optimized") -> BellwetherCubeResult:
        before = self.store.stats.snapshot()
        with _TRACER.span(
            "cube.build",
            method=method,
            subsets=len(self.significant_subsets),
        ) as sp:
            if method == "naive":
                entries = self._build_naive()
            elif method == "single_scan":
                entries = self._build_single_scan()
            elif method == "optimized":
                entries = self._build_optimized()
            elif method == "optimized_serial":
                entries = self._build_optimized_serial()
            else:
                raise TaskError(f"unknown cube method {method!r}")
            delta = self.store.stats - before
            sp.annotate(
                full_scans=delta.full_scans, region_reads=delta.region_reads
            )
        _SUBSETS_BUILT.inc(len(entries))
        return BellwetherCubeResult(entries, self.hierarchies, self.confidence)

    def incremental(self, cache_dir=None, mode: str = "exact"):
        """A delta-aware maintainer for this builder's cube.

        Its ``refresh()`` returns the same
        :class:`BellwetherCubeResult` as ``build("optimized")`` — bit for
        bit in ``"exact"`` mode — while replaying store deltas onto cached
        sufficient statistics instead of rescanning.  ``cache_dir``
        persists the statistics next to the store, keyed by store version.
        See :class:`repro.incremental.IncrementalCubeMaintainer`.
        """
        from repro.incremental import IncrementalCubeMaintainer

        return IncrementalCubeMaintainer(self, cache_dir=cache_dir, mode=mode)

    # ------------------------------------------------------------ cube tables

    def geometry_signature(self) -> dict:
        """A JSON-stable fingerprint of everything the cube's shape depends on.

        Materialized cube tables are keyed on this (plus the store version):
        two builders with equal signatures produce identical table layouts —
        same lattice levels, same significant subsets in the same order, same
        base-cell -> subset rollup maps, same item set, same thresholds.
        """

        def digest(arr: np.ndarray) -> str:
            arr = np.ascontiguousarray(arr)
            return hashlib.sha256(
                arr.dtype.str.encode() + arr.tobytes()
            ).hexdigest()

        return {
            "n_cells": len(self._cells),
            "p": len(self.store.feature_names) + 1,
            "min_examples": int(self.min_examples),
            "min_subset_size": int(self.min_subset_size),
            "items": digest(self._ids),
            "levels": [
                {
                    "level": list(level),
                    "keep": [int(s_idx) for s_idx, __s, __n in keep],
                    "rollup": digest(rm.subset_of_base),
                }
                for level, rm, keep in self._levels
            ],
        }

    def build_from_tables(self, tables: Sequence) -> BellwetherCubeResult:
        """The optimized cube from materialized per-level suffstats tables.

        ``tables`` is one :class:`~repro.storage.cubetables.LevelTable` per
        significant lattice level, in this builder's level order (what
        :func:`repro.incremental.build_cube_tables` returns for a matching
        geometry signature).  No facts are read — ``store.full_scans`` and
        ``store.region_reads`` stay untouched — yet the result is
        bit-for-bit what ``build("optimized")`` computes at the same store
        version: the tables hold the same rolled statistics, the batched
        solve is deterministic per matrix, and the winner replay walks
        candidates in the same store-region order.
        """
        if len(tables) != len(self._levels):
            raise TaskError(
                f"got {len(tables)} cube tables for {len(self._levels)} "
                "significant levels; rebuild the tables for this geometry"
            )
        best: dict[CubeSubset, tuple[Region, ErrorEstimate]] = {}
        with _TRACER.span(
            "cube.build",
            method="tables",
            subsets=len(self.significant_subsets),
        ):
            for (level, __rm, keep), table in zip(self._levels, tables):
                if tuple(table.level) != tuple(level) or table.n_subsets != len(
                    keep
                ):
                    raise TaskError(
                        f"cube table for level {table.level} does not match "
                        f"builder level {level}; rebuild the tables"
                    )
                n_regions = table.n_regions
                if n_regions == 0:
                    continue
                n_mat = table.stats.n.reshape(n_regions, len(keep))
                cand = n_mat >= self.min_examples  # (n_regions, n_keep)
                if not cand.any():
                    continue
                rmse, sse, dof = self._training_errors(
                    table.stats.select(np.flatnonzero(cand.ravel()))
                )
                reg_pos, keep_pos = np.nonzero(cand)
                for j, (__s_idx, subset, __n) in enumerate(keep):
                    hits = np.flatnonzero(keep_pos == j)
                    if not len(hits):
                        continue
                    k = hits[_first_strict_min(rmse[hits])]
                    est = ErrorEstimate(
                        rmse=float(rmse[k]),
                        kind="training",
                        sse=float(sse[k]),
                        dof=int(dof[k]),
                    )
                    best[subset] = (table.regions[reg_pos[k]], est)
        entries = self._entries_from_best(best)
        _SUBSETS_BUILT.inc(len(entries))
        return BellwetherCubeResult(entries, self.hierarchies, self.confidence)

    # ------------------------------------------------------------------ naive

    def _build_naive(self) -> dict[CubeSubset, SubsetEntry]:
        entries: dict[CubeSubset, SubsetEntry] = {}
        for __, rm, keep in self._levels:
            for s_idx, subset, n_items in keep:
                member_ids = self._ids[
                    rm.subset_of_base[self._cell_of_item] == s_idx
                ]
                best_region, best_err = None, None
                for region in self.store.regions():
                    block = self.store.read(region).restrict_to(member_ids)
                    if block.n_examples < self.min_examples:
                        continue
                    est = self.task.error_estimator.estimate(
                        block.x, block.y, block.weights
                    )
                    if best_err is None or est.rmse < best_err.rmse:
                        best_region, best_err = region, est
                entries[subset] = SubsetEntry(subset, n_items, best_region, best_err)
        return entries

    # ------------------------------------------------------------ single scan

    def _batchable(self) -> bool:
        """Is the task's error estimator the one Theorem 1 makes algebraic?

        Only the plain training-set estimator (default OLS factory) reduces
        to sufficient statistics; anything else (cross-validation, custom
        model factories) keeps the per-subset estimate path.
        """
        est = self.task.error_estimator
        return (
            isinstance(est, TrainingSetEstimator)
            and est.model_factory is default_model_factory
        )

    @staticmethod
    def _training_errors(
        stats: StackedSuffStats,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched (rmse, sse, dof) triplets — one solve for the whole stack."""
        sse = stats.sse()
        denom = stats.n - stats.p
        denom = np.where(denom <= 0, stats.n, denom)
        rmse = np.sqrt(sse / denom)
        return rmse, sse, stats.dof

    def _build_single_scan(self) -> dict[CubeSubset, SubsetEntry]:
        best: dict[CubeSubset, tuple[Region, ErrorEstimate]] = {}
        batchable = self._batchable()
        for region, block in self.store.scan():
            block = block.restrict_to(self._ids)
            if block.n_examples == 0:
                continue
            rows_item = self._index.rows_of(block.item_ids)
            cell_of_row = self._cell_of_item[rows_item]
            design = add_intercept(block.x) if batchable else None
            for __, rm, keep in self._levels:
                subset_of_row = rm.subset_of_base[cell_of_row]
                counts = np.bincount(subset_of_row, minlength=len(rm.subsets))
                if batchable:
                    # Collect the qualifying subsets' sufficient statistics
                    # first, then fit them all with one batched solve per
                    # (region, level) instead of a Python-level fit each.
                    # Statistics come from the same rows in the same order
                    # as the per-subset estimator, so results are identical.
                    pending: list[LinearSuffStats] = []
                    pending_subsets: list[CubeSubset] = []
                    for s_idx, subset, __n in keep:
                        if counts[s_idx] < self.min_examples:
                            continue
                        mask = subset_of_row == s_idx
                        pending.append(
                            LinearSuffStats.from_data(
                                design[mask],
                                block.y[mask],
                                None
                                if block.weights is None
                                else block.weights[mask],
                            )
                        )
                        pending_subsets.append(subset)
                    if not pending:
                        continue
                    rmse, sse, dof = self._training_errors(
                        StackedSuffStats.from_stats(pending)
                    )
                    for j, subset in enumerate(pending_subsets):
                        if subset not in best or rmse[j] < best[subset][1].rmse:
                            est = ErrorEstimate(
                                rmse=float(rmse[j]),
                                kind="training",
                                sse=float(sse[j]),
                                dof=int(dof[j]),
                            )
                            best[subset] = (region, est)
                    continue
                for s_idx, subset, __n in keep:
                    if counts[s_idx] < self.min_examples:
                        continue
                    mask = subset_of_row == s_idx
                    est = self.task.error_estimator.estimate(
                        block.x[mask],
                        block.y[mask],
                        None if block.weights is None else block.weights[mask],
                    )
                    if subset not in best or est.rmse < best[subset][1].rmse:
                        best[subset] = (region, est)
        return self._entries_from_best(best)

    def _entries_from_best(
        self, best: dict[CubeSubset, tuple[Region, ErrorEstimate]]
    ) -> dict[CubeSubset, SubsetEntry]:
        entries: dict[CubeSubset, SubsetEntry] = {}
        for __, rm, keep in self._levels:
            for __, subset, n_items in keep:
                region, est = best.get(subset, (None, None))
                entries[subset] = SubsetEntry(subset, n_items, region, est)
        return entries

    # -------------------------------------------------------------- optimized

    def _build_optimized(self) -> dict[CubeSubset, SubsetEntry]:
        """Single scan + Theorem 1 rollup, batched: ≤ 1 solve per level.

        The scan collects one :class:`~repro.ml.StackedSuffStats` of
        per-base-cell statistics per region; after it, every lattice level
        rolls *all* regions' cells up to (region, subset) problems with one
        scatter-add and fits them with one stacked ``np.linalg.solve`` — the
        whole cube costs one batched solve per lattice level instead of a
        Python-level fit per (subset, region) pair.

        Model errors are training-set RMSE (the algebraic measure the
        theorem covers); the winning subset entries report chi-square-interval
        estimates exactly like :class:`~repro.ml.TrainingSetEstimator`.
        """
        best: dict[CubeSubset, tuple[Region, ErrorEstimate]] = {}
        n_cells = len(self._cells)
        regions: list[Region] = []
        per_region: list[StackedSuffStats] = []
        for region, block in self.store.scan():
            block = block.restrict_to(self._ids)
            if block.n_examples == 0:
                continue
            rows_item = self._index.rows_of(block.item_ids)
            cell_of_row = self._cell_of_item[rows_item]
            regions.append(region)
            per_region.append(
                self._cell_stats_stack(block, cell_of_row, n_cells)
            )
        if regions:
            with _TRACER.span(
                "cube.rollup", regions=len(regions), cells=n_cells
            ):
                self._rollup_batched(regions, per_region, best)
        return self._entries_from_best(best)

    @staticmethod
    def _cell_stats_stack(
        block, cell_of_row: np.ndarray, n_cells: int
    ) -> StackedSuffStats:
        """One region's per-base-cell g statistics as a dense stack.

        Each present cell's statistics come from the same
        :meth:`LinearSuffStats.from_data` call the per-problem path makes,
        so the stacked rollup accumulates identical addends (absent cells
        contribute exact zeros) and the batched cube matches
        ``optimized_serial`` bit for bit.
        """
        design = add_intercept(block.x)
        stack = StackedSuffStats.zeros(n_cells, design.shape[1])
        order = np.argsort(cell_of_row, kind="stable")
        sorted_cells = cell_of_row[order]
        starts = np.flatnonzero(np.diff(sorted_cells, prepend=-1))
        bounds = np.append(starts, len(sorted_cells))
        for b_idx in range(len(starts)):
            rows = order[bounds[b_idx]:bounds[b_idx + 1]]
            cell = int(sorted_cells[bounds[b_idx]])
            s = LinearSuffStats.from_data(
                design[rows],
                block.y[rows],
                None if block.weights is None else block.weights[rows],
            )
            stack.set_row(cell, s)
        return stack

    def _rollup_batched(
        self,
        regions: list[Region],
        per_region: list[StackedSuffStats],
        best: dict[CubeSubset, tuple[Region, ErrorEstimate]],
    ) -> None:
        """Roll every region's base-cell stats up each level, solving once."""
        n_regions = len(regions)
        n_cells = len(self._cells)
        all_cells = StackedSuffStats.concatenate(per_region)
        for __, rm, keep in self._levels:
            n_subsets = len(rm.subsets)
            # (region, cell) problem -> (region, subset) problem, region-major
            target = (
                np.arange(n_regions)[:, None] * n_subsets
                + rm.subset_of_base[None, :]
            ).ravel()
            rolled = all_cells.rollup(target, n_regions * n_subsets)
            keep_sidx = np.array([s_idx for s_idx, __s, __n in keep])
            n_mat = rolled.n.reshape(n_regions, n_subsets)[:, keep_sidx]
            cand = n_mat >= self.min_examples  # (n_regions, n_keep)
            if not cand.any():
                continue
            flat = (
                np.arange(n_regions)[:, None] * n_subsets + keep_sidx[None, :]
            )
            rmse, sse, dof = self._training_errors(rolled.select(flat[cand]))
            reg_pos, keep_pos = np.nonzero(cand)
            for j, (__s_idx, subset, __n) in enumerate(keep):
                hits = np.flatnonzero(keep_pos == j)
                if not len(hits):
                    continue
                k = hits[_first_strict_min(rmse[hits])]
                est = ErrorEstimate(
                    rmse=float(rmse[k]),
                    kind="training",
                    sse=float(sse[k]),
                    dof=int(dof[k]),
                )
                best[subset] = (regions[reg_pos[k]], est)

    # ------------------------------------------------- optimized (per-problem)

    def _build_optimized_serial(self) -> dict[CubeSubset, SubsetEntry]:
        """The pre-batching optimized path: one Python-level solve per
        (subset, region) pair.

        Kept as the reference implementation for the batched-equivalence
        tests and as the recorded serial baseline the bench-regression CI
        step compares the batched kernel against.
        """
        best: dict[CubeSubset, tuple[Region, ErrorEstimate]] = {}
        n_cells = len(self._cells)
        for region, block in self.store.scan():
            block = block.restrict_to(self._ids)
            if block.n_examples == 0:
                continue
            rows_item = self._index.rows_of(block.item_ids)
            cell_of_row = self._cell_of_item[rows_item]
            design = add_intercept(block.x)
            # g per base cell, one grouped pass over the block.
            order = np.argsort(cell_of_row, kind="stable")
            sorted_cells = cell_of_row[order]
            starts = np.flatnonzero(np.diff(sorted_cells, prepend=-1))
            cell_stats: dict[int, LinearSuffStats] = {}
            bounds = np.append(starts, len(sorted_cells))
            for b_idx in range(len(starts)):
                rows = order[bounds[b_idx]:bounds[b_idx + 1]]
                cell_stats[int(sorted_cells[bounds[b_idx]])] = (
                    LinearSuffStats.from_data(
                        design[rows],
                        block.y[rows],
                        None if block.weights is None else block.weights[rows],
                    )
                )
            with _TRACER.span("cube.rollup", cells=len(cell_stats)):
                self._rollup_region(region, cell_stats, best)
        return self._entries_from_best(best)

    def _rollup_region(
        self,
        region: Region,
        cell_stats: dict[int, "LinearSuffStats"],
        best: dict[CubeSubset, tuple[Region, ErrorEstimate]],
    ) -> None:
        """Theorem 1: merge one region's base-cell stats up every level."""
        for __, rm, keep in self._levels:
            # Merge base-cell stats into subset stats (the rollup).
            subset_stats: dict[int, LinearSuffStats] = {}
            for cell, stats in cell_stats.items():
                s_idx = int(rm.subset_of_base[cell])
                if s_idx in subset_stats:
                    subset_stats[s_idx] = subset_stats[s_idx] + stats
                else:
                    subset_stats[s_idx] = stats
            for s_idx, subset, __n in keep:
                stats = subset_stats.get(s_idx)
                if stats is None or stats.n < self.min_examples:
                    continue
                est = ErrorEstimate(
                    rmse=stats.rmse(),
                    kind="training",
                    sse=stats.sse(),
                    dof=stats.dof,
                )
                if subset not in best or est.rmse < best[subset][1].rmse:
                    best[subset] = (region, est)


class CubePredictor:
    """Item-centric prediction backed by a bellwether cube."""

    def __init__(
        self,
        result: BellwetherCubeResult,
        task: BellwetherTask,
        store: TrainingDataStore,
        item_ids: Sequence | None = None,
    ):
        self.result = result
        self.task = task
        self.store = store
        item_table = task.item_table
        self._attr_of: dict[str, dict] = {
            h.attribute: dict(
                zip(item_table[task.id_column], item_table[h.attribute])
            )
            for h in result.hierarchies.hierarchies
        }
        self._model_cache: dict[tuple[CubeSubset, Region], LinearRegression] = {}
        # Models are fit on the *training* item set only (matters when the
        # cube was built on a train fold and test items sit in the store).
        self._train_ids = (
            np.asarray(task.item_ids)
            if item_ids is None
            else np.asarray(list(item_ids))
        )

    def _attrs(self, item_id) -> dict:
        return {a: str(v[item_id]) for a, v in self._attr_of.items()}

    def region_for(self, item_id) -> Region:
        return self.result.choose_subset(self._attrs(item_id)).region

    def _subset_member_ids(self, subset: CubeSubset) -> np.ndarray:
        mask = self.result.hierarchies.member_mask(self.task.item_table, subset)
        members = np.asarray(self.task.item_ids)[mask]
        return members[np.isin(members, self._train_ids)]

    def predict(self, item_id) -> float:
        """Predict τ_i via the chosen subset's bellwether region and model."""
        entry = self.result.choose_subset(self._attrs(item_id))
        key = (entry.subset, entry.region)
        if key not in self._model_cache:
            block = self.store.read(entry.region).restrict_to(
                self._subset_member_ids(entry.subset)
            )
            self._model_cache[key] = LinearRegression().fit(block.x, block.y)
        block = self.store.read(entry.region)
        hit = np.flatnonzero(block.item_ids == item_id)
        if len(hit):
            return float(self._model_cache[key].predict(block.x[hit[0]])[0])
        # No data for the item in the chosen region: fall back to the
        # subset's training mean (the budget bought nothing usable).
        member_block = self.store.read(entry.region).restrict_to(
            self._subset_member_ids(entry.subset)
        )
        if member_block.n_examples:
            return float(member_block.y.mean())
        raise SearchError(f"cannot predict item {item_id!r}")
