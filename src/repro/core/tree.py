"""Bellwether trees (Section 5): item-centric bellwethers by recursive splits.

A bellwether tree looks like a regression tree over *item-table* features,
but its leaves hold a *bellwether region* (and the model built on it) instead
of a constant prediction.  A split is good if giving each child partition its
own bellwether region reduces the weighted error:

    Goodness(c) = |S|·Error(h_r | S) − Σ_p |S_p|·Error(h_{r_p} | S_p)

Two construction algorithms (Figure 4), equivalent by Lemma 1:

* **naive** — solves a basic bellwether problem per (node, split, partition),
  re-reading the entire training data each time;
* **rf** — RainForest-style: one scan of the entire training data per tree
  level, accumulating the sufficient statistic
  ``{<MinError[v,c,p], Size[v,c,p]>}`` for every active node.

Split-quality errors default to training-set RMSE (cheap and, for linear
models, close to cross-validation — Figure 7(c)); numeric splits use prefix
sufficient statistics so every threshold costs O(p²), not a refit.  Each
level's scan only collects sufficient statistics — every model of the level
(node errors and all split partitions on all regions) is fit by one stacked
solve (``StackedSuffStats``), with results identical to per-problem fits.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.dimensions import Region
from repro.ml import (
    ErrorEstimate,
    LinearRegression,
    LinearSuffStats,
    StackedSuffStats,
    add_intercept,
)
from repro.obs.catalog import TREE_NODES_SPLIT, TREE_SPLIT_EVALS
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage import RegionBlock, TrainingDataStore
from repro.table.schema import ColumnType

from .exceptions import SearchError, TaskError
from .rowindex import RowIndex
from .task import BellwetherTask

_TRACER = get_tracer()
_SPLIT_EVALS = get_registry().counter(TREE_SPLIT_EVALS)
_NODES_SPLIT = get_registry().counter(TREE_NODES_SPLIT)


# --------------------------------------------------------------------- splits


@dataclass(frozen=True)
class SplitCandidate:
    """One candidate splitting criterion 〈A_k〉 or 〈A_k, b〉."""

    attr: str
    kind: str  # "cat" or "num"
    threshold: float | None = None
    categories: tuple | None = None

    def n_children(self) -> int:
        return len(self.categories) if self.kind == "cat" else 2

    def route(self, value) -> int:
        """Child index for one item's attribute value."""
        if self.kind == "cat":
            try:
                return self.categories.index(value)
            except ValueError:
                raise SearchError(
                    f"value {value!r} not seen when splitting on {self.attr!r}"
                ) from None
        return 0 if float(value) < self.threshold else 1

    def partition(self, values: np.ndarray) -> np.ndarray:
        """Child index per item (vectorized route)."""
        if self.kind == "cat":
            index = {v: k for k, v in enumerate(self.categories)}
            return np.array([index[v] for v in values], dtype=np.int64)
        return (np.asarray(values, dtype=np.float64) >= self.threshold).astype(np.int64)

    def __str__(self) -> str:
        if self.kind == "cat":
            return f"<{self.attr}>"
        return f"<{self.attr} >= {self.threshold:g}>"


@dataclass
class TreeNode:
    """A node of a bellwether tree."""

    item_ids: np.ndarray
    depth: int
    split: SplitCandidate | None = None
    children: list["TreeNode"] = field(default_factory=list)
    region: Region | None = None
    model: LinearRegression | None = None
    error: ErrorEstimate | None = None
    # construction-time scratch: best (error, region) over the scan
    _best_rmse: float = np.inf

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def n_items(self) -> int:
        return len(self.item_ids)


# ---------------------------------------------------------------------- tree


class BellwetherTree:
    """A constructed bellwether tree (use :class:`BellwetherTreeBuilder`)."""

    def __init__(
        self,
        root: TreeNode,
        task: BellwetherTask,
        store: TrainingDataStore,
        split_attrs: tuple[str, ...],
    ):
        self.root = root
        self.task = task
        self.store = store
        self.split_attrs = split_attrs
        item_table = task.item_table
        self._attr_of: dict = {}
        for attr in split_attrs:
            col = item_table.column(attr)
            self._attr_of[attr] = dict(zip(item_table[task.id_column], col))

    # ---------------------------------------------------------------- shape

    def leaves(self) -> list[TreeNode]:
        out: list[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(node.children)
        return out

    @property
    def n_levels(self) -> int:
        """Number of levels (root level = 1)."""
        def depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(depth(c) for c in node.children)
        return depth(self.root)

    def describe(self) -> str:
        """Human-readable tree dump (splits and leaf bellwether regions)."""
        lines: list[str] = []
        def walk(node: TreeNode, prefix: str) -> None:
            if node.is_leaf:
                lines.append(
                    f"{prefix}leaf: {node.n_items} items -> {node.region} "
                    f"(rmse {node.error.rmse:.4g})"
                )
            else:
                lines.append(f"{prefix}{node.split} [{node.n_items} items]")
                for k, child in enumerate(node.children):
                    walk(child, prefix + f"  [{k}] ")
        walk(self.root, "")
        return "\n".join(lines)

    # -------------------------------------------------------------- predict

    def route(self, attrs: dict) -> TreeNode:
        """Send an item (by its item-table features) down to a leaf."""
        node = self.root
        while not node.is_leaf:
            value = attrs.get(node.split.attr)
            if value is None:
                raise SearchError(f"missing split attribute {node.split.attr!r}")
            node = node.children[node.split.route(value)]
        return node

    def route_item(self, item_id) -> TreeNode:
        attrs = {a: self._attr_of[a][item_id] for a in self.split_attrs}
        return self.route(attrs)

    def region_for(self, item_id) -> Region:
        """The bellwether region prescribed for this item."""
        return self.route_item(item_id).region

    def predict(self, item_id) -> float:
        """Predict τ_i: route to a leaf, read φ_{i,r} from its region.

        Falls back to the root's bellwether region when the item has no data
        in the leaf's region, and to the leaf's mean target when it has no
        data in either (budget spent but nothing collected).
        """
        leaf = self.route_item(item_id)
        for region in (leaf.region, self.root.region):
            if region is None:
                continue
            block = self.store.read(region)
            hit = np.flatnonzero(block.item_ids == item_id)
            if len(hit):
                model = leaf.model if region is leaf.region else None
                if model is None:
                    model = LinearRegression().fit(block.x, block.y)
                return float(model.predict(block.x[hit[0]])[0])
        fallback_block = self.store.read(leaf.region)
        if fallback_block.n_examples:
            return float(fallback_block.y.mean())
        raise SearchError(f"cannot predict item {item_id!r}: no data anywhere")


# -------------------------------------------------------------------- builder


class BellwetherTreeBuilder:
    """Builds bellwether trees with either construction algorithm.

    Parameters
    ----------
    task, store:
        Problem definition and the entire training data (feasible regions).
    split_attrs:
        Item-table attributes considered for splits (default: the task's
        item-feature attributes).
    min_items:
        Termination threshold: nodes with fewer items become leaves.
    max_depth:
        Maximum number of split levels (root = depth 0).
    max_numeric_splits:
        Cap on numeric thresholds per attribute, taken at percentiles
        (the paper suggests ~50; default 16 keeps tests fast).
    min_relative_goodness:
        A split must reduce the weighted error by at least this fraction of
        ``|S| * Error(h_r | S)`` to be taken — a cheap stand-in for the
        paper's post-hoc MDL pruning that stops noise-driven splits.
    use_prefix_stats:
        Evaluate numeric splits via cumulative sufficient statistics
        (fast path) instead of refitting per threshold; results agree.
    min_examples:
        Minimum examples for a (region, partition) model to count.
    """

    def __init__(
        self,
        task: BellwetherTask,
        store: TrainingDataStore,
        split_attrs: Sequence[str] | None = None,
        min_items: int = 20,
        max_depth: int = 4,
        max_numeric_splits: int = 16,
        use_prefix_stats: bool = True,
        min_examples: int | None = None,
        min_relative_goodness: float = 0.05,
    ):
        self.task = task
        self.store = store
        self.split_attrs = tuple(split_attrs or task.item_feature_attrs)
        if not self.split_attrs:
            raise TaskError("bellwether tree needs at least one split attribute")
        self.min_items = min_items
        self.max_depth = max_depth
        self.max_numeric_splits = max_numeric_splits
        self.use_prefix_stats = use_prefix_stats
        self.min_relative_goodness = min_relative_goodness
        p = len(store.feature_names) + 1  # + intercept
        self.min_examples = min_examples if min_examples is not None else max(5, p + 3)
        item_table = task.item_table
        self._ids = np.asarray(item_table[task.id_column])
        self._attr_values: dict[str, np.ndarray] = {}
        self._attr_kind: dict[str, str] = {}
        for attr in self.split_attrs:
            col = item_table.column(attr)
            if item_table.schema.type_of(attr) is ColumnType.STR:
                self._attr_kind[attr] = "cat"
                self._attr_values[attr] = col
            else:
                self._attr_kind[attr] = "num"
                self._attr_values[attr] = np.asarray(col, dtype=np.float64)
        self._index = RowIndex(self._ids)

    # ------------------------------------------------------------ public API

    def build(
        self,
        method: str = "rf",
        item_ids: Sequence | None = None,
        memory_budget_rows: int = 200_000,
    ) -> BellwetherTree:
        """Construct the tree with ``"rf"``, ``"naive"`` or ``"hybrid"``.

        ``item_ids`` restricts the training item set (e.g. the train fold of
        an item-centric cross-validation); routing still works for any item.

        ``"hybrid"`` is the RF-hybrid refinement Section 5.2 points to:
        during each level's scan, any active node whose restricted training
        data fits in ``memory_budget_rows`` caches it, and its whole subtree
        is then built in memory — no further scans of the entire training
        data for that branch.  Produces the same tree as ``"rf"``.
        """
        root_ids = (
            self._ids.copy() if item_ids is None else np.asarray(list(item_ids))
        )
        missing = ~self._index.contains(root_ids)
        if missing.any():
            raise TaskError(f"unknown item ids: {list(root_ids[missing][:5])}")
        root = TreeNode(item_ids=root_ids, depth=0)
        before = self.store.stats.snapshot()
        with _TRACER.span(
            "tree.build", method=method, items=len(root_ids)
        ) as sp:
            if method == "rf":
                self._build_rf(root)
            elif method == "naive":
                self._build_naive(root)
            elif method == "hybrid":
                self._build_rf(root, memory_budget_rows=memory_budget_rows)
            else:
                raise TaskError(f"unknown construction method {method!r}")
            tree = BellwetherTree(root, self.task, self.store, self.split_attrs)
            with _TRACER.span("tree.finalize_leaves", leaves=len(tree.leaves())):
                self._finalize_leaves(tree)
            sp.annotate(
                levels=tree.n_levels,
                full_scans=(self.store.stats - before).full_scans,
            )
        return tree

    # -------------------------------------------------------------- candidates

    def _candidate_splits(self, item_ids: np.ndarray) -> list[SplitCandidate]:
        rows = self._index.rows_of(item_ids)
        out: list[SplitCandidate] = []
        for attr in self.split_attrs:
            values = self._attr_values[attr][rows]
            if self._attr_kind[attr] == "cat":
                cats = tuple(sorted(set(map(str, values))))
                if len(cats) >= 2:
                    out.append(SplitCandidate(attr, "cat", categories=cats))
            else:
                distinct = np.unique(values)
                if len(distinct) < 2:
                    continue
                midpoints = (distinct[:-1] + distinct[1:]) / 2.0
                if len(midpoints) > self.max_numeric_splits:
                    take = np.linspace(
                        0, len(midpoints) - 1, self.max_numeric_splits
                    ).astype(int)
                    midpoints = midpoints[np.unique(take)]
                out.extend(
                    SplitCandidate(attr, "num", threshold=float(b)) for b in midpoints
                )
        return out

    def _partition_rows(
        self, split: SplitCandidate, item_ids: np.ndarray
    ) -> np.ndarray:
        rows = self._index.rows_of(item_ids)
        values = self._attr_values[split.attr][rows]
        if split.kind == "cat":
            values = values.astype(str)
        return split.partition(values)

    # ----------------------------------------------------------------- naive

    def _node_bellwether(
        self, item_ids: np.ndarray, store: TrainingDataStore | None = None
    ) -> tuple[Region | None, float]:
        """min_r Error(h_r | S) by re-reading every region (naive path).

        Every feasible region's statistics are collected first and fit by
        one stacked solve; picking the first strict minimum in region order
        reproduces the serial loop's winner exactly.
        """
        store = store if store is not None else self.store
        pending: list[LinearSuffStats] = []
        regions: list[Region] = []
        for region in store.regions():
            block = store.read(region).restrict_to(item_ids)
            if block.n_examples < self.min_examples:
                continue
            pending.append(
                LinearSuffStats.from_data(
                    add_intercept(block.x), block.y, block.weights
                )
            )
            regions.append(region)
        if not pending:
            return None, np.inf
        errs = StackedSuffStats.from_stats(pending).rmse()
        finite = np.isfinite(errs)
        if not finite.any():
            return None, np.inf
        m = errs[finite].min()
        k = int(np.flatnonzero(errs == m)[0])
        return regions[k], float(m)

    def _build_naive(self, node: TreeNode, store: TrainingDataStore | None = None) -> None:
        store = store if store is not None else self.store
        with _TRACER.span("tree.node", depth=node.depth, items=node.n_items):
            self._naive_node(node, store)

    def _naive_node(self, node: TreeNode, store: TrainingDataStore) -> None:
        node.region, node._best_rmse = self._node_bellwether(node.item_ids, store)
        if (
            node.n_items < self.min_items
            or node.depth >= self.max_depth
            or node.region is None
        ):
            return
        floor = self.min_relative_goodness * node.n_items * node._best_rmse
        best_split, best_goodness, best_children = None, floor, None
        for split in self._candidate_splits(node.item_ids):
            child_of_item = self._partition_rows(split, node.item_ids)
            children_ids = [
                node.item_ids[child_of_item == p] for p in range(split.n_children())
            ]
            if any(len(c) == 0 for c in children_ids):
                continue
            total = 0.0
            feasible = True
            for ids in children_ids:
                __, err = self._node_bellwether(ids, store)
                if not np.isfinite(err):
                    feasible = False
                    break
                total += len(ids) * err
            if not feasible:
                continue
            goodness = node.n_items * node._best_rmse - total
            if goodness > best_goodness + 1e-12:
                best_split, best_goodness, best_children = split, goodness, children_ids
        if best_split is None:
            return
        node.split = best_split
        _NODES_SPLIT.inc()
        node.children = [
            TreeNode(item_ids=ids, depth=node.depth + 1) for ids in best_children
        ]
        for child in node.children:
            self._build_naive(child, store)

    # -------------------------------------------------------------------- rf

    def _build_rf(
        self, root: TreeNode, memory_budget_rows: int | None = None
    ) -> None:
        n_regions = len(self.store.regions())
        active = [root]
        while active:
            # One scan of the entire training data per level (Lemma 1).
            with _TRACER.span(
                "tree.level", level=active[0].depth, nodes=len(active)
            ):
                active = self._rf_level(active, n_regions, memory_budget_rows)

    def _rf_level(
        self,
        active: list[TreeNode],
        n_regions: int,
        memory_budget_rows: int | None,
    ) -> list[TreeNode]:
        """Process one tree level: a single scan decides every active node."""
        per_node_splits = {
            id(node): self._candidate_splits(node.item_ids) for node in active
        }
        per_node_partition = {
            id(node): {
                k: self._partition_rows(split, node.item_ids)
                for k, split in enumerate(per_node_splits[id(node)])
            }
            for node in active
        }
        per_node_index = {
            id(node): RowIndex(node.item_ids) for node in active
        }
        min_error: dict[tuple[int, int, int], float] = {}
        node_best: dict[int, tuple[float, Region | None]] = {
            id(node): (np.inf, None) for node in active
        }
        # RF-hybrid: nodes small enough to hold in memory cache their
        # restricted blocks during this scan; their subtrees then build
        # without any further scans of the entire training data.
        cacheable = {
            id(node)
            for node in active
            if memory_budget_rows is not None
            and node.n_items * n_regions <= memory_budget_rows
        }
        cache: dict[int, dict[Region, RegionBlock]] = {
            key: {} for key in cacheable
        }
        # The scan only *collects* sufficient statistics; all the models of
        # this level (node errors and every split partition's error on every
        # region) are then fit by a single stacked solve, and the scan's
        # sequential min-updates replay over the batched errors in order.
        pending_stats: list[LinearSuffStats] = []
        pending_slots: list[tuple] = []
        for region, block in self.store.scan():
            for node in active:
                sub = block.restrict_to(node.item_ids)
                if id(node) in cacheable:
                    cache[id(node)][region] = sub
                if sub.n_examples >= self.min_examples:
                    pending_stats.append(
                        LinearSuffStats.from_data(
                            add_intercept(sub.x), sub.y, sub.weights
                        )
                    )
                    pending_slots.append(("node", id(node), region))
                if (
                    node.n_items < self.min_items
                    or node.depth >= self.max_depth
                ):
                    continue
                child_rows = None  # sub's rows within the node, lazily
                for c_idx, split in enumerate(per_node_splits[id(node)]):
                    child_of_item = per_node_partition[id(node)][c_idx]
                    if child_rows is None:
                        child_rows = per_node_index[id(node)].rows_of(
                            sub.item_ids
                        )
                    stats_per_child = self._split_stats_on_block(
                        split, sub, child_of_item[child_rows]
                    )
                    for p, stats in enumerate(stats_per_child):
                        if stats is not None:
                            pending_stats.append(stats)
                            pending_slots.append(("split", id(node), c_idx, p))
        if pending_stats:
            errors = StackedSuffStats.from_stats(pending_stats).rmse()
            for slot, err in zip(pending_slots, errors):
                if slot[0] == "node":
                    __, key, region = slot
                    if err < node_best[key][0]:
                        node_best[key] = (float(err), region)
                else:
                    __, key, c_idx, p = slot
                    s = (key, c_idx, p)
                    if err < min_error.get(s, np.inf):
                        min_error[s] = float(err)
        next_active: list[TreeNode] = []
        for node in active:
            node._best_rmse, node.region = (
                node_best[id(node)][0],
                node_best[id(node)][1],
            )
            if (
                node.n_items < self.min_items
                or node.depth >= self.max_depth
                or node.region is None
            ):
                continue
            floor = (
                self.min_relative_goodness * node.n_items * node._best_rmse
            )
            best_split, best_goodness, best_children = None, floor, None
            for c_idx, split in enumerate(per_node_splits[id(node)]):
                child_of_item = per_node_partition[id(node)][c_idx]
                children_ids = [
                    node.item_ids[child_of_item == p]
                    for p in range(split.n_children())
                ]
                if any(len(c) == 0 for c in children_ids):
                    continue
                total = 0.0
                feasible = True
                for p, ids in enumerate(children_ids):
                    err = min_error.get((id(node), c_idx, p), np.inf)
                    if not np.isfinite(err):
                        feasible = False
                        break
                    total += len(ids) * err
                if not feasible:
                    continue
                goodness = node.n_items * node._best_rmse - total
                if goodness > best_goodness + 1e-12:
                    best_split, best_goodness, best_children = (
                        split,
                        goodness,
                        children_ids,
                    )
            if best_split is None:
                continue
            node.split = best_split
            _NODES_SPLIT.inc()
            node.children = [
                TreeNode(item_ids=ids, depth=node.depth + 1)
                for ids in best_children
            ]
            if id(node) in cacheable:
                # finish this subtree entirely in memory
                from repro.storage import MemoryStore

                mem = MemoryStore(cache[id(node)], self.store.feature_names)
                for child in node.children:
                    self._build_naive(child, store=mem)
            else:
                next_active.extend(node.children)
        return next_active

    def _split_stats_on_block(
        self,
        split: SplitCandidate,
        block: RegionBlock,
        child_of_row: np.ndarray,
    ) -> list[LinearSuffStats | None]:
        """Per-partition statistics on one region's (restricted) block.

        Returns ``None`` for partitions below ``min_examples``; the caller
        fits everything else in one batched solve at the end of the scan.
        """
        _SPLIT_EVALS.inc()
        if block.n_examples == 0:
            return [None] * split.n_children()
        if (
            split.kind == "num"
            and self.use_prefix_stats
            and split.n_children() == 2
        ):
            return self._two_way_stats_prefix(child_of_row, block)
        out: list[LinearSuffStats | None] = []
        for p in range(split.n_children()):
            mask = child_of_row == p
            if mask.sum() < self.min_examples:
                out.append(None)
            else:
                out.append(
                    LinearSuffStats.from_data(
                        add_intercept(block.x[mask]),
                        block.y[mask],
                        None if block.weights is None else block.weights[mask],
                    )
                )
        return out

    def _two_way_stats_prefix(
        self, child_of_row: np.ndarray, block: RegionBlock
    ) -> list[LinearSuffStats | None]:
        """Binary-split statistics from one pair of merged statistics.

        Sorting rows so the left partition is a prefix lets both partitions'
        statistics come from one cumulative pass (and the right side by
        subtraction) — the Theorem 1 idea applied inside the tree.
        """
        order = np.argsort(child_of_row, kind="stable")
        x = add_intercept(block.x[order])
        y = block.y[order]
        w = None if block.weights is None else block.weights[order]
        k = int((child_of_row == 0).sum())
        total = LinearSuffStats.from_data(x, y, w)
        left = (
            LinearSuffStats.from_data(x[:k], y[:k], None if w is None else w[:k])
            if k
            else LinearSuffStats.zeros(x.shape[1])
        )
        right = total - left
        return [
            left if left.n >= self.min_examples else None,
            right if right.n >= self.min_examples else None,
        ]

    # --------------------------------------------------------------- pruning

    def build_pruned(
        self,
        method: str = "rf",
        item_ids: Sequence | None = None,
        validation_fraction: float = 0.25,
        seed: int = 0,
    ) -> BellwetherTree:
        """Construct a tree on a train split, then reduced-error prune it.

        Section 5.1 calls for standard post-construction pruning (the paper
        cites MDL pruning); we use the classic validation-set variant: an
        internal node is collapsed to a leaf whenever its own bellwether
        model predicts the held-out items at least as well as its subtree.
        """
        if not 0.0 < validation_fraction < 1.0:
            raise TaskError(
                f"validation_fraction must be in (0, 1), got {validation_fraction}"
            )
        ids = (
            self._ids.copy() if item_ids is None else np.asarray(list(item_ids))
        )
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(ids))
        n_val = max(1, int(len(ids) * validation_fraction))
        val_ids = ids[order[:n_val]]
        train_ids = ids[order[n_val:]]
        tree = self.build(method=method, item_ids=train_ids)
        self.prune(tree, val_ids)
        return tree

    def prune(self, tree: BellwetherTree, validation_ids: Sequence) -> None:
        """Reduced-error prune ``tree`` in place against held-out items."""
        val_ids = np.asarray(list(validation_ids))
        y = self.task.target_values()
        y_of = dict(zip(np.asarray(self.task.item_ids), y))

        def node_prediction(node: TreeNode, item_id) -> float:
            """Predict with the node treated as a leaf."""
            if node.region is None:
                node.region, node._best_rmse = self._node_bellwether(node.item_ids)
            if node.region is None:
                return float("nan")
            block = self.store.read(node.region)
            train = block.restrict_to(node.item_ids)
            if train.n_examples < 1:
                return float("nan")
            model = LinearRegression().fit(train.x, train.y)
            hit = np.flatnonzero(block.item_ids == item_id)
            if len(hit):
                return float(model.predict(block.x[hit[0]])[0])
            return float(train.y.mean())

        def subtree_prediction(node: TreeNode, item_id) -> float:
            current = node
            while not current.is_leaf:
                value = tree._attr_of[current.split.attr][item_id]
                current = current.children[current.split.route(value)]
            return node_prediction(current, item_id)

        def sse(values: list[tuple[float, float]]) -> float:
            return float(
                np.sum([(pred - actual) ** 2 for pred, actual in values])
            )

        def walk(node: TreeNode, routed: np.ndarray) -> None:
            if node.is_leaf or len(routed) == 0:
                return
            buckets: list[list] = [[] for __ in node.children]
            for item_id in routed:
                value = tree._attr_of[node.split.attr][item_id]
                try:
                    buckets[node.split.route(value)].append(item_id)
                except SearchError:
                    continue  # category unseen in the train split
            for child, bucket in zip(node.children, buckets):
                walk(child, np.asarray(bucket))
            as_subtree = [(subtree_prediction(node, i), y_of[i]) for i in routed]
            as_leaf = [(node_prediction(node, i), y_of[i]) for i in routed]
            if any(np.isnan(p) for p, __ in as_leaf):
                return
            if sse(as_leaf) <= sse(as_subtree):
                node.split = None
                node.children = []

        walk(tree.root, val_ids)
        self._finalize_leaves(tree)

    # -------------------------------------------------------------- finalize

    def _finalize_leaves(self, tree: BellwetherTree) -> None:
        """Fit the leaf bellwether models and task-level error estimates."""
        for leaf in tree.leaves():
            if leaf.region is None:
                # Node never matched any region with enough examples; fall
                # back to the globally best region for its items.
                leaf.region, leaf._best_rmse = self._node_bellwether(leaf.item_ids)
            if leaf.region is None:
                raise SearchError(
                    f"leaf with {leaf.n_items} items has no feasible region"
                )
            block = self.store.read(leaf.region).restrict_to(leaf.item_ids)
            leaf.model = LinearRegression().fit(block.x, block.y, block.weights)
            leaf.error = self.task.error_estimator.estimate(
                block.x, block.y, block.weights
            )
