"""Item-centric predictors sharing one interface (Section 3.3).

All three methods answer: *given a new item, which region should we buy data
from, and what target value do we then predict?*

* :class:`BasicPredictor` — one bellwether region for all items (Section 4).
* Bellwether trees (:meth:`repro.core.tree.BellwetherTree.predict`) — a
  region per leaf.
* Bellwether cubes (:class:`repro.core.cube.CubePredictor`) — a region per
  enclosing cube subset, chosen by the upper-confidence-bound rule.

The common protocol is two methods: ``region_for(item_id)`` and
``predict(item_id)``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.dimensions import Region
from repro.ml import LinearRegression
from repro.storage import TrainingDataStore

from .basic import BasicBellwetherSearch
from .exceptions import SearchError
from .task import BellwetherTask


class BasicPredictor:
    """Predict every item from the single basic bellwether region.

    Parameters
    ----------
    task, store:
        Problem definition and entire training data.
    budget:
        Budget override for the search (None = the task's criterion).
    item_ids:
        Training item subset (e.g. a CV train fold); models never see other
        items' rows.
    """

    def __init__(
        self,
        task: BellwetherTask,
        store: TrainingDataStore,
        budget: float | None = None,
        item_ids: Sequence | None = None,
        search: BasicBellwetherSearch | None = None,
    ):
        self.task = task
        self.store = store
        self._train_ids = (
            np.asarray(task.item_ids)
            if item_ids is None
            else np.asarray(list(item_ids))
        )
        search = search or BasicBellwetherSearch(task, store)
        result = search.run(budget=budget, item_ids=self._train_ids)
        if result.bellwether is None:
            raise SearchError("no feasible bellwether region under the budget")
        self.result = result
        self.region: Region = result.bellwether.region
        block = store.read(self.region).restrict_to(self._train_ids)
        self.model = LinearRegression().fit(block.x, block.y)
        self._train_mean = float(block.y.mean()) if block.n_examples else 0.0

    def region_for(self, item_id) -> Region:
        return self.region

    def predict(self, item_id) -> float:
        """φ_{i,r} from the bellwether region into the bellwether model."""
        block = self.store.read(self.region)
        hit = np.flatnonzero(block.item_ids == item_id)
        if len(hit):
            return float(self.model.predict(block.x[hit[0]])[0])
        # Item has no data in the region: predict the training mean.
        return self._train_mean
