"""Automatic feature generation (Section 3.4, fourth extension).

The paper notes that hand-writing feature generation queries does not scale
— "the number of possibly useful queries can be huge ... it is desirable to
have an automatic feature generation framework".  This module provides one:

1. :func:`enumerate_candidate_features` walks the star schema and emits
   every stylized query the engine supports — each numeric fact measure
   under {sum, avg, min, max}, a row count, and each numeric reference
   attribute under forms 2 (per-row join) and 3 (distinct foreign keys);
2. :func:`select_features` runs greedy forward selection, scoring candidate
   sets by the error of models built on a small *probe* sample of regions —
   cheap, and unbiased with respect to which region ultimately wins.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import Region
from repro.table import Database

from .exceptions import TaskError
from .features import (
    DistinctJoinAggregate,
    FactAggregate,
    JoinAggregate,
    RegionalFeature,
)
from .task import BellwetherTask
from .training_data import TrainingDataGenerator

_FACT_FUNCS = ("sum", "avg", "min", "max")
_REF_FUNCS = ("max", "avg")
_DISTINCT_FUNCS = ("sum", "count")


def enumerate_candidate_features(
    db: Database,
    exclude_columns: Sequence[str] = (),
    id_column: str | None = None,
) -> list[RegionalFeature]:
    """Every stylized aggregate-select-join query the schema affords.

    ``exclude_columns`` should list dimension attributes and keys that make
    no sense as measures (ids, time points, leaf values).
    """
    excluded = set(exclude_columns)
    if id_column:
        excluded.add(id_column)
    out: list[RegionalFeature] = []
    fact = db.fact
    ref_keys = {db.reference(name).key for name in db.reference_names}
    measure_cols = [
        c
        for c in fact.column_names
        if c not in excluded
        and c not in ref_keys
        and fact.schema.type_of(c).is_numeric
    ]
    for col in measure_cols:
        for func in _FACT_FUNCS:
            out.append(FactAggregate(func, col, f"auto_{func}_{col}"))
    if measure_cols:
        out.append(FactAggregate("count", measure_cols[0], "auto_row_count"))
    for name in db.reference_names:
        ref = db.reference(name)
        for col in ref.table.column_names:
            if col == ref.key or not ref.table.schema.type_of(col).is_numeric:
                continue
            for func in _REF_FUNCS:
                out.append(
                    JoinAggregate(func, col, f"auto_{func}_{name}_{col}", reference=name)
                )
            for func in _DISTINCT_FUNCS:
                out.append(
                    DistinctJoinAggregate(
                        func, col, f"auto_d{func}_{name}_{col}", reference=name
                    )
                )
    return out


@dataclass(frozen=True)
class FeatureSelectionResult:
    """Outcome of greedy feature selection."""

    selected: tuple[RegionalFeature, ...]
    probe_errors: tuple[float, ...]  # best probe error after each addition
    task: BellwetherTask

    def __str__(self) -> str:
        steps = ", ".join(
            f"{f.alias}({e:.4g})" for f, e in zip(self.selected, self.probe_errors)
        )
        return f"FeatureSelectionResult[{steps}]"


def _probe_error(
    task: BellwetherTask,
    probe_regions: Sequence[Region],
    min_examples: int,
) -> float:
    """Best model error across the probe regions for the task's features."""
    gen = TrainingDataGenerator(task)
    store = gen.generate(regions=list(probe_regions))
    best = np.inf
    for region in probe_regions:
        block = store.read(region)
        if block.n_examples < min_examples:
            continue
        est = task.error_estimator.estimate(block.x, block.y)
        best = min(best, est.rmse)
    return float(best)


def select_features(
    base_task: BellwetherTask,
    candidates: Sequence[RegionalFeature] | None = None,
    max_features: int = 4,
    n_probe_regions: int = 8,
    seed: int = 0,
    min_improvement: float = 0.01,
) -> FeatureSelectionResult:
    """Greedy forward selection of regional feature queries.

    Starting from the item-table features alone, repeatedly add the
    candidate whose addition most lowers the best model error over a fixed
    random probe sample of regions; stop when ``max_features`` is reached or
    the relative improvement falls below ``min_improvement``.

    Returns a new task identical to ``base_task`` but with the selected
    regional features.
    """
    if candidates is None:
        dim_attrs = [d.attribute for d in base_task.space.dimensions]
        candidates = enumerate_candidate_features(
            base_task.db,
            exclude_columns=dim_attrs,
            id_column=base_task.id_column,
        )
    candidates = list(candidates)
    if not candidates:
        raise TaskError("no candidate features to select from")
    rng = np.random.default_rng(seed)
    all_regions = base_task.space.all_regions()
    probe_idx = rng.choice(
        len(all_regions), size=min(n_probe_regions, len(all_regions)), replace=False
    )
    probe_regions = [all_regions[i] for i in probe_idx]

    def task_with(features: list[RegionalFeature]) -> BellwetherTask:
        return BellwetherTask(
            base_task.db,
            base_task.space,
            base_task.item_table,
            base_task.id_column,
            target=base_task.target,
            regional_features=features,
            item_feature_attrs=base_task.item_feature_attrs,
            cost_model=base_task.cost_model,
            criterion=base_task.criterion,
            error_estimator=base_task.error_estimator,
        )

    selected: list[RegionalFeature] = []
    errors: list[float] = []
    remaining = list(candidates)
    current_best = np.inf
    while remaining and len(selected) < max_features:
        step_feature = None
        step_error = np.inf
        for feature in remaining:
            trial = task_with(selected + [feature])
            min_examples = max(5, len(trial.feature_names) + 4)
            err = _probe_error(trial, probe_regions, min_examples)
            if err < step_error:
                step_feature, step_error = feature, err
        if step_feature is None or not np.isfinite(step_error):
            break
        improved = (
            not np.isfinite(current_best)
            or step_error < current_best * (1.0 - min_improvement)
        )
        if not improved:
            break
        selected.append(step_feature)
        errors.append(step_error)
        remaining.remove(step_feature)
        current_best = step_error
    if not selected:
        raise TaskError("greedy selection found no useful feature")
    return FeatureSelectionResult(
        tuple(selected), tuple(errors), task_with(selected)
    )
