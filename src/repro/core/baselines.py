"""Comparison baselines for the basic search (Figure 7/9's Avg and Smp).

* **Average baseline** — mean error over feasible regions; available directly
  from :meth:`BasicBellwetherResult.average_error`.
* **Random-sampling baseline** (``Smp Err``) — instead of an OLAP region,
  draw a random *collection of finest cells* whose total cost fits the
  budget, aggregate features over that collection, and measure the model's
  error.  The collection need not correspond to any region in R.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.ml import ErrorEstimate

from .exceptions import SearchError
from .task import BellwetherTask
from .training_data import TrainingDataGenerator


class RandomSamplingBaseline:
    """The random data-collection baseline of Section 7.1.

    Parameters
    ----------
    task:
        The bellwether task (shares its error estimator).
    cell_costs:
        Cost of each finest-grained cell, keyed by dimension-order tuples of
        (time point, hierarchy leaf name, ...).  A trial greedily accepts
        random cells while the accumulated cost stays within budget.
    generator:
        Optional pre-built :class:`TrainingDataGenerator` to share encodings.
    seed:
        RNG seed for the random cell draws.
    """

    def __init__(
        self,
        task: BellwetherTask,
        cell_costs: Mapping[tuple, float],
        generator: TrainingDataGenerator | None = None,
        seed: int = 0,
    ):
        self.task = task
        self._gen = generator or TrainingDataGenerator(task)
        self._seed = seed
        self._cells = list(cell_costs)
        self._costs = np.array([cell_costs[c] for c in self._cells], dtype=np.float64)
        if not self._cells:
            raise SearchError("cell_costs must not be empty")
        # Encode each fact row's finest cell as an index into self._cells.
        coords = self._gen.fact_cells()
        hier_dims = [
            d
            for d in task.space.dimensions
            if not hasattr(d, "n_points")
        ]
        cell_index: dict[tuple, int] = {}
        for k, cell in enumerate(self._cells):
            cell_index[tuple(cell)] = k
        n_rows = len(coords[0]) if coords else 0
        row_cells = np.full(n_rows, -1, dtype=np.int64)
        # Decode leaf codes back to names so keys match user-provided cells.
        decoded: list[np.ndarray] = []
        hier_i = 0
        for dim, col in zip(task.space.dimensions, coords):
            if hasattr(dim, "n_points"):  # interval dimension: raw time points
                decoded.append(col)
            else:
                names = np.array(dim.leaf_names, dtype=object)
                decoded.append(names[col])
                hier_i += 1
        for i in range(n_rows):
            key = tuple(d[i] for d in decoded)
            row_cells[i] = cell_index.get(key, -1)
        self._row_cells = row_cells

    def sample_error(self, budget: float, n_trials: int = 5) -> float:
        """Mean model error over random cell collections within the budget."""
        rng = np.random.default_rng(self._seed)
        errors: list[float] = []
        for __ in range(n_trials):
            order = rng.permutation(len(self._cells))
            chosen = np.zeros(len(self._cells), dtype=bool)
            spent = 0.0
            for idx in order:
                if spent + self._costs[idx] <= budget:
                    chosen[idx] = True
                    spent += self._costs[idx]
            mask = chosen[self._row_cells]
            mask &= self._row_cells >= 0
            block = self._gen.block_for_mask(mask)
            if block.n_examples < 3:
                continue
            est: ErrorEstimate = self.task.error_estimator.estimate(block.x, block.y)
            errors.append(est.rmse)
        if not errors:
            return float("nan")
        return float(np.mean(errors))
