"""The bellwether task: everything Definition 1 takes as input.

A :class:`BellwetherTask` bundles the historical database, the candidate
region space, the training item set (an item table), the target query τ, the
feature queries φ, the cost query κ, the search criterion and the error
measure.  Every algorithm in this package consumes a task.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import CostModel, Region, RegionSpace, ZeroCostModel
from repro.ml import CrossValidationEstimator, ErrorEstimator
from repro.table import Database, Table

from .exceptions import TaskError
from .features import ItemFeatureEncoder, RegionalFeature, TargetQuery


@dataclass(frozen=True)
class Criterion:
    """The constrained optimization criterion of Definition 1.

    Minimize ``Error(h_r)`` subject to ``κ_r(DB) ≤ budget`` and
    ``Coverage(r) ≥ min_coverage``.  ``budget=None`` means unconstrained.
    """

    budget: float | None = None
    min_coverage: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_coverage <= 1.0:
            raise TaskError(f"min_coverage must be in [0, 1], got {self.min_coverage}")

    def admits(self, cost: float, coverage: float) -> bool:
        if self.budget is not None and cost > self.budget:
            return False
        return coverage >= self.min_coverage

    def objective(self, error: float, cost: float, coverage: float) -> float:
        """The quantity minimized over feasible regions — here, the error."""
        return error

    def with_budget(self, budget: float | None) -> "Criterion":
        return Criterion(budget=budget, min_coverage=self.min_coverage)


@dataclass(frozen=True)
class LinearCriterion:
    """The paper's second instantiation (Section 3.2): a linear trade-off.

    Minimize ``Error(h_r) + w_cost * κ_r(DB) − w_coverage * Coverage(r)``
    over *all* candidate regions — no hard budget; cost and coverage are
    priced into the objective instead.
    """

    w_cost: float = 0.0
    w_coverage: float = 0.0

    def __post_init__(self) -> None:
        if self.w_cost < 0 or self.w_coverage < 0:
            raise TaskError("criterion weights must be non-negative")

    def admits(self, cost: float, coverage: float) -> bool:
        return True

    def objective(self, error: float, cost: float, coverage: float) -> float:
        return error + self.w_cost * cost - self.w_coverage * coverage

    def with_budget(self, budget: float | None) -> "LinearCriterion":
        """A budget override is meaningless here; the criterion is unchanged."""
        return self


class BellwetherTask:
    """One bellwether analysis problem instance.

    Parameters
    ----------
    db:
        The historical star-schema database.
    space:
        Candidate region set R (cross product of dimension values).
    item_table:
        Training item set I, with ``id_column`` and item-table features.
    id_column:
        Item-id column name, shared by the item table and the fact table.
    target:
        Target generation query τ.
    regional_features:
        Feature generation queries φ (the stylized forms of Section 4.1).
    item_feature_attrs:
        Item-table attributes to include as (always-available) features.
    cost_model:
        Cost query κ; defaults to zero cost.
    criterion:
        Constrained-optimization criterion; defaults to unconstrained.
    error_estimator:
        Error measure; defaults to 10-fold cross-validation RMSE.
    weight_column:
        Optional item-table column of per-item example weights.  Models are
        then fit by weighted least squares (Section 6.4); None = OLS.
    """

    def __init__(
        self,
        db: Database,
        space: RegionSpace,
        item_table: Table,
        id_column: str,
        target: TargetQuery,
        regional_features: Sequence[RegionalFeature],
        item_feature_attrs: Sequence[str] = (),
        cost_model: CostModel | None = None,
        criterion: Criterion | None = None,
        error_estimator: ErrorEstimator | None = None,
        weight_column: str | None = None,
    ):
        if not regional_features:
            raise TaskError("at least one regional feature query is required")
        aliases = [f.alias for f in regional_features]
        if len(set(aliases)) != len(aliases):
            raise TaskError(f"duplicate feature aliases: {aliases}")
        item_table.schema.require(id_column, *item_feature_attrs)
        db.fact.schema.require(id_column)
        for dim in space.dimensions:
            db.fact.schema.require(dim.attribute)
        self.db = db
        self.space = space
        self.item_table = item_table
        self.id_column = id_column
        self.target = target
        self.regional_features = tuple(regional_features)
        self.item_feature_attrs = tuple(item_feature_attrs)
        self.cost_model = cost_model or ZeroCostModel()
        self.criterion = criterion or Criterion()
        self.error_estimator = error_estimator or CrossValidationEstimator()
        self.item_encoder = ItemFeatureEncoder(item_table, id_column, item_feature_attrs)
        self.weight_column = weight_column
        if weight_column is not None:
            item_table.schema.require(weight_column)
            weights = np.asarray(item_table[weight_column], dtype=np.float64)
            if (weights <= 0).any():
                raise TaskError("item weights must be strictly positive")
            self._item_weights = weights
        else:
            self._item_weights = None

    # ------------------------------------------------------------- convenience

    @property
    def item_ids(self) -> np.ndarray:
        return self.item_table[self.id_column]

    @property
    def item_weights(self) -> np.ndarray | None:
        """Per-item WLS weights aligned with the item table (or None)."""
        return self._item_weights

    @property
    def n_items(self) -> int:
        return self.item_table.n_rows

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Design columns: item-table features, then regional features."""
        return self.item_encoder.feature_names + tuple(
            f.alias for f in self.regional_features
        )

    def target_values(self) -> np.ndarray:
        """τ(DB) aligned with the item table's rows."""
        return self.target.values(self.db, self.item_ids)

    def cost(self, region: Region) -> float:
        return self.cost_model.cost(region)

    def with_criterion(self, criterion: Criterion) -> "BellwetherTask":
        """A shallow copy under a different criterion (for budget sweeps)."""
        clone = object.__new__(BellwetherTask)
        clone.__dict__.update(self.__dict__)
        clone.criterion = criterion
        return clone

    def __repr__(self) -> str:
        return (
            f"BellwetherTask({self.n_items} items, {self.space.n_regions} regions, "
            f"{len(self.regional_features)} regional features)"
        )


class DirectTask:
    """A task whose training data is supplied directly, not queried.

    The paper's simulation and scalability studies (Sections 7.3-7.4)
    generate per-region training sets synthetically rather than via queries
    over a star schema.  ``DirectTask`` exposes the same members the search
    algorithms consume — item table, targets, cost, criterion, estimator —
    while the caller provides a ready-made
    :class:`~repro.storage.TrainingDataStore`.
    """

    def __init__(
        self,
        item_table: Table,
        id_column: str,
        targets: np.ndarray,
        item_feature_attrs: Sequence[str] = (),
        cost_model: CostModel | None = None,
        criterion: Criterion | None = None,
        error_estimator: ErrorEstimator | None = None,
        weights: np.ndarray | None = None,
    ):
        item_table.schema.require(id_column, *item_feature_attrs)
        targets = np.asarray(targets, dtype=np.float64)
        if targets.shape != (item_table.n_rows,):
            raise TaskError(
                f"targets shape {targets.shape} != item count {item_table.n_rows}"
            )
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != targets.shape or (weights <= 0).any():
                raise TaskError("weights must be positive and target-aligned")
        self._item_weights = weights
        self.item_table = item_table
        self.id_column = id_column
        self.item_feature_attrs = tuple(item_feature_attrs)
        self.cost_model = cost_model or ZeroCostModel()
        self.criterion = criterion or Criterion()
        self.error_estimator = error_estimator or CrossValidationEstimator()
        self.item_encoder = ItemFeatureEncoder(item_table, id_column, item_feature_attrs)
        self._targets = targets

    @property
    def item_ids(self) -> np.ndarray:
        return self.item_table[self.id_column]

    @property
    def item_weights(self) -> np.ndarray | None:
        return self._item_weights

    @property
    def n_items(self) -> int:
        return self.item_table.n_rows

    def target_values(self) -> np.ndarray:
        return self._targets

    def cost(self, region: Region) -> float:
        return self.cost_model.cost(region)

    def with_criterion(self, criterion: Criterion) -> "DirectTask":
        clone = object.__new__(DirectTask)
        clone.__dict__.update(self.__dict__)
        clone.criterion = criterion
        return clone

    def __repr__(self) -> str:
        return f"DirectTask({self.n_items} items)"
