"""Item-centric evaluation: k-fold CV over *items* (Figures 8, 9c, 10).

The paper scores the basic / tree / cube prediction methods by 10-fold
cross-validation over the item set: hold out a fold of items, build each
method on the remaining items, then predict every held-out item's target
(buying its data from whichever region the method prescribes) and measure
RMSE against τ.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.dimensions import ItemHierarchies
from repro.exec import ParallelConfig, ParallelExecutor
from repro.storage import TrainingDataStore

from .cube import BellwetherCubeBuilder, CubePredictor
from .exceptions import SearchError
from .predict import BasicPredictor
from .task import BellwetherTask
from .tree import BellwetherTreeBuilder

# A factory builds a predictor from the training fold's item ids.
PredictorFactory = Callable[[np.ndarray], object]


def kfold_item_rmse(
    task: BellwetherTask,
    predictor_factory: PredictorFactory,
    n_folds: int = 10,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
) -> float:
    """k-fold CV prediction RMSE over items for one method.

    Folds are independent (each builds its own predictor), so ``parallel``
    fans them out over workers; squared errors concatenate in fold order,
    keeping the RMSE identical to a serial run.
    """
    ids = np.asarray(task.item_ids)
    y = task.target_values()
    y_of = dict(zip(ids, y))
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(ids))
    folds = np.array_split(order, min(n_folds, len(ids)))

    def one_fold(test_idx: np.ndarray) -> list[float]:
        train_mask = np.ones(len(ids), dtype=bool)
        train_mask[test_idx] = False
        try:
            predictor = predictor_factory(ids[train_mask])
        except SearchError:
            return []  # no feasible region for this fold
        errors: list[float] = []
        for item_id in ids[test_idx]:
            try:
                pred = predictor.predict(item_id)
            except SearchError:
                continue
            errors.append((pred - y_of[item_id]) ** 2)
        return errors

    per_fold = ParallelExecutor(parallel).map(one_fold, folds)
    sq_errors = [e for fold_errors in per_fold for e in fold_errors]
    if not sq_errors:
        return float("nan")
    return float(np.sqrt(np.mean(sq_errors)))


def basic_factory(
    task: BellwetherTask,
    store: TrainingDataStore,
    budget: float | None = None,
) -> PredictorFactory:
    return lambda train_ids: BasicPredictor(
        task, store, budget=budget, item_ids=train_ids
    )


def tree_factory(
    task: BellwetherTask,
    store: TrainingDataStore,
    split_attrs: Sequence[str] | None = None,
    **builder_kwargs,
) -> PredictorFactory:
    def make(train_ids: np.ndarray):
        builder = BellwetherTreeBuilder(
            task, store, split_attrs=split_attrs, **builder_kwargs
        )
        return builder.build(method="rf", item_ids=train_ids)
    return make


def cube_factory(
    task: BellwetherTask,
    store: TrainingDataStore,
    hierarchies: ItemHierarchies,
    **builder_kwargs,
) -> PredictorFactory:
    def make(train_ids: np.ndarray):
        builder = BellwetherCubeBuilder(
            task, store, hierarchies, item_ids=train_ids, **builder_kwargs
        )
        result = builder.build(method="optimized")
        return CubePredictor(result, task, store, item_ids=train_ids)
    return make


def compare_methods(
    task: BellwetherTask,
    store: TrainingDataStore,
    hierarchies: ItemHierarchies | None = None,
    split_attrs: Sequence[str] | None = None,
    budget: float | None = None,
    n_folds: int = 10,
    seed: int = 0,
    tree_kwargs: dict | None = None,
    cube_kwargs: dict | None = None,
    parallel: ParallelConfig | None = None,
) -> dict[str, float]:
    """Basic vs Tree vs Cube prediction RMSE under one budget.

    The budget restricts which store regions are visible; pass a
    :class:`~repro.storage.FilteredStore` built from the feasible set, or a
    ``budget`` here to let the basic search filter (trees/cubes see the
    whole store, so pre-filtering is the usual route).  ``parallel`` fans
    each method's CV folds out over workers.
    """
    out: dict[str, float] = {}
    out["basic"] = kfold_item_rmse(
        task, basic_factory(task, store, budget), n_folds=n_folds, seed=seed,
        parallel=parallel,
    )
    out["tree"] = kfold_item_rmse(
        task,
        tree_factory(task, store, split_attrs, **(tree_kwargs or {})),
        n_folds=n_folds,
        seed=seed,
        parallel=parallel,
    )
    if hierarchies is not None:
        out["cube"] = kfold_item_rmse(
            task,
            cube_factory(task, store, hierarchies, **(cube_kwargs or {})),
            n_folds=n_folds,
            seed=seed,
            parallel=parallel,
        )
    return out
