"""Bellwether analysis: the paper's core contribution.

Public surface:

* :class:`BellwetherTask`, :class:`Criterion` — problem specification.
* Target / feature queries (:class:`AggregateTargetQuery`,
  :class:`FactAggregate`, :class:`JoinAggregate`,
  :class:`DistinctJoinAggregate`).
* :class:`TrainingDataGenerator`, :func:`build_store` — Section 4.2's
  training-set generation.
* :class:`BasicBellwetherSearch` — Section 4's search.
* :class:`BellwetherTreeBuilder` / :class:`BellwetherTree` — Section 5.
* :class:`BellwetherCubeBuilder` / :class:`BellwetherCubeResult` /
  :class:`CubePredictor` — Section 6.
* :class:`BasicPredictor`, :func:`kfold_item_rmse`, :func:`compare_methods`
  — item-centric evaluation (Section 7's protocol).
* :func:`budget_sweep`, :class:`RandomSamplingBaseline` — Figure 7/9 series.
"""

from .autofeatures import (
    FeatureSelectionResult,
    enumerate_candidate_features,
    select_features,
)
from .baselines import RandomSamplingBaseline
from .combinatorial import CombinationResult, GreedyCombinationSearch
from .multi_instance import BagResult, MultiInstanceBellwetherSearch
from .basic import BasicBellwetherResult, BasicBellwetherSearch, RegionResult
from .cube import (
    BellwetherCubeBuilder,
    BellwetherCubeResult,
    CubePredictor,
    SubsetEntry,
)
from .evaluation import (
    basic_factory,
    compare_methods,
    cube_factory,
    kfold_item_rmse,
    tree_factory,
)
from .exceptions import BellwetherError, SearchError, TaskError
from .features import (
    AggregateTargetQuery,
    DistinctJoinAggregate,
    FactAggregate,
    ItemFeatureEncoder,
    JoinAggregate,
    RegionalFeature,
    TableTargetQuery,
    TargetQuery,
)
from .predict import BasicPredictor
from .relational import (
    AggregatingRelationalLearner,
    RelationalBellwetherSearch,
    RelationalLearner,
    RelationalResult,
)
from .report import BudgetPoint, budget_sweep, render_table
from .task import BellwetherTask, Criterion, DirectTask, LinearCriterion
from .training_data import TrainingDataGenerator, build_store
from .tree import BellwetherTree, BellwetherTreeBuilder, SplitCandidate, TreeNode

__all__ = [
    "AggregateTargetQuery",
    "BagResult",
    "CombinationResult",
    "FeatureSelectionResult",
    "GreedyCombinationSearch",
    "MultiInstanceBellwetherSearch",
    "enumerate_candidate_features",
    "select_features",
    "BasicBellwetherResult",
    "BasicBellwetherSearch",
    "BasicPredictor",
    "BellwetherCubeBuilder",
    "BellwetherCubeResult",
    "BellwetherError",
    "BellwetherTask",
    "BellwetherTree",
    "BellwetherTreeBuilder",
    "BudgetPoint",
    "Criterion",
    "DirectTask",
    "LinearCriterion",
    "CubePredictor",
    "DistinctJoinAggregate",
    "FactAggregate",
    "ItemFeatureEncoder",
    "JoinAggregate",
    "AggregatingRelationalLearner",
    "RandomSamplingBaseline",
    "RelationalBellwetherSearch",
    "RelationalLearner",
    "RelationalResult",
    "RegionResult",
    "RegionalFeature",
    "SearchError",
    "SplitCandidate",
    "SubsetEntry",
    "TableTargetQuery",
    "TargetQuery",
    "TaskError",
    "TrainingDataGenerator",
    "TreeNode",
    "basic_factory",
    "budget_sweep",
    "build_store",
    "compare_methods",
    "cube_factory",
    "kfold_item_rmse",
    "render_table",
    "tree_factory",
]
