"""Budget-sweep reporting: the series behind Figures 7 and 9.

Given a :class:`~repro.core.basic.BasicBellwetherSearch`, these helpers
compute, per budget:

* ``bel_err`` — the bellwether model's error ("Bel Err"),
* ``avg_err`` — the average error over feasible regions ("Avg Err"),
* ``smp_err`` — the random-sampling baseline ("Smp Err", optional),
* ``frac_indist`` — the fraction of feasible regions statistically
  indistinguishable from the bellwether at each confidence level
  (Figure 7(b)/9(b)).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.dimensions import Region

from .baselines import RandomSamplingBaseline
from .basic import BasicBellwetherSearch


@dataclass(frozen=True)
class BudgetPoint:
    """One budget's worth of Figure 7-style series."""

    budget: float
    bel_err: float
    avg_err: float
    bellwether: Region | None
    n_feasible: int
    smp_err: float = float("nan")
    frac_indist: dict[float, float] = field(default_factory=dict)


def budget_sweep(
    search: BasicBellwetherSearch,
    budgets: Sequence[float],
    confidences: Sequence[float] = (0.95, 0.99),
    sampling: RandomSamplingBaseline | None = None,
    sampling_trials: int = 5,
    item_ids: Sequence | None = None,
) -> list[BudgetPoint]:
    """Evaluate the basic search across budgets (one store scan total)."""
    points: list[BudgetPoint] = []
    for budget, result in search.sweep(budgets, item_ids=item_ids):
        if result.bellwether is None:
            points.append(
                BudgetPoint(
                    budget=budget,
                    bel_err=float("nan"),
                    avg_err=float("nan"),
                    bellwether=None,
                    n_feasible=0,
                )
            )
            continue
        frac = {
            c: result.indistinguishable_fraction(c) for c in confidences
        }
        smp = (
            sampling.sample_error(budget, n_trials=sampling_trials)
            if sampling is not None
            else float("nan")
        )
        points.append(
            BudgetPoint(
                budget=budget,
                bel_err=result.bellwether.rmse,
                avg_err=result.average_error(),
                bellwether=result.bellwether.region,
                n_feasible=len(result.feasible),
                smp_err=smp,
                frac_indist=frac,
            )
        )
    return points


def render_table(points: Sequence[BudgetPoint]) -> str:
    """ASCII table of a budget sweep (used by benches and EXPERIMENTS.md)."""
    confidences = sorted(points[0].frac_indist) if points else []
    header = ["budget", "bel_err", "avg_err", "smp_err", "bellwether", "n_feas"]
    header += [f"indist@{int(c * 100)}%" for c in confidences]
    rows = [header]
    for pt in points:
        row = [
            f"{pt.budget:g}",
            f"{pt.bel_err:.4g}",
            f"{pt.avg_err:.4g}",
            f"{pt.smp_err:.4g}",
            str(pt.bellwether),
            str(pt.n_feasible),
        ]
        row += [f"{pt.frac_indist.get(c, float('nan')):.3f}" for c in confidences]
        rows.append(row)
    widths = [max(len(r[j]) for r in rows) for j in range(len(header))]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rows
    ]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)
