"""Vectorized item-id -> row-position lookup.

Several hot paths used to resolve item ids through Python dict loops
(``[row_of[i] for i in ids]`` / ``i in id_code``), which costs O(n) Python
object work per block.  :class:`RowIndex` replaces those with sorted-array
``searchsorted`` lookups (falling back to a dict only when the ids are not
totally ordered, e.g. mixed-type object arrays).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RowIndex"]


class RowIndex:
    """Maps item ids to their row positions in a fixed id array."""

    def __init__(self, ids: np.ndarray):
        self._ids = np.asarray(ids)
        self._dict: dict | None = None
        try:
            self._order = np.argsort(self._ids, kind="stable")
            self._sorted = self._ids[self._order]
        except TypeError:  # unorderable object ids
            self._order = None
            self._sorted = None
            self._dict = {i: k for k, i in enumerate(self._ids)}

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def ids(self) -> np.ndarray:
        return self._ids

    def contains(self, wanted: np.ndarray) -> np.ndarray:
        """Boolean per entry of ``wanted``: is it one of the indexed ids?"""
        wanted = np.asarray(wanted)
        if self._dict is not None:
            return np.fromiter(
                (i in self._dict for i in wanted), dtype=bool, count=len(wanted)
            )
        if len(self._ids) == 0 or len(wanted) == 0:
            return np.zeros(len(wanted), dtype=bool)
        pos = np.searchsorted(self._sorted, wanted)
        pos = np.minimum(pos, len(self._sorted) - 1)
        return self._sorted[pos] == wanted

    def rows_of(self, wanted: np.ndarray) -> np.ndarray:
        """Row position of every entry of ``wanted`` (KeyError if absent)."""
        wanted = np.asarray(wanted)
        if self._dict is not None:
            try:
                return np.fromiter(
                    (self._dict[i] for i in wanted),
                    dtype=np.int64,
                    count=len(wanted),
                )
            except KeyError as exc:
                raise KeyError(f"unknown item id {exc.args[0]!r}") from None
        if len(wanted) == 0:
            return np.zeros(0, dtype=np.int64)
        if len(self._ids) == 0:
            raise KeyError(f"unknown item id {wanted[0]!r}")
        pos = np.searchsorted(self._sorted, wanted)
        pos = np.minimum(pos, len(self._sorted) - 1)
        missing = self._sorted[pos] != wanted
        if missing.any():
            raise KeyError(f"unknown item id {wanted[missing][0]!r}")
        return self._order[pos].astype(np.int64, copy=False)

    def member_mask(self, wanted: np.ndarray) -> np.ndarray:
        """Boolean over the *indexed* ids: membership in ``wanted``."""
        return np.isin(self._ids, np.asarray(wanted))
