"""Training-set generation for all candidate regions (Section 4.2).

Two interchangeable strategies produce one :class:`~repro.storage.RegionBlock`
per region — the table ``{(φ_{i,r}(DB), τ_i(DB)) : i ∈ I_r}``:

* **naive** — one selection + aggregation per region, exactly the textbook
  reading of the feature queries.  O(|R|) passes over the fact table.
* **cube** — the paper's rewrite: one grouped pass over the fact table
  produces *base cells* (finest dimension values x item), which then roll up
  along hierarchy subtrees and interval prefixes like any data cube.  All
  three stylized query forms are covered; the distinct-FK form rolls up via
  first-appearance times, keeping it exact.

Both paths agree bit-for-bit up to float associativity (tested), and both
report per-region coverage, which feeds the criterion's pruning.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.dimensions import (
    HierarchicalDimension,
    Interval,
    IntervalDimension,
    Region,
)
from repro.exec import ParallelConfig, ParallelExecutor
from repro.obs.trace import get_tracer
from repro.storage import MemoryStore, RegionBlock
from repro.table import factorize

from .exceptions import TaskError
from .rowindex import RowIndex

_TRACER = get_tracer()
from .features import DistinctJoinAggregate
from .task import BellwetherTask

_NEUTRAL = {"sum": 0.0, "count": 0.0, "min": np.inf, "max": -np.inf}


@dataclass
class _FeaturePlan:
    """Per-feature arrays shared by both generation strategies."""

    alias: str
    func: str
    values: np.ndarray  # per-fact-row value of the aggregated attribute
    fk_codes: np.ndarray | None  # per-fact-row FK codes for distinct form


class TrainingDataGenerator:
    """Materializes per-region training sets for a task.

    The generator pre-encodes fact rows once (item codes, dimension leaf
    codes, time points, per-feature value columns); both strategies then work
    from those arrays.
    """

    def __init__(self, task: BellwetherTask):
        self.task = task
        space = task.space
        fact = task.db.fact
        # --- item codes; fact rows for unknown items are dropped (I defines the task)
        ids = task.item_ids
        index = RowIndex(np.asarray(ids))
        raw_ids = np.asarray(fact[task.id_column])
        keep = index.contains(raw_ids)
        self._row_idx = np.flatnonzero(keep)
        self._item_codes = index.rows_of(raw_ids[keep])
        self.n_items = len(ids)
        self._item_ids = np.asarray(ids)
        # --- dimension encodings
        self._hier_dims: list[HierarchicalDimension] = []
        self._hier_codes: list[np.ndarray] = []
        self._interval_dim: IntervalDimension | None = None
        self._interval_pos: int | None = None
        self._dim_order: list[tuple[str, int]] = []  # ("hier", idx) / ("interval", 0)
        for dim in space.dimensions:
            if isinstance(dim, IntervalDimension):
                if self._interval_dim is not None:
                    raise TaskError("at most one interval dimension is supported")
                self._interval_dim = dim
                points = np.asarray(fact[dim.attribute])[keep]
                dim.validate_points(points)
                self._time_points = points.astype(np.int64)
                self._dim_order.append(("interval", 0))
            else:
                codes = dim.encode_leaves(np.asarray(fact[dim.attribute])[keep])
                self._hier_dims.append(dim)
                self._hier_codes.append(codes)
                self._dim_order.append(("hier", len(self._hier_dims) - 1))
        if self._interval_dim is None:
            self._time_points = np.zeros(len(self._item_codes), dtype=np.int64) + 1
        self.n_time = self._interval_dim.n_points if self._interval_dim else 1
        # Candidate windows: the dimension's interval list (prefixes for the
        # standard incremental dimension, arbitrary for windowed ones).
        self._window_list = (
            self._interval_dim.intervals()
            if self._interval_dim is not None
            else [Interval(1, 1)]
        )
        self.n_windows = len(self._window_list)
        # --- feature plans
        self._plans: list[_FeaturePlan] = []
        for feat in task.regional_features:
            values = feat.value_column(task.db)[keep]
            fk_codes = None
            if isinstance(feat, DistinctJoinAggregate):
                fk_codes, __ = factorize(feat.key_column(task.db)[keep])
            self._plans.append(_FeaturePlan(feat.alias, feat.func, values, fk_codes))
        # --- targets, item features, optional WLS weights
        self._y = task.target_values()
        self._item_x = task.item_encoder.matrix(self._item_ids)
        self._w = getattr(task, "item_weights", None)
        # --- node combos (regions = node combo x prefix)
        self._node_combos: list[tuple[str, ...]] = [
            combo
            for combo in itertools.product(
                *[[n.name for n in d.nodes()] for d in self._hier_dims]
            )
        ]
        # boolean leaf-membership per dim per node
        self._leaf_member: list[dict[str, np.ndarray]] = []
        for dim in self._hier_dims:
            table: dict[str, np.ndarray] = {}
            for node in dim.nodes():
                member = np.zeros(dim.n_leaves, dtype=bool)
                for leaf in dim.leaves_under(node.name):
                    member[dim.leaf_code(leaf)] = True
                table[node.name] = member
            self._leaf_member.append(table)
        self._coverage_cache: dict[Region, float] | None = None

    # ------------------------------------------------------------- region ids

    def _region_for(self, combo: tuple[str, ...], w_idx: int) -> Region:
        values: list = []
        for kind, idx in self._dim_order:
            if kind == "interval":
                values.append(self._window_list[w_idx])
            else:
                values.append(combo[idx])
        return Region(tuple(values))

    def all_regions(self) -> list[Region]:
        return [
            self._region_for(combo, w)
            for combo in self._node_combos
            for w in range(self.n_windows)
        ]

    def _window_reduce(self, raw: np.ndarray, func: str) -> np.ndarray:
        """Merge per-time-point raw stats into per-window stats.

        ``raw`` is (items x n_time) holding the per-time aggregate; the
        result is (items x n_windows).  Sums/counts merge via cumulative
        differences; min/max reduce over the window slice.
        """
        out = np.empty((raw.shape[0], self.n_windows))
        if func in ("sum", "count"):
            csum = np.cumsum(raw, axis=1)
            for w, window in enumerate(self._window_list):
                hi = csum[:, window.end - 1]
                lo = csum[:, window.start - 2] if window.start > 1 else 0.0
                out[:, w] = hi - lo
            return out
        reduce = np.minimum.reduce if func == "min" else np.maximum.reduce
        for w, window in enumerate(self._window_list):
            out[:, w] = reduce(raw[:, window.start - 1:window.end], axis=1)
        return out

    # -------------------------------------------------------------- coverage

    def coverage(self) -> dict[Region, float]:
        """Coverage(r) = |I_r| / |I| for every candidate region."""
        if self._coverage_cache is not None:
            return self._coverage_cache
        result: dict[Region, float] = {}
        for combo in self._node_combos:
            present = self._dense_presence(combo)
            counts = present.sum(axis=0)
            for w in range(self.n_windows):
                result[self._region_for(combo, w)] = counts[w] / self.n_items
        self._coverage_cache = result
        return result

    def _combo_mask(
        self, codes_per_dim: Sequence[np.ndarray], combo: tuple[str, ...]
    ) -> np.ndarray:
        n = len(self._item_codes) if not codes_per_dim else len(codes_per_dim[0])
        mask = np.ones(n, dtype=bool)
        for member_table, codes, node in zip(
            self._leaf_member, codes_per_dim, combo
        ):
            mask &= member_table[node][codes]
        return mask

    # ------------------------------------------------------------------ cube

    def generate(
        self,
        regions: Sequence[Region] | None = None,
        method: str = "cube",
        parallel: ParallelConfig | None = None,
    ) -> MemoryStore:
        """Build the store of training sets.

        Parameters
        ----------
        regions:
            Restrict output to these regions (e.g. the feasible set); default
            all candidate regions.
        method:
            ``"cube"`` (single grouped pass + rollup) or ``"naive"``
            (one aggregation per region).
        parallel:
            Fan the per-combo (cube) / per-region (naive) aggregation out
            over workers; default is the process-wide :mod:`repro.exec`
            config.  Blocks are identical to a serial run.
        """
        wanted = set(regions) if regions is not None else None
        executor = ParallelExecutor(parallel)
        with _TRACER.span(
            "traindata.generate",
            method=method,
            regions=len(wanted) if wanted is not None else len(self.all_regions()),
        ) as sp:
            if method == "cube":
                blocks = self._generate_cube(wanted, executor)
            elif method == "naive":
                blocks = self._generate_naive(wanted, executor)
            else:
                raise TaskError(f"unknown generation method {method!r}")
            sp.annotate(blocks=len(blocks))
        feature_names = self.task.feature_names
        return MemoryStore(blocks, feature_names)

    def _generate_cube(
        self, wanted: set[Region] | None, executor: ParallelExecutor
    ) -> dict[Region, RegionBlock]:
        combos = [
            combo
            for combo in self._node_combos
            if wanted is None
            or any(
                self._region_for(combo, w) in wanted
                for w in range(self.n_windows)
            )
        ]
        blocks: dict[Region, RegionBlock] = {}
        for part in executor.map(
            lambda combo: self._cube_combo_blocks(combo, wanted), combos
        ):
            blocks.update(part)
        return blocks

    def _cube_combo_blocks(
        self, combo: tuple[str, ...], wanted: set[Region] | None
    ) -> dict[Region, RegionBlock]:
        """All windows' blocks of one hierarchy-node combo (one fan-out item)."""
        dense_features = [
            self._dense_feature(plan, combo) for plan in self._plans
        ]
        present = self._dense_presence(combo)
        blocks: dict[Region, RegionBlock] = {}
        for w in range(self.n_windows):
            region = self._region_for(combo, w)
            if wanted is not None and region not in wanted:
                continue
            rows = np.flatnonzero(present[:, w])
            x = np.column_stack(
                [self._item_x[rows]]
                + [dense[rows, w][:, None] for dense in dense_features]
            ) if len(rows) else np.empty((0, self._item_x.shape[1] + len(dense_features)))
            blocks[region] = RegionBlock(
                self._item_ids[rows], x, self._y[rows],
                None if self._w is None else self._w[rows],
            )
        return blocks

    def _dense_presence(self, combo: tuple[str, ...]) -> np.ndarray:
        """(items x n_windows) boolean: item has >= 1 fact row in window."""
        mask = self._combo_mask(self._hier_codes, combo)
        counts = np.zeros((self.n_items, self.n_time))
        np.add.at(counts, (self._item_codes[mask], self._time_points[mask] - 1), 1.0)
        return self._window_reduce(counts, "count") > 0

    def _dense_feature(self, plan: _FeaturePlan, combo: tuple[str, ...]) -> np.ndarray:
        """(items x time) matrix of the feature at every prefix."""
        mask = self._combo_mask(self._hier_codes, combo)
        items = self._item_codes[mask]
        times = self._time_points[mask]
        values = plan.values[mask]
        if plan.fk_codes is None:
            return self._rollup_plain(plan.func, items, times, values)
        return self._rollup_distinct(plan.func, items, times, values, plan.fk_codes[mask])

    def _rollup_plain(
        self, func: str, items: np.ndarray, times: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Forms 1-2: aggregate per (item, time point), then window-merge."""
        shape = (self.n_items, self.n_time)
        if func == "avg":
            sums = np.zeros(shape)
            counts = np.zeros(shape)
            np.add.at(sums, (items, times - 1), values)
            np.add.at(counts, (items, times - 1), 1.0)
            wsum = self._window_reduce(sums, "sum")
            wcount = self._window_reduce(counts, "count")
            with np.errstate(invalid="ignore", divide="ignore"):
                return wsum / wcount
        if func in ("sum", "count"):
            dense = np.zeros(shape)
            np.add.at(dense, (items, times - 1), values if func == "sum" else 1.0)
            return self._window_reduce(dense, func)
        fill = _NEUTRAL[func]
        dense = np.full(shape, fill)
        if func == "min":
            np.minimum.at(dense, (items, times - 1), values)
        else:
            np.maximum.at(dense, (items, times - 1), values)
        return self._window_reduce(dense, func)

    def _rollup_distinct(
        self,
        func: str,
        items: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
        fks: np.ndarray,
    ) -> np.ndarray:
        """Form 3: each FK counts once per (item, window).

        For incremental windows a reference row joins ``[1-t, node]`` iff
        its earliest fact row under the node is at time ≤ t, so aggregating
        arrival events and prefix-merging is exact.  General windows cannot
        use arrivals (an FK may recur inside a later window), so they dedupe
        per window.
        """
        if len(items) == 0:
            return np.full((self.n_items, self.n_windows), np.nan)
        all_prefix = all(w.start == 1 for w in self._window_list)
        if not all_prefix:
            return self._distinct_per_window(func, items, times, values, fks)
        pair = items.astype(np.int64) * (fks.max() + 1) + fks
        order = np.lexsort((times, pair))
        first = np.flatnonzero(np.diff(pair[order], prepend=-1))
        arrival_rows = order[first]  # one row per (item, fk): earliest time
        a_items = items[arrival_rows]
        a_times = times[arrival_rows]
        a_values = values[arrival_rows]
        shape = (self.n_items, self.n_time)
        if func == "avg":
            sums = np.zeros(shape)
            counts = np.zeros(shape)
            np.add.at(sums, (a_items, a_times - 1), a_values)
            np.add.at(counts, (a_items, a_times - 1), 1.0)
            wsum = self._window_reduce(sums, "sum")
            wcount = self._window_reduce(counts, "count")
            with np.errstate(invalid="ignore", divide="ignore"):
                return wsum / wcount
        if func in ("sum", "count"):
            dense = np.zeros(shape)
            np.add.at(
                dense, (a_items, a_times - 1), a_values if func == "sum" else 1.0
            )
            return self._window_reduce(dense, func)
        dense = np.full(shape, _NEUTRAL[func])
        if func == "min":
            np.minimum.at(dense, (a_items, a_times - 1), a_values)
        else:
            np.maximum.at(dense, (a_items, a_times - 1), a_values)
        return self._window_reduce(dense, func)

    def _distinct_per_window(
        self,
        func: str,
        items: np.ndarray,
        times: np.ndarray,
        values: np.ndarray,
        fks: np.ndarray,
    ) -> np.ndarray:
        """Exact distinct-FK aggregation for arbitrary candidate windows."""
        out = np.full((self.n_items, self.n_windows), np.nan)
        radix = int(fks.max()) + 1
        for w, window in enumerate(self._window_list):
            in_window = (times >= window.start) & (times <= window.end)
            w_items = items[in_window]
            w_values = values[in_window]
            w_fks = fks[in_window]
            if len(w_items) == 0:
                continue
            pair = w_items.astype(np.int64) * radix + w_fks
            __, first_idx = np.unique(pair, return_index=True)
            d_items = w_items[first_idx]
            d_values = w_values[first_idx]
            if func in ("sum", "count", "avg"):
                sums = np.zeros(self.n_items)
                counts = np.zeros(self.n_items)
                np.add.at(sums, d_items, d_values)
                np.add.at(counts, d_items, 1.0)
                if func == "sum":
                    out[:, w] = sums
                elif func == "count":
                    out[:, w] = counts
                else:
                    with np.errstate(invalid="ignore", divide="ignore"):
                        out[:, w] = sums / counts
            else:
                agg = np.full(self.n_items, _NEUTRAL[func])
                if func == "min":
                    np.minimum.at(agg, d_items, d_values)
                else:
                    np.maximum.at(agg, d_items, d_values)
                out[:, w] = agg
        return out

    # ----------------------------------------------------------------- naive

    def _generate_naive(
        self, wanted: set[Region] | None, executor: ParallelExecutor
    ) -> dict[Region, RegionBlock]:
        regions = [
            region
            for region in self.all_regions()
            if wanted is None or region in wanted
        ]
        parts = executor.map(self._naive_region_block, regions)
        return dict(zip(regions, parts))

    def _naive_region_block(self, region: Region) -> RegionBlock:
        """One region's training block (one naive fan-out item)."""
        mask = self._region_mask(region)
        items = self._item_codes[mask]
        present_codes = np.unique(items)
        columns = [
            self._naive_feature(plan, mask, present_codes)
            for plan in self._plans
        ]
        rows = present_codes
        x = (
            np.column_stack([self._item_x[rows]] + [c[:, None] for c in columns])
            if len(rows)
            else np.empty((0, self._item_x.shape[1] + len(self._plans)))
        )
        return RegionBlock(
            self._item_ids[rows], x, self._y[rows],
            None if self._w is None else self._w[rows],
        )

    def block_for_mask(self, mask: np.ndarray) -> RegionBlock:
        """Training block aggregated over an arbitrary fact-row subset.

        Used by the random-sampling baseline (Section 7.1's "Smp Err"),
        whose data-collection sets are unions of finest cells that need not
        form any OLAP region.
        """
        if mask.shape != self._item_codes.shape:
            raise TaskError(
                f"mask has shape {mask.shape}, expected {self._item_codes.shape}"
            )
        present_codes = np.unique(self._item_codes[mask])
        columns = [
            self._naive_feature(plan, mask, present_codes) for plan in self._plans
        ]
        rows = present_codes
        x = (
            np.column_stack([self._item_x[rows]] + [c[:, None] for c in columns])
            if len(rows)
            else np.empty((0, self._item_x.shape[1] + len(self._plans)))
        )
        return RegionBlock(
            self._item_ids[rows], x, self._y[rows],
            None if self._w is None else self._w[rows],
        )

    def fact_cells(self) -> list[np.ndarray]:
        """Per-fact-row finest-cell coordinates: time points and leaf codes.

        Returned in dimension order; used by baselines to select rows by
        finest cell.
        """
        out: list[np.ndarray] = []
        for kind, idx in self._dim_order:
            if kind == "interval":
                out.append(self._time_points)
            else:
                out.append(self._hier_codes[idx])
        return out

    def _region_mask(self, region: Region) -> np.ndarray:
        mask = np.ones(len(self._item_codes), dtype=bool)
        hier_i = 0
        for (kind, idx), value in zip(self._dim_order, region.values):
            if kind == "interval":
                mask &= (self._time_points >= value.start) & (
                    self._time_points <= value.end
                )
            else:
                dim = self._hier_dims[idx]
                member = self._leaf_member[idx][str(value)]
                mask &= member[self._hier_codes[idx]]
                hier_i += 1
        return mask

    def _naive_feature(
        self, plan: _FeaturePlan, mask: np.ndarray, present_codes: np.ndarray
    ) -> np.ndarray:
        items = self._item_codes[mask]
        values = plan.values[mask]
        if plan.fk_codes is not None:
            fks = plan.fk_codes[mask]
            if len(items):
                pair = items.astype(np.int64) * (fks.max() + 1) + fks
                __, first_idx = np.unique(pair, return_index=True)
                items = items[first_idx]
                values = values[first_idx]
        out = np.full(self.n_items, np.nan)
        if len(items):
            if plan.func == "sum":
                agg = np.zeros(self.n_items)
                np.add.at(agg, items, values)
            elif plan.func == "count":
                agg = np.zeros(self.n_items)
                np.add.at(agg, items, 1.0)
            elif plan.func == "avg":
                s = np.zeros(self.n_items)
                c = np.zeros(self.n_items)
                np.add.at(s, items, values)
                np.add.at(c, items, 1.0)
                with np.errstate(invalid="ignore", divide="ignore"):
                    agg = s / c
            elif plan.func == "min":
                agg = np.full(self.n_items, np.inf)
                np.minimum.at(agg, items, values)
            else:
                agg = np.full(self.n_items, -np.inf)
                np.maximum.at(agg, items, values)
            out[:] = agg
        return out[present_codes]


def build_store(
    task: BellwetherTask,
    method: str = "cube",
    enforce_coverage: bool = True,
    enforce_budget: bool = False,
    parallel: ParallelConfig | None = None,
) -> tuple[MemoryStore, dict[Region, float], dict[Region, float]]:
    """Generate the entire training data for a task.

    Returns ``(store, costs, coverage)``.  Coverage pruning is applied by
    default (it does not change with the budget); budget pruning is off by
    default so one store can serve a whole budget sweep.  ``parallel``
    is forwarded to :meth:`TrainingDataGenerator.generate`.
    """
    with _TRACER.span("traindata.build_store", method=method):
        gen = TrainingDataGenerator(task)
        coverage = gen.coverage()
        costs = {r: task.cost(r) for r in gen.all_regions()}
        regions = []
        for region in gen.all_regions():
            if enforce_coverage and coverage[region] < task.criterion.min_coverage:
                continue
            if enforce_budget and not task.criterion.admits(costs[region], coverage[region]):
                continue
            regions.append(region)
        store = gen.generate(regions=regions, method=method, parallel=parallel)
    return store, costs, coverage
