"""Synthetic book store dataset (Section 7.2 substitute).

The paper's bookstore sample (900 K transactions, five states, 2004) showed
*no* clear bellwether: the basic search's error flattens with budget, but a
large fraction of regions stays statistically indistinguishable from the
returned one.  This generator reproduces that regime: no planted region —
every (city, month) cell carries the same heavy noise — over a
City/State/All location hierarchy in five states.
"""

from __future__ import annotations

from repro.dimensions import HierarchicalDimension
from repro.ml import ErrorEstimator

from .retail import RetailDataset, generate_retail

#: Five states with a City level below, echoing the 86-city sample.
BOOKSTORE_SPEC: dict[str, list[str]] = {
    "CA": ["LosAngeles", "SanFrancisco", "SanDiego", "Sacramento"],
    "TX": ["Houston", "Dallas", "Austin"],
    "NY": ["NewYorkCity", "Buffalo", "Albany"],
    "IL": ["Chicago", "Springfield"],
    "WA": ["Seattle", "Spokane", "Tacoma"],
}

CITY_WEIGHTS: dict[str, float] = {
    "LosAngeles": 3.5, "SanFrancisco": 2.2, "SanDiego": 1.8, "Sacramento": 1.2,
    "Houston": 2.8, "Dallas": 2.4, "Austin": 1.6,
    "NewYorkCity": 4.0, "Buffalo": 1.0, "Albany": 0.8,
    "Chicago": 3.0, "Springfield": 0.7,
    "Seattle": 2.0, "Spokane": 0.8, "Tacoma": 0.9,
}

GENRES = ("fiction", "history", "science", "children")


def bookstore_location_dimension(attribute: str = "city") -> HierarchicalDimension:
    return HierarchicalDimension.from_spec(
        attribute,
        BOOKSTORE_SPEC,
        level_names=("All", "State", "City"),
    )


def make_bookstore(
    n_items: int = 150,
    n_months: int = 12,
    seed: int = 7,
    presence: float = 0.45,
    cell_noise: float = 1.5,
    error_estimator: ErrorEstimator | None = None,
) -> RetailDataset:
    """Generate the bookstore analog — deliberately without a bellwether."""
    location = bookstore_location_dimension("city")
    return generate_retail(
        n_items=n_items,
        n_months=n_months,
        location=location,
        state_weights=CITY_WEIGHTS,
        categories=GENRES,
        planted={},  # no planted region: the defining property of this regime
        seed=seed,
        presence=presence,
        cell_noise=cell_noise,
        error_estimator=error_estimator,
        month_attr="month",
        state_attr="city",
    )
