"""Shared machinery for the synthetic retail generators (mail order, books).

The real datasets of Sections 7.1-7.2 are proprietary; these generators
produce star schemas of the same shape with a *controllable* bellwether
structure:

* every item has a latent size ``u_i`` (weakly driven by its item-table
  features, so item-only models underperform — Section 3.1's premise) and a
  common factor ``c_i`` that dominates its total profit;
* cells of a *planted* (state, month-window) track ``u_i * c_i`` with tiny
  noise, so that cheap region's features predict the global target well;
* all other cells carry heavy multiplicative noise, so only large (costly)
  regions wash it out.

With no planted region every cell is equally noisy — the bookstore regime,
where no unique bellwether exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import (
    AggregateTargetQuery,
    BellwetherTask,
    Criterion,
    DistinctJoinAggregate,
    FactAggregate,
    JoinAggregate,
)
from repro.dimensions import (
    HierarchicalDimension,
    IntervalDimension,
    ItemHierarchies,
    ProductCostModel,
    RegionSpace,
)
from repro.ml import CrossValidationEstimator, ErrorEstimator
from repro.table import Database, Reference, Table


@dataclass
class RetailDataset:
    """A generated retail star schema plus its ready-made bellwether task."""

    db: Database
    space: RegionSpace
    item_table: Table
    task: BellwetherTask
    cell_costs: dict[tuple, float]
    hierarchies: ItemHierarchies
    planted: dict[str, tuple[str, int]]  # category -> (state, month window)


def _split_cell_profit(rng: np.random.Generator, total: float, n: int) -> np.ndarray:
    """Split a cell's profit into n transaction profits (positive parts)."""
    if n == 1:
        return np.array([total])
    parts = rng.dirichlet(np.ones(n))
    return total * parts


def generate_retail(
    n_items: int,
    n_months: int,
    location: HierarchicalDimension,
    state_weights: dict[str, float],
    categories: tuple[str, ...],
    planted: dict[str, tuple[str, int]],
    seed: int = 0,
    presence: float = 0.7,
    cell_noise: float = 0.9,
    planted_noise: float = 0.2,
    common_noise: float = 0.4,
    size_noise: float = 0.5,
    n_catalogs: int = 12,
    min_coverage: float = 0.25,
    error_estimator: ErrorEstimator | None = None,
    month_attr: str = "month",
    state_attr: str = "state",
) -> RetailDataset:
    """Build a retail star schema with (optionally) planted bellwethers.

    ``planted`` maps item categories to their (state, window) bellwether;
    an empty dict produces the no-bellwether (bookstore) regime.
    """
    rng = np.random.default_rng(seed)
    states = list(location.leaf_names)
    # ------------------------------------------------------------- item table
    ids = np.arange(1, n_items + 1)
    category = rng.choice(list(categories), n_items).astype(object)
    rdexpense = rng.normal(50.0, 15.0, n_items)
    rd_band = np.where(
        rdexpense < 42, "low", np.where(rdexpense < 58, "mid", "high")
    ).astype(object)
    item_table = Table(
        {
            "item": ids,
            "category": category,
            "rdexpense": rdexpense,
            "rd_band": rd_band,
        }
    )
    # --------------------------------------------------------- latent structure
    z_rd = (rdexpense - rdexpense.mean()) / rdexpense.std()
    u = np.exp(0.35 * z_rd + rng.normal(0.0, size_noise, n_items)) * 2_000.0
    c = np.exp(rng.normal(0.0, common_noise, n_items))
    season = 1.0 + 0.25 * np.sin(np.linspace(0, np.pi, n_months))
    share = {s: state_weights[s] / sum(state_weights.values()) for s in states}
    # ------------------------------------------------------------- fact rows
    rows_item: list[int] = []
    rows_month: list[int] = []
    rows_state: list[str] = []
    rows_catalog: list[int] = []
    rows_quantity: list[int] = []
    rows_profit: list[float] = []
    catalogs_of_item = {
        i: rng.choice(n_catalogs, size=rng.integers(2, 5), replace=False)
        for i in ids
    }
    for k, item in enumerate(ids):
        plant = planted.get(str(category[k]))
        for s in states:
            for m in range(1, n_months + 1):
                is_planted = (
                    plant is not None and s == plant[0] and m <= plant[1]
                )
                if not is_planted and rng.random() > presence:
                    continue
                if is_planted:
                    mean = u[k] * c[k] * share[s] * season[m - 1]
                    profit = mean * np.exp(rng.normal(0.0, planted_noise))
                else:
                    mean = u[k] * c[k] * share[s] * season[m - 1]
                    profit = mean * np.exp(
                        rng.normal(-cell_noise**2 / 2, cell_noise)
                    )
                n_orders = 1 + int(rng.poisson(0.4))
                for part in _split_cell_profit(rng, profit, n_orders):
                    rows_item.append(int(item))
                    rows_month.append(m)
                    rows_state.append(s)
                    rows_catalog.append(int(rng.choice(catalogs_of_item[item])))
                    rows_quantity.append(int(rng.integers(1, 6)))
                    rows_profit.append(float(part))
    fact = Table(
        {
            "item": rows_item,
            month_attr: rows_month,
            state_attr: np.array(rows_state, dtype=object),
            "catalog": rows_catalog,
            "quantity": rows_quantity,
            "profit": rows_profit,
        }
    )
    catalog_table = Table(
        {
            "catalog": np.arange(n_catalogs),
            "pages": rng.uniform(8, 64, n_catalogs).round(0),
        }
    )
    db = Database(fact, [Reference("catalogs", catalog_table, "catalog")])
    # ----------------------------------------------------------------- task
    time = IntervalDimension(month_attr, n_months, unit="month")
    space = RegionSpace([time, location])
    cost_model = ProductCostModel(space, state_weights)
    task = BellwetherTask(
        db,
        space,
        item_table,
        "item",
        target=AggregateTargetQuery("sum", "profit", "item"),
        regional_features=[
            FactAggregate("sum", "profit", "reg_profit"),
            FactAggregate("count", "profit", "reg_orders"),
            JoinAggregate("max", "pages", "reg_max_pages", reference="catalogs"),
            DistinctJoinAggregate(
                "sum", "pages", "reg_catalog_pages", reference="catalogs"
            ),
        ],
        item_feature_attrs=("category", "rdexpense"),
        cost_model=cost_model,
        criterion=Criterion(min_coverage=min_coverage),
        error_estimator=error_estimator or CrossValidationEstimator(n_folds=10),
    )
    cell_costs = {
        (m, s): state_weights[s]
        for m in range(1, n_months + 1)
        for s in states
    }
    hierarchies = _item_hierarchies(categories)
    return RetailDataset(
        db=db,
        space=space,
        item_table=item_table,
        task=task,
        cell_costs=cell_costs,
        hierarchies=hierarchies,
        planted=dict(planted),
    )


def _item_hierarchies(categories: tuple[str, ...]) -> ItemHierarchies:
    """Category and R&D-band item hierarchies (Figure 5 analog)."""
    half = max(len(categories) // 2, 1)
    cat_spec = {
        "GroupA": sorted(categories[:half]),
        "GroupB": sorted(categories[half:]) or [categories[-1]],
    }
    cat_spec = {k: v for k, v in cat_spec.items() if v}
    category_h = HierarchicalDimension.from_spec(
        "category",
        cat_spec,
        level_names=("Any", "Group", "Category"),
        root_name="Any",
    )
    band_h = HierarchicalDimension.from_spec(
        "rd_band",
        {"Cheap": ["low", "mid"], "Pricey": ["high"]},
        level_names=("Any", "Range", "Band"),
        root_name="Any",
    )
    return ItemHierarchies([category_h, band_h])
