"""A compact US-style location hierarchy shared by the retail generators.

Mirrors the mail-order dataset's State / Division / Region / All levels
(Section 7.1) with 24 states.  Location weights play the paper's
"zip code areas / 100" role in the m x n cost model.
"""

from __future__ import annotations

from repro.dimensions import HierarchicalDimension

#: Region -> Division -> [States]
US_SPEC: dict[str, dict[str, list[str]]] = {
    "West": {
        "Pacific": ["CA", "WA", "OR"],
        "Mountain": ["CO", "AZ", "NV"],
    },
    "Midwest": {
        "EastNorthCentral": ["WI", "IL", "MI", "OH"],
        "WestNorthCentral": ["MN", "MO", "KS"],
    },
    "South": {
        "SouthAtlantic": ["MD", "FL", "GA", "VA"],
        "WestSouthCentral": ["TX", "OK", "LA"],
    },
    "Northeast": {
        "NewEngland": ["MA", "CT", "NH"],
        "MidAtlantic": ["NY", "NJ", "PA"],
    },
}

#: Per-state cost weights (the "zip code areas / 100" analog).  Loosely
#: population-proportional; MD is priced so the planted bellwether
#: [1-8, MD] costs ~46 — putting the Bel-Err convergence knee near budget
#: 50, where the paper's Figure 7(a) shows it.
STATE_WEIGHTS: dict[str, float] = {
    "CA": 6.0, "WA": 2.0, "OR": 1.4,
    "CO": 1.6, "AZ": 1.8, "NV": 1.0,
    "WI": 1.6, "IL": 3.4, "MI": 2.8, "OH": 3.2,
    "MN": 1.8, "MO": 2.0, "KS": 1.2,
    "MD": 5.8, "FL": 5.0, "GA": 2.6, "VA": 2.4,
    "TX": 5.6, "OK": 1.4, "LA": 1.6,
    "MA": 2.2, "CT": 1.2, "NH": 0.8,
    "NY": 4.8, "NJ": 2.6, "PA": 3.6,
}


def us_location_dimension(attribute: str = "state") -> HierarchicalDimension:
    """The State/Division/Region/All hierarchy over ``attribute``."""
    return HierarchicalDimension.from_spec(
        attribute,
        US_SPEC,
        level_names=("All", "Region", "Division", "State"),
    )


def all_states() -> list[str]:
    return [s for region in US_SPEC.values() for div in region.values() for s in div]
