"""Synthetic datasets standing in for the paper's proprietary data.

See DESIGN.md Section 2 for the substitution rationale per dataset.
"""

from .bookstore import make_bookstore
from .locations import STATE_WEIGHTS, all_states, us_location_dimension
from .mailorder import (
    DEFAULT_PLANT,
    HETEROGENEOUS_PLANT,
    make_mailorder,
)
from .retail import RetailDataset, generate_retail
from .scalability import (
    OutOfCoreScalability,
    ScalabilityDataset,
    make_scalability,
    write_scalability,
)
from .simulation import SimulationDataset, make_simulation

__all__ = [
    "DEFAULT_PLANT",
    "HETEROGENEOUS_PLANT",
    "OutOfCoreScalability",
    "RetailDataset",
    "STATE_WEIGHTS",
    "ScalabilityDataset",
    "SimulationDataset",
    "all_states",
    "generate_retail",
    "make_bookstore",
    "make_mailorder",
    "make_scalability",
    "make_simulation",
    "us_location_dimension",
    "write_scalability",
]
