"""The Section 7.3 simulation generator, reimplemented as specified.

The paper: items carry eight binary features; targets are produced by a
random decision tree over those features, each leaf owning a randomly chosen
bellwether region and a linear model over that region's four regional
features; ``y = Σ β_k X_k + ε``.  Regional features for *all* regions are
randomly generated, so only the leaf's own region is informative.

Varying the tree's node count sweeps the complexity of the bellwether
distribution (Figure 10(b)); varying ε's standard deviation sweeps the noise
(Figure 10(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import DirectTask
from repro.dimensions import (
    HierarchicalDimension,
    ItemHierarchies,
    Region,
)
from repro.ml import CrossValidationEstimator, ErrorEstimator
from repro.storage import MemoryStore, RegionBlock
from repro.table import Table

N_BINARY_FEATURES = 8


@dataclass
class _PlantedLeaf:
    """One leaf of the generating tree: a feature-value path, region, model."""

    path: dict[int, str]  # feature index -> required value ("0"/"1")
    region: Region
    beta: np.ndarray


@dataclass
class SimulationDataset:
    """A generated simulation instance."""

    task: DirectTask
    store: MemoryStore
    hierarchies: ItemHierarchies
    leaves: list[_PlantedLeaf] = field(default_factory=list)
    regions: list[Region] = field(default_factory=list)


def _random_tree_leaves(
    rng: np.random.Generator, n_nodes: int
) -> list[dict[int, str]]:
    """Leaf paths of a random binary tree with ~n_nodes nodes.

    Grown by repeatedly splitting a random leaf on a feature unused along
    its path; each split adds two nodes.
    """
    leaves: list[dict[int, str]] = [{}]
    total_nodes = 1
    while total_nodes < n_nodes:
        splittable = [
            leaf for leaf in leaves if len(leaf) < N_BINARY_FEATURES
        ]
        if not splittable:
            break
        leaf = splittable[rng.integers(len(splittable))]
        unused = [j for j in range(N_BINARY_FEATURES) if j not in leaf]
        feature = int(rng.choice(unused))
        leaves.remove(leaf)
        leaves.append({**leaf, feature: "0"})
        leaves.append({**leaf, feature: "1"})
        total_nodes += 2
    return leaves


def make_simulation(
    n_items: int = 500,
    n_tree_nodes: int = 15,
    noise: float = 0.5,
    n_regions: int = 24,
    n_regional_features: int = 4,
    seed: int = 0,
    error_estimator: ErrorEstimator | None = None,
) -> SimulationDataset:
    """Generate one simulation dataset (one point of Figure 10's averages)."""
    rng = np.random.default_rng(seed)
    # ---------------------------------------------------------------- items
    bits = rng.integers(0, 2, size=(n_items, N_BINARY_FEATURES)).astype(str)
    columns = {"item": np.arange(1, n_items + 1)}
    feature_names = [f"b{j}" for j in range(N_BINARY_FEATURES)]
    for j, name in enumerate(feature_names):
        columns[name] = bits[:, j].astype(object)
    item_table = Table(columns)
    # --------------------------------------------------------------- regions
    regions = [Region((f"r{k:02d}",)) for k in range(n_regions)]
    # ------------------------------------------------------------- generator
    leaf_paths = _random_tree_leaves(rng, n_tree_nodes)
    leaves = [
        _PlantedLeaf(
            path=path,
            region=regions[int(rng.integers(n_regions))],
            beta=rng.uniform(-2.0, 2.0, n_regional_features),
        )
        for path in leaf_paths
    ]
    leaf_of_item = np.empty(n_items, dtype=np.int64)
    for i in range(n_items):
        for L, leaf in enumerate(leaves):
            if all(bits[i, j] == v for j, v in leaf.path.items()):
                leaf_of_item[i] = L
                break
    # Regional features: iid standard normals per (region, item, feature).
    region_x = {
        r: rng.normal(size=(n_items, n_regional_features)) for r in regions
    }
    y = np.empty(n_items)
    for i in range(n_items):
        leaf = leaves[leaf_of_item[i]]
        y[i] = float(region_x[leaf.region][i] @ leaf.beta)
    y += rng.normal(0.0, noise, n_items)
    # ----------------------------------------------------------------- store
    task = DirectTask(
        item_table,
        "item",
        targets=y,
        item_feature_attrs=tuple(feature_names),
        error_estimator=error_estimator or CrossValidationEstimator(n_folds=10),
    )
    item_x = task.item_encoder.matrix(item_table["item"])
    blocks = {
        r: RegionBlock(
            item_ids=np.asarray(item_table["item"]),
            x=np.column_stack([item_x, region_x[r]]),
            y=y,
        )
        for r in regions
    }
    store_names = task.item_encoder.feature_names + tuple(
        f"x{k}" for k in range(n_regional_features)
    )
    store = MemoryStore(blocks, store_names)
    # Item hierarchies over the first four binary features (for the cube):
    # flat Any -> {0, 1} trees, giving the cube 2^4 lattice levels to adapt on.
    hierarchies = ItemHierarchies(
        [
            HierarchicalDimension.from_spec(
                name, ["0", "1"],
                level_names=("Any", "Bit"), root_name="Any",
            )
            for name in feature_names[:4]
        ]
    )
    return SimulationDataset(
        task=task,
        store=store,
        hierarchies=hierarchies,
        leaves=leaves,
        regions=regions,
    )
