"""The Section 7.4 scalability generator.

As in the paper: an item table of (default) 2,500 items with three item
hierarchies and a configurable number of numeric attributes; a region space
spanned by two tree-structured dimensions; one training example per item per
region, so the entire training data holds ``n_regions x n_items`` examples.
Targets derive from four predefined bellwether regions with small errors;
all other regional features are random noise.

Knobs map to the paper's sweep axes:

* ``n_regions`` (via the two dimension fanouts) — examples in the entire
  training data (Figures 11(a)-(c));
* ``hierarchy_leaves`` — number of significant cube subsets (Figure 12(a));
* ``n_numeric_features`` — item-table features seen by the RF tree
  (Figure 12(b)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import DirectTask
from repro.dimensions import HierarchicalDimension, ItemHierarchies, Region
from repro.exceptions import ConfigError
from repro.ml import ErrorEstimator, TrainingSetEstimator
from repro.storage import (
    ColumnarStore,
    DiskStore,
    MemoryStore,
    RegionBlock,
    TrainingDataStore,
)
from repro.table import Table


@dataclass
class ScalabilityDataset:
    """A generated scalability instance."""

    task: DirectTask
    store: MemoryStore
    hierarchies: ItemHierarchies
    planted_regions: list[Region]

    @property
    def n_examples_total(self) -> int:
        return self.store.n_examples_total


def make_scalability(
    n_items: int = 2_500,
    n_regions: int = 64,
    n_item_hierarchies: int = 3,
    hierarchy_leaves: int = 4,
    n_numeric_features: int = 4,
    n_regional_features: int = 4,
    noise: float = 0.1,
    seed: int = 0,
    error_estimator: ErrorEstimator | None = None,
) -> ScalabilityDataset:
    """Generate one scalability instance (entire training data in memory)."""
    rng = np.random.default_rng(seed)
    # ---------------------------------------------------------------- items
    columns: dict = {"item": np.arange(1, n_items + 1)}
    hier_attrs = [f"h{j}" for j in range(n_item_hierarchies)]
    for attr in hier_attrs:
        columns[attr] = rng.choice(
            [f"{attr}v{v}" for v in range(hierarchy_leaves)], n_items
        ).astype(object)
    num_attrs = [f"n{j}" for j in range(n_numeric_features)]
    for attr in num_attrs:
        columns[attr] = rng.normal(size=n_items)
    item_table = Table(columns)
    # -------------------------------------------------------------- regions
    side1 = max(2, int(math.isqrt(n_regions)))
    side2 = max(1, n_regions // side1)
    regions = [
        Region((f"d1n{a:02d}", f"d2n{b:02d}"))
        for a in range(side1)
        for b in range(side2)
    ][:n_regions]
    # ------------------------------------------------------------- targets
    planted = list(rng.choice(len(regions), size=min(4, len(regions)), replace=False))
    planted_regions = [regions[k] for k in planted]
    group_of_item = rng.integers(0, len(planted_regions), n_items)
    betas = rng.uniform(-2.0, 2.0, size=(len(planted_regions), n_regional_features))
    region_x = {
        r: rng.normal(size=(n_items, n_regional_features)) for r in regions
    }
    y = np.empty(n_items)
    for g, region in enumerate(planted_regions):
        mask = group_of_item == g
        y[mask] = region_x[region][mask] @ betas[g]
    y += rng.normal(0.0, noise, n_items)
    # ----------------------------------------------------------------- task
    task = DirectTask(
        item_table,
        "item",
        targets=y,
        item_feature_attrs=tuple(num_attrs),
        # Scalability runs time the algorithms; the cheap estimator keeps the
        # comparisons about scan behaviour, as in the paper's Java setup.
        error_estimator=error_estimator or TrainingSetEstimator(),
    )
    item_x = task.item_encoder.matrix(item_table["item"])
    ids = np.asarray(item_table["item"])
    blocks = {
        r: RegionBlock(
            item_ids=ids,
            x=np.column_stack([item_x, region_x[r]]),
            y=y,
        )
        for r in regions
    }
    store_names = task.item_encoder.feature_names + tuple(
        f"x{k}" for k in range(n_regional_features)
    )
    store = MemoryStore(blocks, store_names)
    hierarchies = ItemHierarchies(
        [
            HierarchicalDimension.from_spec(
                attr,
                {f"{attr}side": [f"{attr}v{v}" for v in range(hierarchy_leaves)]},
                level_names=("Any", "Side", "Value"),
                root_name="Any",
            )
            for attr in hier_attrs
        ]
    )
    return ScalabilityDataset(
        task=task,
        store=store,
        hierarchies=hierarchies,
        planted_regions=planted_regions,
    )


@dataclass
class OutOfCoreScalability:
    """A scalability instance whose training data lives on disk."""

    task: DirectTask
    store: TrainingDataStore
    hierarchies: ItemHierarchies
    planted_regions: list[Region]
    directory: Path

    @property
    def n_examples_total(self) -> int:
        return self.store.n_examples_total


def _region_rng(seed: int, r_idx: int) -> np.random.Generator:
    # Each region draws its features from its own child stream, so a block's
    # bytes depend only on (seed, r_idx) — never on generation order or on
    # which backend is writing.  npz and columnar stores built from the same
    # seed therefore hold bit-identical arrays.
    return np.random.default_rng((seed, 1_000 + r_idx))


def write_scalability(
    directory: str | Path,
    n_items: int = 2_500,
    n_regions: int = 4_032,
    n_item_hierarchies: int = 2,
    hierarchy_leaves: int = 3,
    n_numeric_features: int = 2,
    n_regional_features: int = 4,
    noise: float = 0.1,
    seed: int = 0,
    backend: str = "columnar",
    error_estimator: ErrorEstimator | None = None,
) -> OutOfCoreScalability:
    """Stream a scalability instance to disk, one region block at a time.

    Unlike :func:`make_scalability`, the per-region feature matrices are never
    all resident: peak memory is one ``(n_items, p)`` block regardless of
    ``n_regions``, which is what makes the paper's 10M-example Figure 11 run
    fit on a laptop.  ``backend`` selects the on-disk layout (``"npz"`` or
    ``"columnar"``); both produce bit-identical training data for a given
    ``seed``.
    """
    directory = Path(directory)
    rng = np.random.default_rng(seed)
    # ---------------------------------------------------------------- items
    columns: dict = {"item": np.arange(1, n_items + 1)}
    hier_attrs = [f"h{j}" for j in range(n_item_hierarchies)]
    for attr in hier_attrs:
        columns[attr] = rng.choice(
            [f"{attr}v{v}" for v in range(hierarchy_leaves)], n_items
        ).astype(object)
    num_attrs = [f"n{j}" for j in range(n_numeric_features)]
    for attr in num_attrs:
        columns[attr] = rng.normal(size=n_items)
    item_table = Table(columns)
    # -------------------------------------------------------------- regions
    side1 = max(2, int(math.isqrt(n_regions)))
    side2 = max(1, n_regions // side1)
    regions = [
        Region((f"d1n{a:02d}", f"d2n{b:02d}"))
        for a in range(side1)
        for b in range(side2)
    ][:n_regions]
    # ------------------------------------------------------------- targets
    planted = list(rng.choice(len(regions), size=min(4, len(regions)), replace=False))
    planted_regions = [regions[k] for k in planted]
    group_of_item = rng.integers(0, len(planted_regions), n_items)
    betas = rng.uniform(-2.0, 2.0, size=(len(planted_regions), n_regional_features))
    y = np.empty(n_items)
    for g, r_idx in enumerate(planted):
        mask = group_of_item == g
        planted_x = _region_rng(seed, r_idx).normal(
            size=(n_items, n_regional_features)
        )
        y[mask] = planted_x[mask] @ betas[g]
    y += rng.normal(0.0, noise, n_items)
    # ----------------------------------------------------------------- task
    task = DirectTask(
        item_table,
        "item",
        targets=y,
        item_feature_attrs=tuple(num_attrs),
        error_estimator=error_estimator or TrainingSetEstimator(),
    )
    item_x = task.item_encoder.matrix(item_table["item"])
    ids = np.asarray(item_table["item"])
    store_names = task.item_encoder.feature_names + tuple(
        f"x{k}" for k in range(n_regional_features)
    )
    # ---------------------------------------------------------------- store
    if backend == "npz":
        writer_cm = DiskStore.writer(directory, store_names)
    elif backend == "columnar":
        writer_cm = ColumnarStore.writer(directory, store_names)
    else:
        raise ConfigError(
            f"unknown scalability backend {backend!r}; use 'npz' or 'columnar'"
        )
    with writer_cm as writer:
        for r_idx, region in enumerate(regions):
            region_x = _region_rng(seed, r_idx).normal(
                size=(n_items, n_regional_features)
            )
            writer.add(
                region,
                RegionBlock(
                    item_ids=ids,
                    x=np.column_stack([item_x, region_x]),
                    y=y,
                ),
            )
    hierarchies = ItemHierarchies(
        [
            HierarchicalDimension.from_spec(
                attr,
                {f"{attr}side": [f"{attr}v{v}" for v in range(hierarchy_leaves)]},
                level_names=("Any", "Side", "Value"),
                root_name="Any",
            )
            for attr in hier_attrs
        ]
    )
    return OutOfCoreScalability(
        task=task,
        store=writer.store,
        hierarchies=hierarchies,
        planted_regions=planted_regions,
        directory=directory,
    )
