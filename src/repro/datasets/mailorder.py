"""Synthetic mail-order dataset (Section 7.1 substitute).

The paper's mail-order data (1,012 items / 4 M transactions, catalog company,
1996) is proprietary.  This generator reproduces its *structure*: a fact
table of per-order profits over (month, state), a catalog reference table,
item-table features that are only weakly predictive on their own, and a
planted bellwether at ``[1-8, MD]`` — the very region the paper reports
finding.  Costs follow the paper's ``months x (zip areas / 100)`` form.
"""

from __future__ import annotations

from repro.ml import ErrorEstimator

from .locations import STATE_WEIGHTS, us_location_dimension
from .retail import RetailDataset, generate_retail

CATEGORIES = ("electronics", "clothing", "home", "garden")

#: The homogeneous plant: every category shares the paper's [1-8, MD].
DEFAULT_PLANT = {c: ("MD", 8) for c in CATEGORIES}

#: Category-dependent plants for the item-centric experiments (Figure 8):
#: different kinds of items have different bellwether regions.
HETEROGENEOUS_PLANT = {
    "electronics": ("MD", 3),  # cost 17.4
    "clothing": ("WI", 5),     # cost 8.0
    "home": ("CO", 6),         # cost 9.6
    "garden": ("NY", 2),       # cost 9.6
}


def make_mailorder(
    n_items: int = 200,
    n_months: int = 10,
    seed: int = 0,
    heterogeneous: bool = False,
    presence: float = 0.7,
    cell_noise: float = 0.9,
    error_estimator: ErrorEstimator | None = None,
) -> RetailDataset:
    """Generate the mail-order analog.

    Parameters
    ----------
    heterogeneous:
        Plant a different bellwether region per item category (used by the
        tree/cube prediction experiments) instead of a single global one.
    """
    location = us_location_dimension("state")
    planted = HETEROGENEOUS_PLANT if heterogeneous else DEFAULT_PLANT
    return generate_retail(
        n_items=n_items,
        n_months=n_months,
        location=location,
        state_weights=STATE_WEIGHTS,
        categories=CATEGORIES,
        planted=planted,
        seed=seed,
        presence=presence,
        cell_noise=cell_noise,
        error_estimator=error_estimator,
    )
