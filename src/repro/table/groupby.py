"""Group-by aggregation over columnar tables.

The central primitive is :func:`group_codes`, which maps each row to a dense
integer group id by factorizing the key columns.  Everything else — group-by,
distinct, the CUBE operator — is built on top of it.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .aggregates import AggregateSpec, reducer
from .errors import AggregateError
from .schema import ColumnType, Schema
from .table import Table


def factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode values as dense integer codes.

    Returns ``(codes, uniques)`` where ``uniques[codes] == values``.
    Object (string) columns are compared as strings.
    """
    if values.dtype == object:
        uniques, codes = np.unique(values.astype(str), return_inverse=True)
        return codes, uniques.astype(object)
    uniques, codes = np.unique(values, return_inverse=True)
    return codes, uniques


def group_codes(table: Table, keys: Sequence[str]) -> tuple[np.ndarray, Table]:
    """Assign a dense group id to every row.

    Returns ``(gids, groups)`` where ``gids`` has one entry per row of
    ``table`` and ``groups`` is a table with one row per distinct key
    combination, ordered by group id.
    """
    table.schema.require(*keys)
    if not keys:
        gids = np.zeros(table.n_rows, dtype=np.int64)
        return gids, Table({}, schema=Schema([]))
    per_key_codes = []
    per_key_uniques = []
    for key in keys:
        codes, uniques = factorize(table.column(key))
        per_key_codes.append(codes)
        per_key_uniques.append(uniques)
    combined = per_key_codes[0].astype(np.int64)
    for codes, uniques in zip(per_key_codes[1:], per_key_uniques[1:]):
        combined = combined * len(uniques) + codes
    unique_combined, gids = np.unique(combined, return_inverse=True)
    # Decode the combined radix code back into one representative per key.
    group_cols: dict[str, np.ndarray] = {}
    remaining = unique_combined.copy()
    for key, uniques in zip(reversed(keys), reversed(per_key_uniques)):
        base = len(uniques)
        group_cols[key] = uniques[remaining % base]
        remaining = remaining // base
    groups = Table({key: group_cols[key] for key in keys})
    return gids.astype(np.int64), groups


def group_by(
    table: Table,
    keys: Sequence[str],
    aggs: Sequence[AggregateSpec],
) -> Table:
    """SQL ``GROUP BY keys`` computing every aggregate in ``aggs``.

    With an empty ``keys`` the whole table is a single group and the result
    has exactly one row.
    """
    if not aggs:
        raise AggregateError("group_by requires at least one aggregate")
    for spec in aggs:
        table.schema.require(spec.column)
    gids, groups = group_codes(table, keys)
    n_groups = max(groups.n_rows, 1) if not keys else groups.n_rows
    if table.n_rows == 0:
        schema = groups.schema
        out = {k: groups.column(k) for k in groups.column_names}
        for spec in aggs:
            out[spec.alias] = np.empty(0, dtype=np.float64)
            schema = schema.extended(spec.alias, ColumnType.FLOAT)
        return Table(out, schema=schema)
    order = np.argsort(gids, kind="stable")
    sorted_gids = gids[order]
    starts = np.flatnonzero(np.diff(sorted_gids, prepend=-1))
    out: dict[str, np.ndarray] = {k: groups.column(k) for k in groups.column_names}
    for spec in aggs:
        values = table.column(spec.column)[order]
        if values.dtype == object and spec.func not in ("count", "count_distinct"):
            raise AggregateError(
                f"aggregate {spec.func!r} needs a numeric column, "
                f"{spec.column!r} is a string column"
            )
        out[spec.alias] = reducer(spec.func)(values, starts, n_groups)
    return Table(out)


def distinct_rows(table: Table) -> Table:
    """Remove duplicate rows (considering all columns)."""
    if table.n_rows == 0:
        return table
    gids, groups = group_codes(table, list(table.column_names))
    return groups


def count_rows_per_group(table: Table, keys: Sequence[str]) -> Table:
    """Convenience: ``SELECT keys, COUNT(*) AS n FROM table GROUP BY keys``."""
    first_col = table.column_names[0]
    result = group_by(table, keys, [AggregateSpec("count", first_col, alias="n")])
    return result
