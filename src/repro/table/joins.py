"""Natural (key--foreign-key) joins, as used by the stylized feature queries.

The paper's queries only join the fact table to reference tables through a
foreign key that is the reference table's primary key (``F ⋈ T`` in its
extended relational algebra).  :func:`natural_join` implements exactly that:
an inner hash join where the join key must be unique on the *right* side.
A general many-to-many :func:`inner_join` is also provided for completeness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .errors import JoinError
from .groupby import factorize
from .table import Table


def _join_keys(left: Table, right: Table, on: Sequence[str] | None) -> list[str]:
    if on is not None:
        keys = list(on)
    else:
        keys = [c for c in left.column_names if c in right.schema]
    if not keys:
        raise JoinError(
            f"no common columns between {left.column_names} and {right.column_names}"
        )
    left.schema.require(*keys)
    right.schema.require(*keys)
    return keys


def _encode_rows(table: Table, keys: Sequence[str], dictionaries: list[np.ndarray] | None = None):
    """Encode each row's key tuple as one integer.

    When ``dictionaries`` is given (from the other side of the join), values
    outside the dictionary get code -1 so they never match.
    """
    codes = np.zeros(table.n_rows, dtype=np.int64)
    dicts_out: list[np.ndarray] = []
    valid = np.ones(table.n_rows, dtype=bool)
    for j, key in enumerate(keys):
        values = table.column(key)
        if dictionaries is None:
            col_codes, uniques = factorize(values)
        else:
            uniques = dictionaries[j]
            lookup = values.astype(str) if values.dtype == object else values
            reference = uniques.astype(str) if uniques.dtype == object else uniques
            positions = np.searchsorted(reference, lookup)
            positions = np.clip(positions, 0, len(reference) - 1)
            found = reference[positions] == lookup if len(reference) else np.zeros(len(lookup), dtype=bool)
            col_codes = np.where(found, positions, 0)
            valid &= np.asarray(found, dtype=bool)
        dicts_out.append(uniques)
        codes = codes * max(len(uniques), 1) + col_codes
    return codes, valid, dicts_out


def natural_join(left: Table, right: Table, on: Sequence[str] | None = None) -> Table:
    """Key--foreign-key natural join.

    Every row of ``left`` is matched to *at most one* row of ``right``; rows
    without a match are dropped (inner join).  Raises :class:`JoinError` if
    the key is not unique in ``right``.  Non-key columns of ``right`` are
    appended to the result; name clashes outside the key are an error.
    """
    keys = _join_keys(left, right, on)
    clash = [
        c for c in right.column_names
        if c not in keys and c in left.schema
    ]
    if clash:
        raise JoinError(f"non-key columns appear on both sides: {clash}")
    right_codes, __, dictionaries = _encode_rows(right, keys)
    if len(np.unique(right_codes)) != right.n_rows:
        raise JoinError(f"join key {keys} is not unique in the right table")
    left_codes, valid, __ = _encode_rows(left, keys, dictionaries)
    # Map each left code to the matching right row (or drop it).
    order = np.argsort(right_codes)
    sorted_codes = right_codes[order]
    positions = np.searchsorted(sorted_codes, left_codes)
    positions = np.clip(positions, 0, max(len(sorted_codes) - 1, 0))
    if len(sorted_codes):
        matched = valid & (sorted_codes[positions] == left_codes)
    else:
        matched = np.zeros(left.n_rows, dtype=bool)
    left_rows = np.flatnonzero(matched)
    right_rows = order[positions[matched]]
    result = left.take(left_rows)
    for name in right.column_names:
        if name in keys:
            continue
        result = result.with_column(name, right.column(name)[right_rows])
    return result


def inner_join(left: Table, right: Table, on: Sequence[str] | None = None) -> Table:
    """General inner equi-join (right key may repeat)."""
    keys = _join_keys(left, right, on)
    clash = [c for c in right.column_names if c not in keys and c in left.schema]
    if clash:
        raise JoinError(f"non-key columns appear on both sides: {clash}")
    right_codes, __, dictionaries = _encode_rows(right, keys)
    left_codes, valid, __ = _encode_rows(left, keys, dictionaries)
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    lo = np.searchsorted(sorted_codes, left_codes, side="left")
    hi = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = np.where(valid, hi - lo, 0)
    left_rows = np.repeat(np.arange(left.n_rows), counts)
    right_rows = np.concatenate(
        [order[lo[i]:hi[i]] for i in np.flatnonzero(counts)]
    ) if counts.sum() else np.empty(0, dtype=np.int64)
    result = left.take(left_rows)
    for name in right.column_names:
        if name in keys:
            continue
        result = result.with_column(name, right.column(name)[right_rows])
    return result


def left_join(
    left: Table,
    right: Table,
    on: Sequence[str] | None = None,
    fill: float = np.nan,
) -> Table:
    """Left outer key--foreign-key join.

    Like :func:`natural_join` but unmatched left rows are kept; their
    right-side numeric columns take ``fill`` and string columns take ``""``.
    """
    keys = _join_keys(left, right, on)
    clash = [c for c in right.column_names if c not in keys and c in left.schema]
    if clash:
        raise JoinError(f"non-key columns appear on both sides: {clash}")
    right_codes, __, dictionaries = _encode_rows(right, keys)
    if len(np.unique(right_codes)) != right.n_rows:
        raise JoinError(f"join key {keys} is not unique in the right table")
    left_codes, valid, __ = _encode_rows(left, keys, dictionaries)
    order = np.argsort(right_codes)
    sorted_codes = right_codes[order]
    positions = np.searchsorted(sorted_codes, left_codes)
    positions = np.clip(positions, 0, max(len(sorted_codes) - 1, 0))
    if len(sorted_codes):
        matched = valid & (sorted_codes[positions] == left_codes)
        right_rows = order[positions]
    else:
        matched = np.zeros(left.n_rows, dtype=bool)
        right_rows = np.zeros(left.n_rows, dtype=np.int64)
    result = left
    from .schema import ColumnType

    for name in right.column_names:
        if name in keys:
            continue
        source = right.column(name)
        is_str = right.schema.type_of(name) is ColumnType.STR
        if right.n_rows == 0:
            values = (
                np.full(left.n_rows, "", dtype=object)
                if is_str
                else np.full(left.n_rows, fill)
            )
        elif is_str:
            values = np.where(matched, source[right_rows], "").astype(object)
        else:
            values = np.where(
                matched, source[right_rows].astype(np.float64), fill
            )
        result = result.with_column(name, values)
    return result


def semi_join(left: Table, right: Table, on: Sequence[str] | None = None) -> Table:
    """Rows of ``left`` that have at least one match in ``right``."""
    keys = _join_keys(left, right, on)
    right_codes, __, dictionaries = _encode_rows(right, keys)
    left_codes, valid, __ = _encode_rows(left, keys, dictionaries)
    matched = valid & np.isin(left_codes, right_codes)
    return left.take(np.flatnonzero(matched))
