"""CSV load/save for tables and star schemas (round-trip safe)."""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from .errors import SchemaError
from .schema import ColumnType, Schema
from .table import Table

_TYPE_TAGS = {ColumnType.INT: "int", ColumnType.FLOAT: "float", ColumnType.STR: "str"}
_TAG_TYPES = {v: k for k, v in _TYPE_TAGS.items()}


def save_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a typed two-line header.

    Line 1 holds column names, line 2 holds their types, so the file loads
    back with the exact same schema.
    """
    path = Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(table.column_names)
        writer.writerow(_TYPE_TAGS[table.schema.type_of(c)] for c in table.column_names)
        columns = [table.column(c) for c in table.column_names]
        for i in range(table.n_rows):
            writer.writerow(col[i] for col in columns)


def load_csv(path: str | Path) -> Table:
    """Load a table previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open(newline="") as f:
        reader = csv.reader(f)
        try:
            names = next(reader)
            tags = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: missing typed CSV header") from None
        if len(tags) != len(names):
            raise SchemaError(f"{path}: header/type line length mismatch")
        try:
            types = [_TAG_TYPES[t] for t in tags]
        except KeyError as exc:
            raise SchemaError(f"{path}: unknown column type tag {exc}") from None
        rows = list(reader)
    schema = Schema(list(zip(names, types)))
    columns: dict[str, np.ndarray] = {}
    for j, (name, col_type) in enumerate(zip(names, types)):
        raw = [row[j] for row in rows]
        if col_type is ColumnType.INT:
            columns[name] = np.array([int(v) for v in raw], dtype=np.int64)
        elif col_type is ColumnType.FLOAT:
            columns[name] = np.array([float(v) for v in raw], dtype=np.float64)
        else:
            columns[name] = np.array(raw, dtype=object)
    if not rows:
        return Table.empty(schema)
    return Table(columns, schema=schema)


def save_database(db, directory: str | Path) -> None:
    """Persist a star schema: one CSV per table plus a JSON manifest.

    The manifest records each reference table's key so :func:`load_database`
    restores the exact :class:`~repro.table.Database` structure.
    """
    from .database import Database  # local import avoids a cycle

    if not isinstance(db, Database):
        raise SchemaError(f"expected a Database, got {type(db).__name__}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_csv(db.fact, directory / "fact.csv")
    references = []
    for name in db.reference_names:
        ref = db.reference(name)
        save_csv(ref.table, directory / f"ref_{name}.csv")
        references.append({"name": name, "key": ref.key})
    manifest = {"fact": "fact.csv", "references": references}
    (directory / "database.json").write_text(json.dumps(manifest, indent=2))


def load_database(directory: str | Path):
    """Load a star schema previously written by :func:`save_database`."""
    from .database import Database, Reference

    directory = Path(directory)
    manifest_path = directory / "database.json"
    if not manifest_path.exists():
        raise SchemaError(f"{directory}: no database.json manifest")
    manifest = json.loads(manifest_path.read_text())
    fact = load_csv(directory / manifest["fact"])
    references = [
        Reference(
            entry["name"],
            load_csv(directory / f"ref_{entry['name']}.csv"),
            entry["key"],
        )
        for entry in manifest["references"]
    ]
    return Database(fact, references)
