"""The CUBE operator (Gray et al.) over flat grouping attributes.

``cube(table, dims, aggs)`` computes one group-by per subset of ``dims``;
rows belonging to a coarser grouping carry the placeholder :data:`ALL` in the
rolled-up columns.  For distributive aggregates the coarser groupings are
computed by *merging base cells* rather than rescanning the input, which is
the standard data-cube optimization the paper leans on in Sections 4 and 6.

Hierarchy- and interval-aware rollups (where a dimension value is a tree node
or a prefix window rather than a plain attribute value) live in
``repro.core.training_data``; this module is the flat-attribute substrate.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from .aggregates import MERGE, AggregateSpec
from .errors import AggregateError
from .groupby import group_by
from .table import Table

#: Placeholder stored in a dimension column when that dimension is rolled up.
ALL = "*"


def _base_cells(table: Table, dims: Sequence[str], aggs: Sequence[AggregateSpec]) -> Table:
    """Finest-grained group-by, with a helper row count for AVG rollup."""
    specs = list(aggs)
    helper_needed = any(a.func == "avg" for a in aggs)
    if helper_needed:
        specs = specs + [AggregateSpec("count", dims[0], alias="__cell_count__")]
        specs = specs + [
            AggregateSpec("sum", a.column, alias=f"__cell_sum__{a.alias}")
            for a in aggs
            if a.func == "avg"
        ]
    return group_by(table, dims, specs)


def _rollup_from_base(
    base: Table,
    dims: Sequence[str],
    keep: Sequence[str],
    aggs: Sequence[AggregateSpec],
) -> Table:
    """Aggregate base cells up to the grouping ``keep`` ⊆ ``dims``."""
    merge_specs: list[AggregateSpec] = []
    for a in aggs:
        if a.func == "count":
            # Merging counts across base cells means summing them.
            merge_specs.append(AggregateSpec("sum", a.alias, alias=a.alias))
        elif a.func in MERGE:
            merge_specs.append(AggregateSpec(a.func, a.alias, alias=a.alias))
        elif a.func == "avg":
            merge_specs.append(
                AggregateSpec("sum", f"__cell_sum__{a.alias}", alias=f"__sum__{a.alias}")
            )
        else:
            raise AggregateError(
                f"aggregate {a.func!r} is not distributive/algebraic; "
                "cube cannot roll it up from base cells"
            )
    if any(a.func == "avg" for a in aggs):
        merge_specs.append(AggregateSpec("sum", "__cell_count__", alias="__count__"))
    grouped = group_by(base, list(keep), merge_specs)
    out: dict[str, np.ndarray] = {k: grouped.column(k) for k in keep}
    for a in aggs:
        if a.func == "avg":
            out[a.alias] = grouped.column(f"__sum__{a.alias}") / grouped.column("__count__")
        else:
            out[a.alias] = grouped.column(a.alias)
    return Table(out)


def cube(
    table: Table,
    dims: Sequence[str],
    aggs: Sequence[AggregateSpec],
    include_dims: Sequence[Sequence[str]] | None = None,
) -> Table:
    """Compute CUBE(dims) with the given aggregates.

    Parameters
    ----------
    include_dims:
        Optional explicit list of groupings (each a subset of ``dims``) to
        compute; defaults to all ``2^len(dims)`` subsets.

    Returns a table with every column of ``dims`` (placeholder :data:`ALL`
    where rolled up, so dimension columns come back as strings) plus one
    column per aggregate alias.
    """
    dims = list(dims)
    table.schema.require(*dims)
    if include_dims is None:
        groupings: list[tuple[str, ...]] = []
        for k in range(len(dims), -1, -1):
            groupings.extend(itertools.combinations(dims, k))
    else:
        groupings = [tuple(g) for g in include_dims]
        for g in groupings:
            unknown = set(g) - set(dims)
            if unknown:
                raise AggregateError(f"grouping {g} uses non-cube dims {unknown}")
    mergeable = all(a.func in MERGE or a.func == "avg" for a in aggs)
    base = _base_cells(table, dims, aggs) if mergeable and dims else None
    pieces: list[Table] = []
    for keep in groupings:
        if base is not None:
            grouped = _rollup_from_base(base, dims, list(keep), aggs)
        else:
            grouped = group_by(table, list(keep), list(aggs))
        cols: dict[str, np.ndarray] = {}
        for d in dims:
            if d in keep:
                cols[d] = grouped.column(d).astype(object).astype(str).astype(object)
            else:
                cols[d] = np.full(grouped.n_rows, ALL, dtype=object)
        for a in aggs:
            cols[a.alias] = grouped.column(a.alias)
        pieces.append(Table(cols))
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.concat(piece)
    return result


def rollup(
    table: Table,
    dims: Sequence[str],
    aggs: Sequence[AggregateSpec],
) -> Table:
    """SQL ROLLUP: only the prefix groupings (d1..dk for k = n..0)."""
    dims = list(dims)
    prefixes = [tuple(dims[:k]) for k in range(len(dims), -1, -1)]
    return cube(table, dims, aggs, include_dims=prefixes)
