"""Schema description for columnar tables.

A :class:`Schema` is an ordered mapping from column names to
:class:`ColumnType`.  The engine stores every column as a numpy array whose
dtype is derived from the column type:

* ``INT``    -> ``int64``
* ``FLOAT``  -> ``float64``
* ``STR``    -> ``object`` (Python strings)

The schema is deliberately tiny: the bellwether workloads only need numeric
measures, integer keys/time points and string dimension members.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping

import numpy as np

from .errors import ColumnNotFoundError, SchemaError


class ColumnType(enum.Enum):
    """Logical type of a table column."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype used to store columns of this type."""
        if self is ColumnType.INT:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return self is not ColumnType.STR

    @classmethod
    def from_array(cls, values: np.ndarray) -> "ColumnType":
        """Infer the logical type of an existing numpy array."""
        if np.issubdtype(values.dtype, np.integer) or values.dtype == np.bool_:
            return cls.INT
        if np.issubdtype(values.dtype, np.floating):
            return cls.FLOAT
        return cls.STR


class Schema:
    """An ordered set of (column name, column type) pairs."""

    def __init__(self, columns: Mapping[str, ColumnType] | Iterable[tuple[str, ColumnType]]):
        items = list(columns.items()) if isinstance(columns, Mapping) else list(columns)
        names = [name for name, _ in items]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._types: dict[str, ColumnType] = dict(items)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._types)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self):
        return iter(self._types.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._types == other._types

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}: {t.value}" for n, t in self._types.items())
        return f"Schema({cols})"

    def type_of(self, name: str) -> ColumnType:
        """Return the type of a column, raising if it does not exist."""
        try:
            return self._types[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.names) from None

    def require(self, *names: str) -> None:
        """Raise :class:`ColumnNotFoundError` unless every name is present."""
        for name in names:
            if name not in self._types:
                raise ColumnNotFoundError(name, self.names)

    def subset(self, names: Iterable[str]) -> "Schema":
        """A new schema restricted (and reordered) to ``names``."""
        names = list(names)
        self.require(*names)
        return Schema([(n, self._types[n]) for n in names])

    def extended(self, name: str, column_type: ColumnType) -> "Schema":
        """A new schema with one extra column appended."""
        if name in self._types:
            raise SchemaError(f"column {name!r} already exists")
        return Schema([*self._types.items(), (name, column_type)])
