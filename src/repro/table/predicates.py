"""Row predicates for relational selection.

Predicates are small composable objects producing a boolean mask over a
table.  The paper's stylized queries only need equality, membership and range
tests combined with conjunction, which is what we provide — plus an escape
hatch (:class:`Where`) for arbitrary vectorized conditions.

Example
-------
>>> from repro.table import Table
>>> t = Table({"item": [1, 2, 3], "profit": [10.0, 20.0, 30.0]})
>>> t.select(Eq("item", 2) | Eq("item", 3)).n_rows
2
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .table import Table


class Predicate:
    """Base class: a boolean condition over the rows of a table."""

    def mask(self, table: "Table") -> np.ndarray:
        """Boolean array with one entry per row of ``table``."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Eq(Predicate):
    """``column == value``."""

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def mask(self, table: "Table") -> np.ndarray:
        return table.column(self.column) == self.value

    def __repr__(self) -> str:
        return f"Eq({self.column!r}, {self.value!r})"


class In(Predicate):
    """``column IN values``."""

    def __init__(self, column: str, values: Iterable[Any]):
        self.column = column
        self.values = frozenset(values)

    def mask(self, table: "Table") -> np.ndarray:
        col = table.column(self.column)
        if col.dtype == object:
            values = self.values
            return np.fromiter((v in values for v in col), dtype=bool, count=len(col))
        return np.isin(col, list(self.values))

    def __repr__(self) -> str:
        return f"In({self.column!r}, {sorted(map(repr, self.values))})"


class Between(Predicate):
    """``lo <= column <= hi`` (inclusive on both ends)."""

    def __init__(self, column: str, lo: Any, hi: Any):
        self.column = column
        self.lo = lo
        self.hi = hi

    def mask(self, table: "Table") -> np.ndarray:
        col = table.column(self.column)
        return (col >= self.lo) & (col <= self.hi)

    def __repr__(self) -> str:
        return f"Between({self.column!r}, {self.lo!r}, {self.hi!r})"


class Ge(Predicate):
    """``column >= value``."""

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def mask(self, table: "Table") -> np.ndarray:
        return table.column(self.column) >= self.value


class Lt(Predicate):
    """``column < value``."""

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def mask(self, table: "Table") -> np.ndarray:
        return table.column(self.column) < self.value


class Where(Predicate):
    """Arbitrary vectorized condition ``fn(table) -> bool array``."""

    def __init__(self, fn: Callable[["Table"], np.ndarray]):
        self.fn = fn

    def mask(self, table: "Table") -> np.ndarray:
        return np.asarray(self.fn(table), dtype=bool)


class And(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts = parts

    def mask(self, table: "Table") -> np.ndarray:
        result = self.parts[0].mask(table)
        for part in self.parts[1:]:
            result = result & part.mask(table)
        return result

    def __repr__(self) -> str:
        return " & ".join(map(repr, self.parts))


class Or(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts = parts

    def mask(self, table: "Table") -> np.ndarray:
        result = self.parts[0].mask(table)
        for part in self.parts[1:]:
            result = result | part.mask(table)
        return result

    def __repr__(self) -> str:
        return " | ".join(map(repr, self.parts))


class Not(Predicate):
    def __init__(self, inner: Predicate):
        self.inner = inner

    def mask(self, table: "Table") -> np.ndarray:
        return ~self.inner.mask(table)

    def __repr__(self) -> str:
        return f"~({self.inner!r})"
