"""Columnar relational engine: the database substrate for bellwether analysis.

Public surface:

* :class:`Table`, :class:`Schema`, :class:`ColumnType` — storage.
* Predicates (:class:`Eq`, :class:`In`, :class:`Between`, ...) — selection.
* :func:`group_by`, :class:`AggregateSpec` — aggregation.
* :func:`natural_join`, :func:`inner_join`, :func:`semi_join` — joins.
* :func:`cube`, :func:`rollup`, :data:`ALL` — the CUBE operator.
* :func:`iceberg_cube`, :func:`iceberg_distinct_count` — thresholded cubes.
* :class:`Database`, :class:`Reference` — star schemas.
* :func:`load_csv`, :func:`save_csv` — persistence.
"""

from .aggregates import AggregateSpec, aggregate_names
from .cube import ALL, cube, rollup
from .csv_io import load_csv, load_database, save_csv, save_database
from .database import Database, Reference
from .errors import (
    AggregateError,
    ColumnNotFoundError,
    JoinError,
    SchemaError,
    TableError,
)
from .groupby import count_rows_per_group, distinct_rows, factorize, group_by, group_codes
from .iceberg import iceberg_cube, iceberg_distinct_count
from .joins import inner_join, left_join, natural_join, semi_join
from .predicates import And, Between, Eq, Ge, In, Lt, Not, Or, Predicate, Where
from .query import Query
from .schema import ColumnType, Schema
from .table import Table

__all__ = [
    "ALL",
    "AggregateError",
    "AggregateSpec",
    "And",
    "Between",
    "ColumnNotFoundError",
    "ColumnType",
    "Database",
    "Eq",
    "Ge",
    "In",
    "JoinError",
    "Lt",
    "Not",
    "Or",
    "Predicate",
    "Query",
    "Reference",
    "Schema",
    "SchemaError",
    "Table",
    "TableError",
    "Where",
    "aggregate_names",
    "count_rows_per_group",
    "cube",
    "distinct_rows",
    "factorize",
    "group_by",
    "group_codes",
    "iceberg_cube",
    "iceberg_distinct_count",
    "inner_join",
    "left_join",
    "load_csv",
    "load_database",
    "natural_join",
    "rollup",
    "save_csv",
    "save_database",
    "semi_join",
]
