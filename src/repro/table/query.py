"""A small fluent query builder over tables and star schemas.

The bellwether algorithms use the engine's primitives directly, but a
downstream user exploring a star schema wants the usual SQL-shaped surface:

>>> from repro.table import Table, Query, Eq
>>> orders = Table({"item": [1, 1, 2], "state": ["WI", "MD", "WI"],
...                 "profit": [10.0, 20.0, 30.0]})
>>> result = (Query(orders)
...           .where(Eq("state", "WI"))
...           .group_by("item")
...           .agg("sum", "profit", alias="total")
...           .order_by("total", descending=True)
...           .run())
>>> [int(i) for i in result["item"]]
[2, 1]
>>> [float(t) for t in result["total"]]
[30.0, 10.0]

Queries are immutable: every clause returns a new query, so partial queries
can be shared and extended safely.  ``Query.over(db)`` starts from a star
schema and ``join()`` pulls in reference tables by name.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .aggregates import AggregateSpec
from .database import Database
from .errors import SchemaError
from .groupby import group_by
from .joins import natural_join
from .predicates import Predicate
from .table import Table


@dataclass(frozen=True)
class Query:
    """An immutable, composable query over a :class:`Table`."""

    source: Table
    _db: Database | None = None
    _joins: tuple[str, ...] = ()
    _filters: tuple[Predicate, ...] = ()
    _group_keys: tuple[str, ...] | None = None
    _aggs: tuple[AggregateSpec, ...] = ()
    _projection: tuple[str, ...] | None = None
    _distinct: bool = False
    _order: tuple[tuple[str, bool], ...] = ()  # (column, descending)
    _limit: int | None = None

    # ------------------------------------------------------------------ build

    @classmethod
    def over(cls, db: Database) -> "Query":
        """Start a query from a star schema's fact table."""
        return cls(db.fact, _db=db)

    def join(self, reference: str) -> "Query":
        """Natural-join a named reference table (star schemas only)."""
        if self._db is None:
            raise SchemaError("join(name) requires Query.over(database)")
        self._db.reference(reference)  # validate eagerly
        return replace(self, _joins=(*self._joins, reference))

    def where(self, predicate: Predicate) -> "Query":
        return replace(self, _filters=(*self._filters, predicate))

    def group_by(self, *keys: str) -> "Query":
        return replace(self, _group_keys=tuple(keys))

    def agg(self, func: str, column: str, alias: str = "") -> "Query":
        spec = AggregateSpec(func, column, alias=alias)
        return replace(self, _aggs=(*self._aggs, spec))

    def select(self, *columns: str) -> "Query":
        return replace(self, _projection=tuple(columns))

    def distinct(self) -> "Query":
        return replace(self, _distinct=True)

    def order_by(self, column: str, descending: bool = False) -> "Query":
        return replace(self, _order=(*self._order, (column, descending)))

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise SchemaError(f"limit must be >= 0, got {n}")
        return replace(self, _limit=n)

    # -------------------------------------------------------------------- run

    def run(self) -> Table:
        """Execute: join -> filter -> aggregate/project -> order -> limit."""
        table = self.source
        for name in self._joins:
            ref = self._db.reference(name)
            table = natural_join(table, ref.table, on=[ref.key])
        for predicate in self._filters:
            table = table.select(predicate)
        if self._aggs and self._group_keys is None:
            table = group_by(table, [], list(self._aggs))
        elif self._group_keys is not None:
            if not self._aggs:
                raise SchemaError("group_by() requires at least one agg()")
            table = group_by(table, list(self._group_keys), list(self._aggs))
        if self._projection is not None:
            table = table.project(list(self._projection), distinct=self._distinct)
        elif self._distinct:
            table = table.project(list(table.column_names), distinct=True)
        for column, descending in reversed(self._order):
            table = table.sort_by(column)
            if descending:
                table = table.take(np.arange(table.n_rows - 1, -1, -1))
        if self._limit is not None:
            table = table.take(np.arange(min(self._limit, table.n_rows)))
        return table

    # ------------------------------------------------------------ convenience

    def count(self) -> int:
        """Number of result rows."""
        return self.run().n_rows

    def scalar(self):
        """The single value of a 1x1 result (e.g. one global aggregate)."""
        result = self.run()
        if result.n_rows != 1 or len(result.column_names) != 1:
            raise SchemaError(
                f"scalar() needs a 1x1 result, got "
                f"{result.n_rows}x{len(result.column_names)}"
            )
        return result.column(result.column_names[0])[0]

    def __repr__(self) -> str:
        parts = [f"Query({self.source!r}"]
        if self._joins:
            parts.append(f"join={list(self._joins)}")
        if self._filters:
            parts.append(f"where={len(self._filters)} predicates")
        if self._group_keys is not None:
            parts.append(f"group_by={list(self._group_keys)}")
        return ", ".join(parts) + ")"
