"""A minimal columnar, numpy-backed table.

The bellwether algorithms need a relational substrate supporting selection,
projection, natural key--foreign-key joins, group-by aggregation and CUBE
computation over a star schema.  :class:`Table` provides the storage layer and
row-level operations; joins, group-by and cube live in sibling modules.

Columns are immutable by convention: operations return new tables that may
share column arrays with their inputs, so callers must not mutate the arrays
they get back from :meth:`Table.column`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from .errors import ColumnNotFoundError, SchemaError
from .predicates import Predicate
from .schema import ColumnType, Schema


def _coerce(values: Any, column_type: ColumnType | None) -> tuple[np.ndarray, ColumnType]:
    """Turn an arbitrary sequence into a 1-D numpy column of a known type."""
    if column_type is not None:
        arr = np.asarray(values, dtype=column_type.dtype)
        return arr, column_type
    arr = np.asarray(values)
    if arr.dtype == object or arr.dtype.kind in ("U", "S"):
        arr = np.asarray(values, dtype=object)
        return arr, ColumnType.STR
    inferred = ColumnType.from_array(arr)
    return arr.astype(inferred.dtype, copy=False), inferred


class Table:
    """An immutable columnar table.

    Parameters
    ----------
    columns:
        Mapping from column name to a 1-D sequence of values.  All columns
        must have the same length.
    schema:
        Optional explicit :class:`Schema`.  When omitted, column types are
        inferred from the data (integers -> INT, floats -> FLOAT, everything
        else -> STR).
    """

    def __init__(
        self,
        columns: Mapping[str, Any],
        schema: Schema | None = None,
    ):
        data: dict[str, np.ndarray] = {}
        types: list[tuple[str, ColumnType]] = []
        n_rows: int | None = None
        for name, values in columns.items():
            declared = schema.type_of(name) if schema is not None else None
            arr, col_type = _coerce(values, declared)
            if arr.ndim != 1:
                raise SchemaError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise SchemaError(
                    f"column {name!r} has {len(arr)} rows, expected {n_rows}"
                )
            data[name] = arr
            types.append((name, col_type))
        if schema is not None and set(schema.names) != set(data):
            raise SchemaError(
                f"schema columns {schema.names} do not match data columns {tuple(data)}"
            )
        self._data = data
        self._schema = Schema(types)
        self._n_rows = n_rows or 0

    # ------------------------------------------------------------------ basics

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._schema

    def __repr__(self) -> str:
        return f"Table({self._n_rows} rows, {list(self.column_names)})"

    def column(self, name: str) -> np.ndarray:
        """The backing array of one column (do not mutate)."""
        try:
            return self._data[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.column_names) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        return cls(
            {name: np.empty(0, dtype=t.dtype) for name, t in schema},
            schema=schema,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[Any]],
        schema: Schema,
    ) -> "Table":
        """Build a table from an iterable of row tuples."""
        rows = list(rows)
        names = schema.names
        if rows and len(rows[0]) != len(names):
            raise SchemaError(
                f"rows have {len(rows[0])} fields, schema has {len(names)}"
            )
        columns = {
            name: [row[j] for row in rows] for j, name in enumerate(names)
        }
        if not rows:
            return cls.empty(schema)
        return cls(columns, schema=schema)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over rows as tuples (column order = schema order)."""
        arrays = [self._data[name] for name in self.column_names]
        for i in range(self._n_rows):
            yield tuple(arr[i] for arr in arrays)

    def row(self, index: int) -> dict[str, Any]:
        """One row as a name -> value dict."""
        return {name: self._data[name][index] for name in self.column_names}

    def to_dict(self) -> dict[str, list[Any]]:
        """Materialize all columns as Python lists (for tests / display)."""
        return {name: list(self._data[name]) for name in self.column_names}

    # ------------------------------------------------------------- operations

    def select(self, condition: Predicate | np.ndarray) -> "Table":
        """Relational selection: keep rows where the condition holds."""
        mask = condition.mask(self) if isinstance(condition, Predicate) else np.asarray(condition)
        if mask.dtype != np.bool_ or mask.shape != (self._n_rows,):
            raise SchemaError(
                f"selection mask must be bool of shape ({self._n_rows},), "
                f"got {mask.dtype} {mask.shape}"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: np.ndarray) -> "Table":
        """Keep rows at the given positions (in the given order)."""
        indices = np.asarray(indices)
        return Table(
            {name: arr[indices] for name, arr in self._data.items()},
            schema=self._schema,
        )

    def project(self, names: Iterable[str], distinct: bool = False) -> "Table":
        """Relational projection, optionally removing duplicate rows."""
        names = list(names)
        self._schema.require(*names)
        projected = Table(
            {name: self._data[name] for name in names},
            schema=self._schema.subset(names),
        )
        if not distinct:
            return projected
        from .groupby import distinct_rows  # local import avoids a cycle

        return distinct_rows(projected)

    def with_column(self, name: str, values: Any, column_type: ColumnType | None = None) -> "Table":
        """A new table with one extra column appended."""
        if name in self._schema:
            raise SchemaError(f"column {name!r} already exists")
        arr, inferred = _coerce(values, column_type)
        if len(arr) != self._n_rows:
            raise SchemaError(
                f"new column {name!r} has {len(arr)} rows, expected {self._n_rows}"
            )
        data = dict(self._data)
        data[name] = arr
        return Table(data, schema=self._schema.extended(name, inferred))

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """A new table with columns renamed according to ``mapping``."""
        self._schema.require(*mapping)
        new_names = [mapping.get(n, n) for n in self.column_names]
        if len(set(new_names)) != len(new_names):
            raise SchemaError(f"rename produces duplicate columns: {new_names}")
        data = {mapping.get(n, n): arr for n, arr in self._data.items()}
        types = [(mapping.get(n, n), self._schema.type_of(n)) for n in self.column_names]
        return Table(data, schema=Schema(types))

    def sort_by(self, *names: str) -> "Table":
        """A new table with rows sorted lexicographically by the named columns."""
        self._schema.require(*names)
        if not names:
            return self
        keys = [self._data[n] for n in reversed(names)]
        order = np.lexsort(keys)
        return self.take(order)

    def concat(self, other: "Table") -> "Table":
        """Union-all of two tables with identical schemas."""
        if self._schema != other._schema:
            raise SchemaError(
                f"cannot concat tables with schemas {self._schema} and {other._schema}"
            )
        return Table(
            {
                name: np.concatenate([self._data[name], other._data[name]])
                for name in self.column_names
            },
            schema=self._schema,
        )
