"""Iceberg cube computation (Beyer & Ramakrishnan style, simplified).

An *iceberg cube* keeps only the cube cells whose support (row count) reaches
a threshold.  Because COUNT is anti-monotone along the grouping lattice —
a coarser cell's count is the sum of its children's — we prune bottom-up:
base cells below the threshold can still contribute to coarser cells, so
pruning happens per grouping *after* merge, but the merge itself runs over
base cells only (never rescanning the input), mirroring BUC's shared pass.

The bellwether algorithms use this twice:

* feasibility pruning of candidate regions (cost ≤ B, coverage ≥ C) in the
  basic search (Section 4.2), and
* selecting *significant* cube subsets of items (|S| ≥ K) for the bellwether
  cube (Section 6.2).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from .aggregates import AggregateSpec
from .cube import ALL, cube
from .groupby import group_by
from .table import Table


def iceberg_cube(
    table: Table,
    dims: Sequence[str],
    min_count: int,
    aggs: Sequence[AggregateSpec] = (),
    count_alias: str = "support",
) -> Table:
    """All cube cells with at least ``min_count`` supporting rows.

    The result always contains a ``count_alias`` column with the cell
    support, plus any extra requested aggregates.
    """
    dims = list(dims)
    all_aggs = [AggregateSpec("count", dims[0], alias=count_alias), *aggs]
    full = cube(table, dims, all_aggs)
    mask = full.column(count_alias) >= min_count
    return full.select(mask)


def iceberg_distinct_count(
    table: Table,
    dims: Sequence[str],
    id_column: str,
    min_distinct: int,
    alias: str = "n_distinct",
) -> Table:
    """Cube cells whose *distinct* ``id_column`` count reaches a threshold.

    COUNT DISTINCT is holistic, so each grouping is computed from the
    deduplicated (dims, id) base relation rather than merged from base cells.
    This evaluates the paper's coverage constraint
    ``π_Z σ_{count(ID) ≥ C*} α_{Z, count(ID)} (F ⋈ I)``.
    """
    dims = list(dims)
    table.schema.require(id_column, *dims)
    dedup = table.project([*dims, id_column], distinct=True)
    pieces: list[Table] = []
    for k in range(len(dims), -1, -1):
        for keep in itertools.combinations(dims, k):
            grouped = group_by(
                dedup, list(keep), [AggregateSpec("count_distinct", id_column, alias=alias)]
            )
            cols: dict[str, np.ndarray] = {}
            for d in dims:
                if d in keep:
                    cols[d] = grouped.column(d).astype(object).astype(str).astype(object)
                else:
                    cols[d] = np.full(grouped.n_rows, ALL, dtype=object)
            cols[alias] = grouped.column(alias)
            pieces.append(Table(cols))
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.concat(piece)
    return result.select(result.column(alias) >= min_distinct)
