"""Star-schema database: one fact table plus key--foreign-key reference tables.

Mirrors Section 4.1 of the paper: ``DB = {F, T1, ..., Tn}`` where ``F`` is
the fact table (e.g. OrderTable) and each ``Ti`` is a reference table
(e.g. ItemTable, AdTable) linked through a natural key--foreign-key join.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import JoinError, SchemaError
from .joins import natural_join
from .table import Table


@dataclass(frozen=True)
class Reference:
    """A reference (dimension-side) table and the key linking it to the fact."""

    name: str
    table: Table
    key: str

    def __post_init__(self) -> None:
        self.table.schema.require(self.key)
        keys = self.table.column(self.key)
        if len(np.unique(keys.astype(str) if keys.dtype == object else keys)) != len(keys):
            raise SchemaError(
                f"reference table {self.name!r}: key {self.key!r} is not unique"
            )


class Database:
    """A star schema: fact table + named reference tables.

    Parameters
    ----------
    fact:
        The fact table ``F`` (one row per transaction).
    references:
        Reference tables; each must expose its primary key, which must also
        be a column of the fact table.
    """

    def __init__(self, fact: Table, references: list[Reference] | None = None):
        self._fact = fact
        self._references: dict[str, Reference] = {}
        for ref in references or []:
            self.add_reference(ref)

    @property
    def fact(self) -> Table:
        return self._fact

    @property
    def reference_names(self) -> tuple[str, ...]:
        return tuple(self._references)

    def add_reference(self, ref: Reference) -> None:
        if ref.name in self._references:
            raise SchemaError(f"reference {ref.name!r} already registered")
        self._fact.schema.require(ref.key)
        self._references[ref.name] = ref

    def reference(self, name: str) -> Reference:
        try:
            return self._references[name]
        except KeyError:
            raise SchemaError(
                f"unknown reference table {name!r}; known: {self.reference_names}"
            ) from None

    def join_fact(self, *reference_names: str) -> Table:
        """Fact table denormalized with the named reference tables."""
        result = self._fact
        for name in reference_names:
            ref = self.reference(name)
            result = natural_join(result, ref.table, on=[ref.key])
        return result

    def check_integrity(self) -> None:
        """Raise :class:`JoinError` if any fact row dangles (FK without PK)."""
        for name, ref in self._references.items():
            fact_keys = self._fact.column(ref.key)
            ref_keys = ref.table.column(ref.key)
            if fact_keys.dtype == object:
                missing = set(map(str, fact_keys)) - set(map(str, ref_keys))
            else:
                missing = set(np.setdiff1d(fact_keys, ref_keys).tolist())
            if missing:
                sample = sorted(missing)[:5]
                raise JoinError(
                    f"fact rows reference missing {name!r} keys, e.g. {sample}"
                )

    def __repr__(self) -> str:
        refs = ", ".join(
            f"{name}({ref.table.n_rows})" for name, ref in self._references.items()
        )
        return f"Database(fact={self._fact.n_rows} rows; refs: {refs})"
