"""Exceptions raised by the relational engine."""

from repro.exceptions import ReproError


class TableError(ReproError):
    """Base class for all relational-engine errors."""


class SchemaError(TableError):
    """A table was constructed or used with an inconsistent schema."""


class ColumnNotFoundError(TableError, KeyError):
    """A referenced column does not exist in the table."""

    def __init__(self, column: str, available: tuple[str, ...]):
        self.column = column
        self.available = available
        super().__init__(
            f"column {column!r} not found; available columns: {list(available)}"
        )


class JoinError(TableError):
    """A join could not be performed (no common key, key not unique, ...)."""


class AggregateError(TableError):
    """An aggregate function was misused (unknown name, non-numeric input, ...)."""
