"""Aggregate functions for group-by and cube computation.

Aggregates are evaluated on *grouped* data: the caller sorts rows by group id
and passes the sorted values together with the start offset of each group.
Each aggregate then reduces every group with a single vectorized
``ufunc.reduceat`` (or an equivalent trick), which is what makes the cube
computation scale.

The distributive aggregates (sum, count, min, max) and the algebraic ones
(avg, count_distinct via per-group dedup) mirror the classification in
Gray et al.'s data-cube paper that Section 6.4 of the bellwether paper
builds on.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from .errors import AggregateError

# Signature: (sorted_values, group_starts, n_groups) -> per-group array.
GroupReducer = Callable[[np.ndarray, np.ndarray, int], np.ndarray]


def _sum(values: np.ndarray, starts: np.ndarray, n_groups: int) -> np.ndarray:
    return np.add.reduceat(values.astype(np.float64, copy=False), starts)


def _min(values: np.ndarray, starts: np.ndarray, n_groups: int) -> np.ndarray:
    return np.minimum.reduceat(values, starts)


def _max(values: np.ndarray, starts: np.ndarray, n_groups: int) -> np.ndarray:
    return np.maximum.reduceat(values, starts)


def _count(values: np.ndarray, starts: np.ndarray, n_groups: int) -> np.ndarray:
    sizes = np.diff(np.append(starts, len(values)))
    return sizes.astype(np.int64)


def _avg(values: np.ndarray, starts: np.ndarray, n_groups: int) -> np.ndarray:
    totals = _sum(values, starts, n_groups)
    counts = _count(values, starts, n_groups)
    return totals / counts


def _count_distinct(values: np.ndarray, starts: np.ndarray, n_groups: int) -> np.ndarray:
    # Per group, count distinct values.  We sort values *within* each group
    # (stably keyed on a synthetic group-id column) and count boundaries.
    sizes = np.diff(np.append(starts, len(values)))
    gids = np.repeat(np.arange(n_groups), sizes)
    if values.dtype == object:
        codes = np.unique(values.astype(str), return_inverse=True)[1]
    else:
        codes = np.unique(values, return_inverse=True)[1]
    order = np.lexsort((codes, gids))
    g_sorted = gids[order]
    c_sorted = codes[order]
    new_pair = np.empty(len(values), dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (g_sorted[1:] != g_sorted[:-1]) | (c_sorted[1:] != c_sorted[:-1])
    return np.bincount(g_sorted[new_pair], minlength=n_groups).astype(np.int64)


_REGISTRY: dict[str, GroupReducer] = {
    "sum": _sum,
    "min": _min,
    "max": _max,
    "count": _count,
    "avg": _avg,
    "count_distinct": _count_distinct,
}

#: Aggregates f with a merge operation g such that f(A ∪ B) = g(f(A), f(B)).
DISTRIBUTIVE = frozenset({"sum", "min", "max", "count"})

#: How to merge two already-aggregated values of a distributive function.
MERGE: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": np.add,
    "count": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


def reducer(name: str) -> GroupReducer:
    """Look up an aggregate implementation by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AggregateError(
            f"unknown aggregate {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def aggregate_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: ``func(column) AS alias``.

    ``alias`` defaults to ``"{func}_{column}"``.
    """

    func: str
    column: str
    alias: str = ""

    def __post_init__(self) -> None:
        reducer(self.func)  # validate eagerly
        if not self.alias:
            object.__setattr__(self, "alias", f"{self.func}_{self.column}")

    @property
    def is_distributive(self) -> bool:
        return self.func in DISTRIBUTIVE
