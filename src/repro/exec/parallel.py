"""Region fan-out executor: serial, thread, or forked process pools.

The scan-oriented algorithms spend their time in per-region work that is
embarrassingly parallel — estimating a model per region block, aggregating a
training set per hierarchy-node combination.  :class:`ParallelExecutor` fans
a list of such work items out over a pool and returns results in input
order, so parallel runs are *deterministic*: the same items produce the
same results in the same order as a serial run.

Three properties matter for the reproduction:

* **Metric truthfulness** — the process-wide counters (``ml.linear.fits``,
  ``store.full_scans``, …) back the Lemma 1/2 scan-bound tests.  Forked
  workers therefore compute their counter deltas and ship them back with
  the results; the parent merges them, so counts match a serial run.
  Histograms merge the same way — bucket counts, not just sums — so the
  ``span.*.s`` percentiles stay truthful under ``--workers N``.  (Thread
  workers share the registry and need no merging; the scan itself always
  happens in the parent, so ``store.full_scans`` is parent-only.)
* **Trace continuity** — when tracing is enabled, the fan-out runs inside
  an ``exec.map`` span; each chunk executes inside an ``exec.chunk`` span
  *in the worker*, and the worker's finished span trees are serialized
  back with the deltas and re-parented under ``exec.map``.  A
  ``--trace --workers N`` run therefore shows the same span tree as a
  serial run, nested one fan-out level deeper.
* **No payload pickling** — the process backend uses ``fork``, stashing the
  work function and items in a module global first.  Children inherit the
  parent's memory, so pre-encoded fact arrays and region blocks are never
  serialized on the way in; only chunk bounds and results (plus the small
  delta/span payloads) cross the pipe.

On platforms without ``fork`` the process backend degrades to threads, and
``workers=1`` (the default everywhere) is exactly the serial code path.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.exceptions import ConfigError
from repro.obs import catalog
from repro.obs.export import span_from_dict, span_to_dict
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = [
    "ParallelConfig",
    "ParallelExecutor",
    "get_default_config",
    "set_default_config",
]

_WORKER_CHUNKS = get_registry().counter(catalog.EXEC_WORKER_CHUNKS)
_WORKER_SPANS_MERGED = get_registry().counter(catalog.EXEC_WORKER_SPANS_MERGED)
_WORKER_HISTOGRAMS_MERGED = get_registry().counter(
    catalog.EXEC_WORKER_HISTOGRAMS_MERGED
)


@dataclass(frozen=True)
class ParallelConfig:
    """How region fan-outs execute.

    Parameters
    ----------
    workers:
        Pool size; 1 means serial (the default everywhere).
    backend:
        ``"process"`` (forked workers, counter deltas merged back),
        ``"thread"`` (shared memory and registry), or ``"serial"``.
    chunk_size:
        Items per work chunk; default splits the items evenly over the
        workers.
    """

    workers: int = 1
    backend: str = "process"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in ("process", "thread", "serial"):
            raise ConfigError(f"unknown backend {self.backend!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1 or self.backend == "serial"

    def resolved_backend(self) -> str:
        """The backend that will actually run (fork-less hosts get threads)."""
        if self.is_serial:
            return "serial"
        if self.backend == "process" and not _fork_available():
            return "thread"
        return self.backend


def _fork_available() -> bool:
    return hasattr(os, "fork") and "fork" in mp.get_all_start_methods()


_DEFAULT = ParallelConfig()


def get_default_config() -> ParallelConfig:
    """The process-wide default (set by ``--workers``; serial out of the box)."""
    return _DEFAULT


def set_default_config(config: ParallelConfig) -> None:
    global _DEFAULT
    _DEFAULT = config


# Stash read by forked workers.  Children inherit it through fork, so the
# function and items are never pickled; cleared again once the pool returns.
# The lock makes nested/concurrent fan-outs degrade to serial instead of
# racing on the stash (e.g. parallel CV folds whose inner searches are also
# parallel-configured).
_PAYLOAD: tuple[Callable, list] | None = None
_PAYLOAD_LOCK = threading.Lock()


def _run_chunk(bounds: tuple[int, int]) -> tuple[list, dict, dict, list]:
    """Worker body: apply the stashed fn to one chunk; report what happened.

    Returns ``(results, counter_deltas, histogram_deltas, span_dicts)``.
    The tracer state is inherited through fork: if the parent was tracing,
    the child is too, but its inherited stack/roots are copies of spans the
    *parent* owns — reset first so the chunk's spans form fresh trees that
    serialize back whole and re-parent under the submitting ``exec.map``.
    """
    fn, items = _PAYLOAD
    registry = get_registry()
    tracer = get_tracer()
    tracing = tracer.enabled
    if tracing:
        tracer.reset()
    before = registry.counter_values()
    before_hists = registry.histogram_states()
    with tracer.span("exec.chunk", lo=bounds[0], hi=bounds[1], pid=os.getpid()):
        results = [fn(items[i]) for i in range(*bounds)]
    deltas = {
        name: value - before.get(name, 0)
        for name, value in registry.counter_values().items()
        if value != before.get(name, 0)
    }
    hist_deltas = registry.diff_histogram_states(before_hists)
    spans = [span_to_dict(s) for s in tracer.take_roots()] if tracing else []
    return results, deltas, hist_deltas, spans


class ParallelExecutor:
    """Maps a function over items with the configured pool, in input order."""

    def __init__(self, config: ParallelConfig | None = None):
        self.config = config or get_default_config()

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, possibly fanned out.

        Results come back in input order regardless of backend, and worker
        counter/histogram increments — and, when tracing, worker span
        trees — are merged into the parent registry and trace, so callers
        observe the same results *and the same telemetry* as a serial run.
        """
        items = list(items)
        backend = self.config.resolved_backend()
        # Pool workers are daemonic and cannot fork again: a parallel
        # algorithm nested inside another fan-out runs its stage serially.
        if backend == "process" and mp.current_process().daemon:
            backend = "serial"
        if backend == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        chunks = self._chunks(len(items))
        _WORKER_CHUNKS.inc(len(chunks))
        if backend == "thread":
            return self._map_threads(fn, items, chunks)
        return self._map_forked(fn, items, chunks)

    # ------------------------------------------------------------- backends

    def _map_threads(self, fn: Callable, items: list, chunks: list) -> list:
        """Thread fan-out: shared registry, per-thread span stacks.

        Each chunk runs inside an ``exec.chunk`` span in its worker thread;
        with nothing beneath it on that thread's stack the chunk span lands
        in the tracer's roots, from where it is re-parented under this
        call's ``exec.map`` span once the pool drains.
        """
        tracer = get_tracer()

        def run_chunk(bounds: tuple[int, int]) -> list:
            with tracer.span("exec.chunk", lo=bounds[0], hi=bounds[1]):
                return [fn(items[i]) for i in range(*bounds)]

        with tracer.span(
            "exec.map", backend="thread", workers=self.config.workers,
            items=len(items),
        ) as map_span:
            mark = tracer.mark_roots()
            with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
                parts = list(pool.map(run_chunk, chunks))
            if tracer.enabled:
                adopted = tracer.take_roots_since(mark)
                adopted.sort(key=lambda s: s.start)
                tracer.adopt(adopted, map_span)
                _WORKER_SPANS_MERGED.inc(len(adopted))
        return [r for part in parts for r in part]

    def _map_forked(self, fn: Callable, items: list, chunks: list) -> list:
        """Fork fan-out: ship counter/histogram deltas and span trees back."""
        if not _PAYLOAD_LOCK.acquire(blocking=False):
            # another fan-out is in flight in this process (threaded caller)
            return [fn(item) for item in items]
        global _PAYLOAD
        ctx = mp.get_context("fork")
        _PAYLOAD = (fn, items)
        tracer = get_tracer()
        try:
            with tracer.span(
                "exec.map", backend="process", workers=self.config.workers,
                items=len(items),
            ) as map_span:
                with ctx.Pool(
                    processes=min(self.config.workers, len(chunks))
                ) as pool:
                    parts = pool.map(_run_chunk, chunks)
                registry = get_registry()
                results: list = []
                for chunk_results, deltas, hist_deltas, span_dicts in parts:
                    results.extend(chunk_results)
                    registry.merge_counter_deltas(deltas)
                    if hist_deltas:
                        registry.merge_histogram_deltas(hist_deltas)
                        _WORKER_HISTOGRAMS_MERGED.inc(len(hist_deltas))
                    if span_dicts and tracer.enabled:
                        spans = [span_from_dict(d) for d in span_dicts]
                        tracer.adopt(spans, map_span)
                        _WORKER_SPANS_MERGED.inc(len(spans))
        finally:
            _PAYLOAD = None
            _PAYLOAD_LOCK.release()
        return results

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        size = self.config.chunk_size or max(
            1, math.ceil(n / self.config.workers)
        )
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]
