"""Region fan-out executor: serial, thread, or forked process pools.

The scan-oriented algorithms spend their time in per-region work that is
embarrassingly parallel — estimating a model per region block, aggregating a
training set per hierarchy-node combination.  :class:`ParallelExecutor` fans
a list of such work items out over a pool and returns results in input
order, so parallel runs are *deterministic*: the same items produce the
same results in the same order as a serial run.

Two properties matter for the reproduction:

* **Metric truthfulness** — the process-wide counters (``ml.linear.fits``,
  ``store.full_scans``, …) back the Lemma 1/2 scan-bound tests.  Forked
  workers therefore compute their counter deltas and ship them back with
  the results; the parent merges them, so counts match a serial run.
  (Thread workers share the registry and need no merging; the scan itself
  always happens in the parent, so ``store.full_scans`` is parent-only.)
* **No payload pickling** — the process backend uses ``fork``, stashing the
  work function and items in a module global first.  Children inherit the
  parent's memory, so pre-encoded fact arrays and region blocks are never
  serialized on the way in; only chunk bounds and results cross the pipe.

On platforms without ``fork`` the process backend degrades to threads, and
``workers=1`` (the default everywhere) is exactly the serial code path.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.exceptions import ConfigError
from repro.obs.metrics import get_registry

__all__ = [
    "ParallelConfig",
    "ParallelExecutor",
    "get_default_config",
    "set_default_config",
]


@dataclass(frozen=True)
class ParallelConfig:
    """How region fan-outs execute.

    Parameters
    ----------
    workers:
        Pool size; 1 means serial (the default everywhere).
    backend:
        ``"process"`` (forked workers, counter deltas merged back),
        ``"thread"`` (shared memory and registry), or ``"serial"``.
    chunk_size:
        Items per work chunk; default splits the items evenly over the
        workers.
    """

    workers: int = 1
    backend: str = "process"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in ("process", "thread", "serial"):
            raise ConfigError(f"unknown backend {self.backend!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def is_serial(self) -> bool:
        return self.workers <= 1 or self.backend == "serial"

    def resolved_backend(self) -> str:
        """The backend that will actually run (fork-less hosts get threads)."""
        if self.is_serial:
            return "serial"
        if self.backend == "process" and not _fork_available():
            return "thread"
        return self.backend


def _fork_available() -> bool:
    return hasattr(os, "fork") and "fork" in mp.get_all_start_methods()


_DEFAULT = ParallelConfig()


def get_default_config() -> ParallelConfig:
    """The process-wide default (set by ``--workers``; serial out of the box)."""
    return _DEFAULT


def set_default_config(config: ParallelConfig) -> None:
    global _DEFAULT
    _DEFAULT = config


# Stash read by forked workers.  Children inherit it through fork, so the
# function and items are never pickled; cleared again once the pool returns.
# The lock makes nested/concurrent fan-outs degrade to serial instead of
# racing on the stash (e.g. parallel CV folds whose inner searches are also
# parallel-configured).
_PAYLOAD: tuple[Callable, list] | None = None
_PAYLOAD_LOCK = threading.Lock()


def _run_chunk(bounds: tuple[int, int]) -> tuple[list, dict[str, float]]:
    """Worker body: apply the stashed fn to one chunk, report counter deltas."""
    fn, items = _PAYLOAD
    registry = get_registry()
    before = registry.counter_values()
    results = [fn(items[i]) for i in range(*bounds)]
    deltas = {
        name: value - before.get(name, 0)
        for name, value in registry.counter_values().items()
        if value != before.get(name, 0)
    }
    return results, deltas


class ParallelExecutor:
    """Maps a function over items with the configured pool, in input order."""

    def __init__(self, config: ParallelConfig | None = None):
        self.config = config or get_default_config()

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, possibly fanned out.

        Results come back in input order regardless of backend, and worker
        counter increments are merged into the parent registry, so callers
        observe the same results *and the same metrics* as a serial run.
        """
        items = list(items)
        backend = self.config.resolved_backend()
        # Pool workers are daemonic and cannot fork again: a parallel
        # algorithm nested inside another fan-out runs its stage serially.
        if backend == "process" and mp.current_process().daemon:
            backend = "serial"
        if backend == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        chunks = self._chunks(len(items))
        if backend == "thread":
            with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
                parts = list(
                    pool.map(
                        lambda b: [fn(items[i]) for i in range(*b)], chunks
                    )
                )
            return [r for part in parts for r in part]
        if not _PAYLOAD_LOCK.acquire(blocking=False):
            # another fan-out is in flight in this process (threaded caller)
            return [fn(item) for item in items]
        global _PAYLOAD
        ctx = mp.get_context("fork")
        _PAYLOAD = (fn, items)
        try:
            with ctx.Pool(processes=min(self.config.workers, len(chunks))) as pool:
                parts = pool.map(_run_chunk, chunks)
        finally:
            _PAYLOAD = None
            _PAYLOAD_LOCK.release()
        registry = get_registry()
        results: list = []
        for chunk_results, deltas in parts:
            results.extend(chunk_results)
            registry.merge_counter_deltas(deltas)
        return results

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        size = self.config.chunk_size or max(
            1, math.ceil(n / self.config.workers)
        )
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]
