"""Execution layer: batched kernels ride in :mod:`repro.ml`; the parallel
region fan-out lives here."""

from .parallel import (
    ParallelConfig,
    ParallelExecutor,
    get_default_config,
    set_default_config,
)

__all__ = [
    "ParallelConfig",
    "ParallelExecutor",
    "get_default_config",
    "set_default_config",
]
