"""Persistent suffstats cache, keyed by store version.

Lives next to a :class:`~repro.storage.DiskStore` (or any directory): one
pickle of metadata (store version, region list, stack geometry) plus one
``.npz`` holding every region's per-base-cell :class:`StackedSuffStats`
concatenated.  A reopened maintainer warm-starts from it without a full
scan — but only when the on-disk version matches the store's, and only when
the files decode cleanly; anything else raises :class:`StaleCacheError` /
:class:`~repro.storage.StorageError` so the caller rebuilds instead of
serving stale or garbled statistics.

Thread safety: the query service (:mod:`repro.serve`) saves and loads this
cache from concurrent request threads.  Both files are written atomically
(temp + ``os.replace``), an instance lock serializes save/load, and the
store version is embedded in the data file and cross-checked against the
metadata on load — a meta/data pair torn by a concurrent save (same
geometry, different versions, previously adopted *silently* and then
patched forward twice) now raises :class:`~repro.storage.StorageError`.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

import numpy as np

from repro.analysis.runtime import SUFFSTATS_CACHE_IO, TrackedLock
from repro.dimensions import Region
from repro.ml import StackedSuffStats
from repro.storage import StorageError
from repro.storage.block_store import _atomic_write

# StaleCacheError moved to repro.storage.cubetables (the materialized cube
# tables raise it too); re-exported here for compatibility.
from repro.storage import StaleCacheError

__all__ = ["StaleCacheError", "SuffStatsCache"]


class SuffStatsCache:
    """Saves/loads per-region base-cell suffstats stacks for one store."""

    _META = "suffstats_meta.pkl"
    _DATA = "suffstats_data.npz"

    def __init__(self, directory: str | Path):
        self._dir = Path(directory)
        self._io_lock = TrackedLock(SUFFSTATS_CACHE_IO, reentrant=True)

    @property
    def meta_path(self) -> Path:
        return self._dir / self._META

    @property
    def data_path(self) -> Path:
        return self._dir / self._DATA

    def save(
        self,
        version: int,
        stacks: dict[Region, StackedSuffStats],
        n_cells: int,
        p: int,
    ) -> None:
        """Write all stacks (each exactly ``n_cells`` problems) and metadata.

        Data first (atomically, with the version embedded), metadata last
        (atomically) — the metadata is the commit point, and the embedded
        version lets :meth:`load_versioned` detect a torn pair.
        """
        with self._io_lock:
            self._dir.mkdir(parents=True, exist_ok=True)
            regions = list(stacks)
            if regions:
                flat = StackedSuffStats.concatenate([stacks[r] for r in regions])
            else:
                flat = StackedSuffStats.zeros(0, p)
            # Derived-statistics persistence, not training-data I/O: cache
            # traffic is accounted through incr.cache_hits / incr.cache_misses,
            # never through the store scan counters the Lemmas are phrased in.
            tmp = self.data_path.with_name(self.data_path.name + ".tmp")
            with tmp.open("wb") as f:
                np.savez(  # lint: ignore[RPR001]
                    f,
                    ytwy=flat.ytwy, xtwx=flat.xtwx, xtwy=flat.xtwy,
                    n=flat.n, sum_w=flat.sum_w,
                    version=np.asarray([int(version)], dtype=np.int64),
                )
            os.replace(tmp, self.data_path)
            _atomic_write(
                self.meta_path,
                pickle.dumps(
                    {
                        "version": version,
                        "regions": regions,
                        "n_cells": n_cells,
                        "p": p,
                    }
                ),
            )

    def load(
        self,
        expected_version: int,
        n_cells: int,
        p: int,
    ) -> dict[Region, StackedSuffStats]:
        """The cached stacks, verified against the live store/builder geometry.

        Raises :class:`StaleCacheError` when the cache was written at a
        different store version (or a different lattice geometry), and
        :class:`StorageError` when the files are missing or unreadable.
        """
        version, stacks = self.load_versioned(n_cells, p)
        if version != expected_version:
            raise StaleCacheError(
                f"suffstats cache is at store version {version}, "
                f"store is at {expected_version}"
            )
        return stacks

    def load_versioned(
        self,
        n_cells: int,
        p: int,
    ) -> tuple[int, dict[Region, StackedSuffStats]]:
        """The cached stacks plus the store version they were written at.

        Geometry is still verified (:class:`StaleCacheError` on mismatch),
        but any version is accepted — the maintainer uses this to warm-start
        from an older snapshot and patch forward through the store's
        changelog instead of rescanning.
        """
        with self._io_lock:
            return self._load_versioned_locked(n_cells, p)

    def _load_versioned_locked(
        self,
        n_cells: int,
        p: int,
    ) -> tuple[int, dict[Region, StackedSuffStats]]:
        if not self.meta_path.exists():
            raise StorageError(f"no suffstats cache at {self._dir}")
        try:
            with self.meta_path.open("rb") as f:
                meta = pickle.load(f)
            version = int(meta["version"])
            regions = list(meta["regions"])
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(
                f"corrupt suffstats-cache metadata {self.meta_path}: {exc!r}"
            ) from exc
        if meta.get("n_cells") != n_cells or meta.get("p") != p:
            raise StaleCacheError(
                "suffstats cache was built for another lattice geometry "
                f"(cells={meta.get('n_cells')}/p={meta.get('p')}, "
                f"expected {n_cells}/{p})"
            )
        try:
            # Counterpart of save() above: suffstats-cache reads are tracked
            # by the incr.* counters, not the store scan accounting.
            with np.load(self.data_path) as data:  # lint: ignore[RPR001]
                data_version = (
                    int(data["version"][0]) if "version" in data.files else None
                )
                flat = StackedSuffStats(
                    data["ytwy"], data["xtwx"], data["xtwy"],
                    data["n"], data["sum_w"],
                )
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(
                f"unreadable suffstats cache {self.data_path}: {exc!r}"
            ) from exc
        if data_version is not None and data_version != version:
            raise StorageError(
                f"torn suffstats cache at {self._dir}: metadata says store "
                f"version {version}, data file was written at {data_version}"
            )
        if len(flat) != len(regions) * n_cells or (
            len(flat) and flat.p != p
        ):
            raise StorageError(
                f"suffstats cache {self.data_path} has {len(flat)} problems, "
                f"expected {len(regions) * n_cells}"
            )
        return version, {
            region: flat.select(slice(i * n_cells, (i + 1) * n_cells))
            for i, region in enumerate(regions)
        }
