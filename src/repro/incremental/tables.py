"""Materialized cube-table builds with ``--skip-existing`` semantics.

:func:`build_cube_tables` is the one entry point for getting warm-path cube
tables (see :mod:`repro.storage.cubetables`):

* **hit** — a persisted table set matching the builder's geometry signature
  at the store's current version loads directly (``cube.tables.hits``); no
  facts are touched.
* **miss** — anything else (absent, stale version, other geometry) falls
  through to a build (``cube.tables.misses`` then ``cube.tables.builds``).
  The build runs through :class:`~repro.incremental.IncrementalCubeMaintainer`
  with its persistent suffstats cache in the *same* directory, so a version
  bump patches only the dirty base cells forward through the store changelog
  instead of rescanning — the incremental ``--skip-existing`` behaviour —
  and only a cold start (or a changelog gap) pays a full scan.

The returned tables feed
:meth:`~repro.core.cube.BellwetherCubeBuilder.build_from_tables` (bit-for-bit
equal to ``build("optimized")``) and
:meth:`~repro.core.BasicBellwetherSearch.evaluate_from_tables`.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.cube import BellwetherCubeBuilder
from repro.obs.catalog import (
    CUBE_TABLES_BUILDS,
    CUBE_TABLES_HITS,
    CUBE_TABLES_MISSES,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage import CubeTableStore, LevelTable, StorageError

__all__ = ["build_cube_tables"]

_TRACER = get_tracer()
_BUILDS = get_registry().counter(CUBE_TABLES_BUILDS)
_HITS = get_registry().counter(CUBE_TABLES_HITS)
_MISSES = get_registry().counter(CUBE_TABLES_MISSES)


def build_cube_tables(
    builder: BellwetherCubeBuilder,
    directory: str | Path,
    skip_existing: bool = True,
    mode: str = "exact",
) -> list[LevelTable]:
    """Load-or-materialize the cube tables for ``builder`` under ``directory``.

    With ``skip_existing`` (the default), a persisted table set that matches
    the builder's geometry at the store's current version is returned as-is;
    pass ``skip_existing=False`` to force a rebuild.  ``mode`` is the
    maintainer's refresh mode (``"exact"`` for bit-for-bit tables,
    ``"merge"`` for pure-algebra patching).
    """
    table_store = CubeTableStore(directory)
    signature = builder.geometry_signature()
    store_version = builder.store.version
    with _TRACER.span(
        "cube.tables", skip_existing=skip_existing, version=store_version
    ) as sp:
        if skip_existing:
            try:
                tables = table_store.load(signature, store_version)
                _HITS.inc()
                sp.annotate(source="tables")
                return tables
            except StorageError:
                _MISSES.inc()
        maintainer = builder.incremental(cache_dir=directory, mode=mode)
        maintainer.refresh()
        tables = maintainer.level_tables()
        table_store.save(tables, signature, store_version)
        _BUILDS.inc()
        sp.annotate(source="build")
    return tables
