"""Delta-aware bellwether-cube maintenance (Theorem 1, applied to updates).

A built cube caches, per region, one :class:`~repro.ml.StackedSuffStats` of
per-base-cell statistics — the same stacks the optimized builder scans for.
When the store absorbs a delta (new months of orders, new or retired items),
:class:`IncrementalCubeMaintainer.refresh` consumes the store's changelog,
maps the touched item ids to their base cells, refreshes only those cells'
statistics, re-rolls the touched regions up the lattice, and re-solves only
the dirty (region, subset) problems — one batched solve per level, no full
scan.  Untouched cells keep their cached statistics.

Two refresh modes:

* ``"exact"`` (default) — dirty cells are recomputed from the touched
  region's *updated* rows.  Because deltas retract first and append at the
  block's end, surviving rows keep their original relative order, so every
  statistic — touched or not — is **bit-for-bit** what a from-scratch
  optimized build over the updated store computes.
* ``"merge"`` — dirty cells are updated algebraically
  (``cached + g(appended) − g(removed)``, the paper's merge applied in
  reverse).  Never rereads surviving rows, at the cost of float-associativity
  drift (equal to scratch up to rounding, not bit-for-bit).

Winner selection replays the builder's sequential first-strict-min rule over
candidates in store order, so refreshed picks match a rebuild exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.cube import (
    BellwetherCubeBuilder,
    BellwetherCubeResult,
    _first_strict_min,
)
from repro.dimensions import Region
from repro.ml import (
    ErrorEstimate,
    LinearSuffStats,
    StackedSuffStats,
    add_intercept,
)
from repro.exceptions import ConfigError
from repro.obs.catalog import (
    INCR_CACHE_HITS,
    INCR_CACHE_MISSES,
    INCR_CELLS_RESOLVED,
    INCR_FULL_REBUILDS,
    INCR_REGIONS_REFRESHED,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage import StorageError

from .cache import SuffStatsCache

__all__ = ["IncrementalCubeMaintainer"]

_TRACER = get_tracer()
_CACHE_HITS = get_registry().counter(INCR_CACHE_HITS)
_CACHE_MISSES = get_registry().counter(INCR_CACHE_MISSES)
_CELLS_RESOLVED = get_registry().counter(INCR_CELLS_RESOLVED)
_REGIONS_REFRESHED = get_registry().counter(INCR_REGIONS_REFRESHED)
_FULL_REBUILDS = get_registry().counter(INCR_FULL_REBUILDS)


class IncrementalCubeMaintainer:
    """Keeps a bellwether cube current across store deltas.

    Parameters
    ----------
    builder:
        The cube builder whose geometry (hierarchies, significant subsets,
        ``min_examples``) and store this maintainer serves.  Requires a
        batchable task (training-set error — the measure Theorem 1 covers).
    cache_dir:
        Optional directory for a persistent :class:`SuffStatsCache`; a
        maintainer constructed later against the same (unchanged) store
        warm-starts from it without a full scan.
    mode:
        ``"exact"`` (bit-for-bit, rereads touched regions) or ``"merge"``
        (pure suffstats algebra, equal up to float associativity).
    """

    def __init__(
        self,
        builder: BellwetherCubeBuilder,
        cache_dir=None,
        mode: str = "exact",
    ):
        if mode not in ("exact", "merge"):
            raise ConfigError(f"unknown refresh mode {mode!r}")
        if not builder._batchable():
            raise ConfigError(
                "incremental maintenance needs the algebraic (training-set) "
                "error estimator; this task's estimator is not batchable"
            )
        self.builder = builder
        self.mode = mode
        self._cache = SuffStatsCache(cache_dir) if cache_dir is not None else None
        self._version: int | None = None  # None = cold (nothing cached yet)
        self._stacks: dict[Region, StackedSuffStats] = {}
        # Per lattice level, per region: arrays over the level's significant
        # subsets — example count, and the solved rmse/sse/dof (NaN/0 where
        # the subset has too few examples in that region).
        self._errors: list[dict[Region, dict[str, np.ndarray]]] = []

    # --------------------------------------------------------------- geometry

    @property
    def _n_cells(self) -> int:
        return len(self.builder._cells)

    @property
    def _p(self) -> int:
        return len(self.builder.store.feature_names) + 1  # + intercept

    def _ordered_regions(self) -> list[Region]:
        """Cached regions in store-scan order (the builder's region order)."""
        return [r for r in self.builder.store.regions() if r in self._stacks]

    # ---------------------------------------------------------------- refresh

    def refresh(self) -> BellwetherCubeResult:
        """The cube for the store's current contents, updated incrementally.

        Cold maintainers try the persistent cache, then fall back to one
        full scan.  Warm maintainers replay ``store.deltas_since`` onto the
        cached statistics; a changelog gap triggers a loud full rebuild.
        """
        store = self.builder.store
        with _TRACER.span("incr.refresh", mode=self.mode) as sp:
            if self._version is None:
                if self._cache is not None and self._try_cache_load():
                    _CACHE_HITS.inc()
                    sp.annotate(source="cache")
                    return self._result_from_cache()
                self._full_build()
                sp.annotate(source="scan")
                return self._result_from_cache()
            try:
                deltas = store.deltas_since(self._version)
            except StorageError:
                _FULL_REBUILDS.inc()
                self._full_build()
                sp.annotate(source="rebuild")
                return self._result_from_cache()
            if not deltas:
                _CACHE_HITS.inc()
                sp.annotate(source="noop")
                return self._result_from_cache()
            self._apply_deltas(deltas)
            sp.annotate(source="delta", deltas=len(deltas))
        return self._result_from_cache()

    def _try_cache_load(self) -> bool:
        store = self.builder.store
        try:
            version, stacks = self._cache.load_versioned(self._n_cells, self._p)
        except StorageError:
            _CACHE_MISSES.inc()
            return False
        if version != store.version:
            # An older snapshot is still a warm start when the changelog
            # covering the gap survives: adopt it and patch the dirty cells
            # forward instead of rescanning.  A gap (reopened store, version
            # ahead of the log) stays a miss -> full rebuild.
            try:
                deltas = store.deltas_since(version)
            except StorageError:
                _CACHE_MISSES.inc()
                return False
            self._stacks = stacks
            self._solve_all_levels()
            self._version = version
            self._apply_deltas(deltas)
            return True
        self._stacks = stacks
        self._solve_all_levels()
        self._version = store.version
        return True

    def _save_cache(self) -> None:
        if self._cache is not None:
            self._cache.save(
                self._version, self._stacks, self._n_cells, self._p
            )

    # ------------------------------------------------------------- full build

    def _full_build(self) -> None:
        """One scan: per-region base-cell stacks + per-level solved errors."""
        builder = self.builder
        self._stacks = {}
        for region, block in builder.store.scan():
            block = block.restrict_to(builder._ids)
            if block.n_examples == 0:
                continue
            rows_item = builder._index.rows_of(block.item_ids)
            cell_of_row = builder._cell_of_item[rows_item]
            self._stacks[region] = builder._cell_stats_stack(
                block, cell_of_row, self._n_cells
            )
        self._solve_all_levels()
        self._version = builder.store.version
        self._save_cache()

    def _solve_all_levels(self) -> None:
        """(Re)solve every cached region's significant subsets, per level.

        One concatenated batched solve per lattice level, like the
        optimized builder — the per-problem solutions are identical because
        stacked LAPACK is deterministic per matrix.
        """
        builder = self.builder
        regions = self._ordered_regions()
        self._errors = []
        for __, rm, keep in builder._levels:
            keep_sidx = np.array([s_idx for s_idx, __s, __n in keep])
            per: dict[Region, dict[str, np.ndarray]] = {}
            pending: list[StackedSuffStats] = []
            slots: list[tuple[Region, np.ndarray]] = []
            for region in regions:
                rolled = self._stacks[region].rollup(
                    rm.subset_of_base, len(rm.subsets)
                ).select(keep_sidx)
                per[region] = self._blank_errors(len(keep), rolled.n)
                cand = np.flatnonzero(rolled.n >= builder.min_examples)
                if len(cand):
                    pending.append(rolled.select(cand))
                    slots.append((region, cand))
            self._errors.append(per)
            self._scatter_solutions(per, pending, slots)

    @staticmethod
    def _blank_errors(n_keep: int, n_vec: np.ndarray) -> dict[str, np.ndarray]:
        return {
            "n": n_vec.copy(),
            "rmse": np.full(n_keep, np.nan),
            "sse": np.full(n_keep, np.nan),
            "dof": np.zeros(n_keep, dtype=np.int64),
        }

    def _scatter_solutions(
        self,
        per: dict[Region, dict[str, np.ndarray]],
        pending: list[StackedSuffStats],
        slots: list[tuple[Region, np.ndarray]],
    ) -> None:
        """Solve the pending problems in one batch; write results back."""
        if not pending:
            return
        rmse, sse, dof = self.builder._training_errors(
            StackedSuffStats.concatenate(pending)
        )
        _CELLS_RESOLVED.inc(len(rmse))
        offset = 0
        for region, cand in slots:
            k = len(cand)
            per[region]["rmse"][cand] = rmse[offset:offset + k]
            per[region]["sse"][cand] = sse[offset:offset + k]
            per[region]["dof"][cand] = dof[offset:offset + k]
            offset += k

    # ---------------------------------------------------------- delta replay

    def _apply_deltas(self, deltas: list) -> None:
        """Fold the changelog entries into the cached stacks and errors."""
        builder = self.builder
        store = builder.store
        touched: dict[Region, list[np.ndarray]] = {}
        for applied in deltas:
            # Drops forget the region *in sequence*, so a later delta that
            # re-adds it rebuilds from nothing instead of patching a stack
            # whose rows are long gone.
            for region in applied.delta.drop_regions:
                self._forget_region(region)
                touched.pop(region, None)
            for region in applied.delta.blocks:
                touched.setdefault(region, []).append(
                    applied.touched_items(region)
                )
        _REGIONS_REFRESHED.inc(len(touched))
        # Per level: dirty problems gathered across every touched region,
        # solved by one batched call after the loop.
        pending: list[list[StackedSuffStats]] = [[] for __ in builder._levels]
        slots: list[list[tuple[Region, np.ndarray]]] = [
            [] for __ in builder._levels
        ]
        for region, id_lists in touched.items():
            dirty_cells = self._dirty_cells(np.concatenate(id_lists))
            block = store.read(region).restrict_to(builder._ids)
            if block.n_examples == 0:
                self._forget_region(region)
                continue
            is_new = region not in self._stacks
            stack = self._refresh_stack(region, block, dirty_cells, deltas)
            self._stacks[region] = stack
            if is_new:
                dirty_cells = np.flatnonzero(stack.n > 0)
            for lvl, (__, rm, keep) in enumerate(builder._levels):
                keep_sidx = np.array([s_idx for s_idx, __s, __n in keep])
                rolled = stack.rollup(rm.subset_of_base, len(rm.subsets)).select(
                    keep_sidx
                )
                old = self._errors[lvl].get(region)
                per = self._blank_errors(len(keep), rolled.n)
                # Clean subsets' base cells did not move: their cached
                # solutions are still bit-exact.  Only dirty subsets (those
                # receiving a dirty base cell) re-enter the solver.
                dirty_s = np.unique(rm.subset_of_base[dirty_cells])
                dirty_pos = np.flatnonzero(np.isin(keep_sidx, dirty_s))
                if old is not None:
                    clean = np.setdiff1d(
                        np.arange(len(keep)), dirty_pos, assume_unique=True
                    )
                    for key in ("rmse", "sse", "dof"):
                        per[key][clean] = old[key][clean]
                else:
                    dirty_pos = np.flatnonzero(rolled.n > 0)
                self._errors[lvl][region] = per
                cand = dirty_pos[rolled.n[dirty_pos] >= builder.min_examples]
                if len(cand):
                    pending[lvl].append(rolled.select(cand))
                    slots[lvl].append((region, cand))
        for lvl in range(len(builder._levels)):
            self._scatter_solutions(self._errors[lvl], pending[lvl], slots[lvl])
        self._version = store.version
        self._save_cache()

    def _forget_region(self, region: Region) -> None:
        self._stacks.pop(region, None)
        for per in self._errors:
            per.pop(region, None)

    def _dirty_cells(self, item_ids: np.ndarray) -> np.ndarray:
        """The base cells of the builder's items among ``item_ids``."""
        builder = self.builder
        ids = np.unique(item_ids)
        known = builder._index.contains(ids)
        rows = builder._index.rows_of(ids[known])
        return np.unique(builder._cell_of_item[rows])

    def _refresh_stack(
        self,
        region: Region,
        block,
        dirty_cells: np.ndarray,
        deltas: list,
    ) -> StackedSuffStats:
        """The region's updated base-cell stack (exact or algebraic)."""
        builder = self.builder
        old = self._stacks.get(region)
        rows_item = builder._index.rows_of(block.item_ids)
        cell_of_row = builder._cell_of_item[rows_item]
        if old is None:
            return builder._cell_stats_stack(block, cell_of_row, self._n_cells)
        if self.mode == "merge":
            return self._merge_stack(region, old, deltas)
        # Exact mode: recompute the dirty cells from the updated block.
        # Rows reach from_data in ascending row order — the same order the
        # builder's stable-argsort grouping uses — so recomputed statistics
        # are bit-identical to a scratch pass; clean cells' rows did not
        # move relative to each other and keep their cached bits.
        stack = old.copy()
        design = add_intercept(block.x)
        refreshed = []
        for cell in dirty_cells:
            rows = np.flatnonzero(cell_of_row == cell)
            if len(rows):
                refreshed.append(
                    LinearSuffStats.from_data(
                        design[rows],
                        block.y[rows],
                        None if block.weights is None else block.weights[rows],
                    )
                )
            else:
                refreshed.append(LinearSuffStats.zeros(self._p))
        if refreshed:
            stack.assign(dirty_cells, StackedSuffStats.from_stats(refreshed))
        return stack

    def _merge_stack(
        self,
        region: Region,
        old: StackedSuffStats,
        deltas: list,
    ) -> StackedSuffStats:
        """``cached + g(appended rows) − g(removed rows)``, per base cell."""
        stack = old
        for applied in deltas:
            bd = applied.delta.blocks.get(region)
            if bd is not None and bd.append is not None:
                stack = stack + self._rows_stack(bd.append)
            removed = applied.removed.get(region)
            if removed is not None and removed.n_examples:
                stack = stack - self._rows_stack(removed)
        return stack

    def _rows_stack(self, block) -> StackedSuffStats:
        """Delta rows (restricted to the builder's items) grouped by cell."""
        builder = self.builder
        sub = block.restrict_to(builder._ids)
        if sub.n_examples == 0:
            return StackedSuffStats.zeros(self._n_cells, self._p)
        rows_item = builder._index.rows_of(sub.item_ids)
        cells = builder._cell_of_item[rows_item]
        return StackedSuffStats.from_groups(
            add_intercept(sub.x), sub.y, sub.weights, cells, self._n_cells
        )

    # ------------------------------------------------------------ cube tables

    def level_tables(self) -> list:
        """The cached statistics as materialized per-level cube tables.

        One :class:`~repro.storage.cubetables.LevelTable` per significant
        lattice level: every cached region's base cells rolled up to the
        level's significant subsets, region-major — bit-identical to the
        rollup ``build("optimized")`` performs, so a cube built from these
        tables (:meth:`BellwetherCubeBuilder.build_from_tables`) matches a
        scratch build exactly.  Requires a refreshed maintainer.
        """
        from repro.storage import LevelTable

        if self._version is None:
            raise ConfigError("refresh() the maintainer before level_tables()")
        builder = self.builder
        regions = tuple(self._ordered_regions())
        tables: list = []
        for level, rm, keep in builder._levels:
            keep_sidx = np.array(
                [s_idx for s_idx, __s, __n in keep], dtype=np.int64
            )
            per = [
                self._stacks[r]
                .rollup(rm.subset_of_base, len(rm.subsets))
                .select(keep_sidx)
                for r in regions
            ]
            stats = (
                StackedSuffStats.concatenate(per)
                if per
                else StackedSuffStats.zeros(0, self._p)
            )
            tables.append(
                LevelTable(
                    level=tuple(level),
                    regions=regions,
                    keep_sidx=keep_sidx,
                    stats=stats,
                )
            )
        return tables

    # ----------------------------------------------------------------- result

    def _result_from_cache(self) -> BellwetherCubeResult:
        """Winners from the cached per-(level, region) errors — no solves.

        Replays the builder's tie-breaking: per subset, candidates (enough
        examples) in store-region order, first strict minimum wins.
        """
        builder = self.builder
        regions = self._ordered_regions()
        best: dict = {}
        for lvl, (__, __rm, keep) in enumerate(builder._levels):
            per = self._errors[lvl]
            if not regions:
                continue
            n_mat = np.stack([per[r]["n"] for r in regions])
            rmse_mat = np.stack([per[r]["rmse"] for r in regions])
            cand = n_mat >= builder.min_examples
            for j, (__s_idx, subset, __n) in enumerate(keep):
                hits = np.flatnonzero(cand[:, j])
                if not len(hits):
                    continue
                k = hits[_first_strict_min(rmse_mat[hits, j])]
                winner = regions[k]
                best[subset] = (
                    winner,
                    ErrorEstimate(
                        rmse=float(per[winner]["rmse"][j]),
                        kind="training",
                        sse=float(per[winner]["sse"][j]),
                        dof=int(per[winner]["dof"][j]),
                    ),
                )
        entries = builder._entries_from_best(best)
        return BellwetherCubeResult(
            entries, builder.hierarchies, builder.confidence
        )
