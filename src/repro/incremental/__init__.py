"""Incremental bellwether maintenance (delta-aware, Theorem 1 applied twice).

The paper makes per-region WLS error an algebraic aggregate; this package
exploits the same algebra *across time*: when the versioned training-data
store absorbs appended or retracted fact rows (see :mod:`repro.storage.delta`),
cached sufficient statistics are patched — merged, retracted, or recomputed
per dirty base cell — and only the dirty (region, item-subset) lattice cells
are re-solved.  Results stay bit-for-bit equal to a from-scratch rebuild
while doing none of the rebuild's scans.

Submodules
----------
``maintain``
    :class:`IncrementalCubeMaintainer` — keeps a bellwether cube current
    across store deltas (one batched solve per dirty level, no full scan).
``cache``
    :class:`SuffStatsCache` — persistent per-region suffstats stacks keyed
    by store version; :class:`StaleCacheError` on version mismatch.
``deltas``
    Month-append stream construction for the experiment configs.
``tables``
    :func:`build_cube_tables` — load-or-materialize the persistent per-level
    suffstats cube tables (:mod:`repro.storage.cubetables`) with
    ``--skip-existing`` incremental builds.

Counters (in :mod:`repro.obs`): ``incr.cache_hits``, ``incr.cache_misses``,
``incr.cells_resolved``, ``incr.regions_refreshed``, ``incr.full_rebuilds``.
The basic search's :meth:`~repro.core.BasicBellwetherSearch.refresh` shares
the same instruments.
"""

from .cache import StaleCacheError, SuffStatsCache
from .deltas import (
    month_append_delta,
    month_split_store,
    versions_behind,
    window_end,
)
from .maintain import IncrementalCubeMaintainer
from .tables import build_cube_tables

__all__ = [
    "IncrementalCubeMaintainer",
    "StaleCacheError",
    "SuffStatsCache",
    "build_cube_tables",
    "month_append_delta",
    "month_split_store",
    "versions_behind",
    "window_end",
]
