"""Central catalog of every metric instrument name in the reproduction.

String-keyed metrics have one classic failure mode: a typo'd name silently
registers a *second* instrument, and the Lemma 1/2 scan-bound tests (or a
bench gate) read zeros from the name nobody increments.  This module is the
single source of truth: every counter/gauge/histogram name is a constant
here, call sites import the constant, and rule RPR002 in
:mod:`repro.analysis` statically rejects both

* a name literal passed to ``counter()/gauge()/histogram()/inc()/observe()``
  that this catalog does not define, and
* a catalog name re-typed as a raw string literal anywhere else (use the
  constant, so a rename is one edit plus the type checker's help).

The linter parses this file's AST rather than importing it, so the catalog
must stay what it is now: flat ``UPPER_CASE = "literal"`` assignments.
Dynamic families (the per-span histograms ``span.<name>.s`` emitted by
:mod:`repro.obs.trace`) are intentionally outside the catalog; they are
derived from span names, not free-typed.
"""

from __future__ import annotations

# --------------------------------------------------------------- storage I/O
# Folded in from IOStats; these back the Lemma 1/2 scan-accounting tests.
STORE_REGION_READS = "store.region_reads"
STORE_FULL_SCANS = "store.full_scans"
STORE_BYTES_READ = "store.bytes_read"

# ----------------------------------------------------------- columnar backend
# Counted by repro.storage.columnar: bounded-memory chunk reads (each chunk's
# bytes also land in store.bytes_read, keeping the Lemma accounting truthful)
# and column-file write traffic.
STORE_COLUMNAR_CHUNKS_READ = "store.columnar.chunks_read"
STORE_COLUMNAR_BYTES_WRITTEN = "store.columnar.bytes_written"
STORE_COLUMNAR_REGIONS_WRITTEN = "store.columnar.regions_written"

# ------------------------------------------------------------ linear algebra
ML_LINEAR_FITS = "ml.linear.fits"
ML_LINEAR_BATCHED_SOLVES = "ml.linear.batched_solves"
ML_LINEAR_BATCHED_PROBLEMS = "ml.linear.batched_problems"

# ------------------------------------------------------- incremental layer
INCR_CACHE_HITS = "incr.cache_hits"
INCR_CACHE_MISSES = "incr.cache_misses"
INCR_CELLS_RESOLVED = "incr.cells_resolved"
INCR_REGIONS_REFRESHED = "incr.regions_refreshed"
INCR_FULL_REBUILDS = "incr.full_rebuilds"

# ------------------------------------------------------------------- search
SEARCH_REGIONS_EVALUATED = "search.regions_evaluated"

# --------------------------------------------------------------------- tree
TREE_SPLIT_EVALS = "tree.split_evals"
TREE_NODES_SPLIT = "tree.nodes_split"

# --------------------------------------------------------------------- cube
CUBE_SUBSETS_BUILT = "cube.subsets_built"

# ------------------------------------------------------- materialized tables
# Counted by repro.storage.cubetables / repro.incremental.tables: warm loads
# vs. stale misses vs. from-facts builds of the persisted per-level suffstats
# cube tables, plus their (derived-statistics, non-store) byte traffic.
CUBE_TABLES_BUILDS = "cube.tables.builds"
CUBE_TABLES_HITS = "cube.tables.hits"
CUBE_TABLES_MISSES = "cube.tables.misses"
CUBE_TABLES_BYTES_WRITTEN = "cube.tables.bytes_written"
CUBE_TABLES_BYTES_READ = "cube.tables.bytes_read"

# ------------------------------------------------------------- worker fan-out
# Counted by repro.exec.ParallelExecutor when work leaves the parent process:
# chunks dispatched, plus the trace/histogram payloads merged back so parallel
# runs stay observably identical to serial ones.
EXEC_WORKER_CHUNKS = "exec.worker.chunks"
EXEC_WORKER_SPANS_MERGED = "exec.worker.spans_merged"
EXEC_WORKER_HISTOGRAMS_MERGED = "exec.worker.histograms_merged"

# ------------------------------------------------------- resource profiling
# Gauges sampled per span by repro.obs.profile.ResourceProfiler.
OBS_RSS_PEAK_BYTES = "obs.rss_peak_bytes"
OBS_GC_COLLECTIONS = "obs.gc_collections"
OBS_READ_RATE_BPS = "obs.read_rate_bps"

# ------------------------------------------------------------- query service
# Counted by repro.serve: requests answered (and how many errored), warm
# profile hits vs. cold recomputes, store-version adoptions picked up from
# the changelog, and queries proven to have touched zero facts.  The
# registry itself is single-threaded by design, so the service updates these
# under its own instrument lock (see repro.serve.state).
SERVE_REQUESTS = "serve.requests"
SERVE_ERRORS = "serve.errors"
SERVE_CACHE_HITS = "serve.cache_hits"
SERVE_CACHE_MISSES = "serve.cache_misses"
SERVE_VERSION_ADOPTIONS = "serve.version_adoptions"
SERVE_ZERO_SCAN_QUERIES = "serve.zero_scan_queries"

# Per-endpoint latency histograms (seconds), observed by repro.serve.app.
SERVE_LATENCY_MODEL = "serve.latency.model.s"
SERVE_LATENCY_REGIONS = "serve.latency.regions.s"
SERVE_LATENCY_CUBE = "serve.latency.cube.s"
SERVE_LATENCY_BELLWETHER = "serve.latency.bellwether.s"
SERVE_LATENCY_PREDICT = "serve.latency.predict.s"
SERVE_LATENCY_AQP = "serve.latency.aqp.s"
SERVE_LATENCY_AQP_TRAIN = "serve.latency.aqp_train.s"

# ------------------------------------------------- approximate answering (AQP)
# Counted by repro.aqp: queries asking mode=approx, how many were answered
# from the learned surface vs fell back to the exact cube-table path (and
# why — the engine annotates the reason on the response, the counter sums
# them), model (re)trains split out by drift-triggered ones, workload
# journal appends, and journal read/decode failures (after which serving
# degrades to exact-only until a successful retrain).
AQP_QUERIES = "aqp.queries"
AQP_APPROX_ANSWERS = "aqp.approx_answers"
AQP_FALLBACKS = "aqp.fallbacks"
AQP_TRAINS = "aqp.trains"
AQP_DRIFT_RETRAINS = "aqp.drift_retrains"
AQP_JOURNAL_RECORDS = "aqp.journal_records"
AQP_JOURNAL_ERRORS = "aqp.journal_errors"

# ------------------------------------------------- runtime lock checking
# Counted by repro.analysis.runtime when the opt-in lock checker is on
# (observe(lockcheck=True) / --lockcheck): tracked acquisitions, distinct
# acquisition-order edges observed, held-lock assertions evaluated, and
# discipline violations (order inversions, non-reentrant re-acquisition,
# failed assertions).  All zero when the checker is off.
ANALYSIS_LOCK_ACQUISITIONS = "analysis.lock.acquisitions"
ANALYSIS_LOCK_EDGES = "analysis.lock.edges"
ANALYSIS_LOCK_ASSERTS = "analysis.lock.asserts"
ANALYSIS_LOCK_VIOLATIONS = "analysis.lock.violations"


#: Every registered counter name (all instruments above are counters today;
#: gauges/histograms added later join their own tuple and ALL_NAMES).
COUNTERS: tuple[str, ...] = (
    STORE_REGION_READS,
    STORE_FULL_SCANS,
    STORE_BYTES_READ,
    STORE_COLUMNAR_CHUNKS_READ,
    STORE_COLUMNAR_BYTES_WRITTEN,
    STORE_COLUMNAR_REGIONS_WRITTEN,
    ML_LINEAR_FITS,
    ML_LINEAR_BATCHED_SOLVES,
    ML_LINEAR_BATCHED_PROBLEMS,
    INCR_CACHE_HITS,
    INCR_CACHE_MISSES,
    INCR_CELLS_RESOLVED,
    INCR_REGIONS_REFRESHED,
    INCR_FULL_REBUILDS,
    SEARCH_REGIONS_EVALUATED,
    TREE_SPLIT_EVALS,
    TREE_NODES_SPLIT,
    CUBE_SUBSETS_BUILT,
    CUBE_TABLES_BUILDS,
    CUBE_TABLES_HITS,
    CUBE_TABLES_MISSES,
    CUBE_TABLES_BYTES_WRITTEN,
    CUBE_TABLES_BYTES_READ,
    EXEC_WORKER_CHUNKS,
    EXEC_WORKER_SPANS_MERGED,
    EXEC_WORKER_HISTOGRAMS_MERGED,
    SERVE_REQUESTS,
    SERVE_ERRORS,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_VERSION_ADOPTIONS,
    SERVE_ZERO_SCAN_QUERIES,
    AQP_QUERIES,
    AQP_APPROX_ANSWERS,
    AQP_FALLBACKS,
    AQP_TRAINS,
    AQP_DRIFT_RETRAINS,
    AQP_JOURNAL_RECORDS,
    AQP_JOURNAL_ERRORS,
    ANALYSIS_LOCK_ACQUISITIONS,
    ANALYSIS_LOCK_EDGES,
    ANALYSIS_LOCK_ASSERTS,
    ANALYSIS_LOCK_VIOLATIONS,
)

GAUGES: tuple[str, ...] = (
    OBS_RSS_PEAK_BYTES,
    OBS_GC_COLLECTIONS,
    OBS_READ_RATE_BPS,
)
HISTOGRAMS: tuple[str, ...] = (
    SERVE_LATENCY_MODEL,
    SERVE_LATENCY_REGIONS,
    SERVE_LATENCY_CUBE,
    SERVE_LATENCY_BELLWETHER,
    SERVE_LATENCY_PREDICT,
    SERVE_LATENCY_AQP,
    SERVE_LATENCY_AQP_TRAIN,
)


def all_names() -> frozenset[str]:
    """Every catalogued instrument name."""
    return frozenset(COUNTERS) | frozenset(GAUGES) | frozenset(HISTOGRAMS)
