"""Per-span resource profiling: peak RSS, GC pressure, store read rate.

A :class:`ResourceProfiler` installs on the tracer
(:meth:`~repro.obs.trace.Tracer.set_profiler`) and samples three cheap
process-level signals at every span boundary:

* **peak RSS** (``resource.getrusage`` — one C call, no /proc reads),
* **GC collections** (``gc.get_stats`` collection totals), and
* **``store.bytes_read``** (the storage layer's byte counter),

annotating each finished span with what changed while it ran and keeping
three registry gauges current (:data:`~repro.obs.catalog.OBS_RSS_PEAK_BYTES`,
:data:`~repro.obs.catalog.OBS_GC_COLLECTIONS`,
:data:`~repro.obs.catalog.OBS_READ_RATE_BPS`).  Span attributes added:

* ``rss_peak_mb`` — the process peak RSS observed by span end (monotone;
  a jump inside a span localizes an allocation burst to that span);
* ``gc_collections`` — collections that ran during the span (only when
  nonzero);
* ``read_mb_s`` — store bytes read during the span divided by its
  duration (only when bytes were read).

The profiler is opt-in (``observe(..., profile=True)`` or the experiment
CLI's ``--profile``): two syscalls per span is cheap but not free, and
span-attribute noise is unwelcome in traces that do not ask for it.
"""

from __future__ import annotations

import gc
import sys

from . import catalog
from .metrics import get_registry

try:
    import resource
except ImportError:  # non-POSIX platform: profile everything but RSS
    resource = None

__all__ = ["ResourceProfiler", "peak_rss_bytes"]


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes (0 when unavailable)."""
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def _gc_collections() -> int:
    return sum(gen["collections"] for gen in gc.get_stats())


class ResourceProfiler:
    """Samples resource state at span boundaries; annotates the deltas."""

    def __init__(self):
        self._registry = get_registry()
        self._bytes_read = self._registry.counter(catalog.STORE_BYTES_READ)
        self._rss_gauge = self._registry.gauge(catalog.OBS_RSS_PEAK_BYTES)
        self._gc_gauge = self._registry.gauge(catalog.OBS_GC_COLLECTIONS)
        self._rate_gauge = self._registry.gauge(catalog.OBS_READ_RATE_BPS)
        # Entry snapshots keyed by span identity: spans nest and may close
        # out of LIFO order (generator suspensions), so a stack won't do.
        self._entries: dict[int, tuple[int, int]] = {}

    def on_enter(self, span) -> None:
        self._entries[id(span)] = (_gc_collections(), self._bytes_read.value)

    def on_exit(self, span) -> None:
        entry = self._entries.pop(id(span), None)
        if entry is None:
            return  # profiler installed while the span was already open
        gc_before, bytes_before = entry
        rss = peak_rss_bytes()
        gc_now = _gc_collections()
        bytes_now = self._bytes_read.value
        self._rss_gauge.set(rss)
        self._gc_gauge.set(gc_now)
        attrs: dict = {"rss_peak_mb": round(rss / 1e6, 1)}
        if gc_now > gc_before:
            attrs["gc_collections"] = gc_now - gc_before
        read = bytes_now - bytes_before
        if read > 0 and span.duration > 0:
            rate = read / span.duration
            self._rate_gauge.set(rate)
            attrs["read_mb_s"] = round(rate / 1e6, 2)
        span.annotate(**attrs)
