"""Trace analytics: self/total time, critical path, top-k hot spans.

Operates on the JSON span dicts produced by
:func:`~repro.obs.export.span_to_dict` — the format ``--metrics-out``
writes and forked workers ship back — so the same analyses run on a live
:class:`~repro.obs.trace.Span` tree (via ``span_to_dict``) or on a
JSON-lines export loaded from disk.

Three views, all rendered by :func:`render_trace_report`:

* **Span tree with self/total time.**  ``total`` is the span's wall-clock;
  ``self`` is total minus the sum of its children — the time the span spent
  in its *own* code.  Siblings sharing a name aggregate to one line, like
  :func:`~repro.obs.export.render_span_tree`.
* **Critical path.**  From each root, repeatedly descend into the heaviest
  child; the emitted chain is where an optimizer should look first, since
  no other branch can dominate the run without first beating this one.
* **Top-k hot spans.**  Span names ranked by aggregate self time across the
  whole trace — the flat profile complementing the tree.

The CLI (``python -m repro.obs report runs.jsonl``) applies these to every
record in an export; the experiment runners print the same report on
stderr under ``--trace``.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.exceptions import ConfigError

__all__ = [
    "SpanStats",
    "aggregate_span_stats",
    "critical_path",
    "load_records",
    "render_critical_path",
    "render_hot_spans",
    "render_record_report",
    "render_trace_report",
    "self_time",
    "top_spans",
]


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.1f}ms"
    return f"{s * 1e6:.0f}us"


def self_time(span: dict) -> float:
    """The span's duration minus its children's (floored at zero)."""
    children = span.get("children") or []
    return max(
        float(span.get("duration_s", 0.0))
        - sum(float(c.get("duration_s", 0.0)) for c in children),
        0.0,
    )


class SpanStats:
    """Aggregate totals for one span name across a trace."""

    __slots__ = ("name", "count", "total_s", "self_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0

    def add(self, span: dict) -> None:
        self.count += 1
        self.total_s += float(span.get("duration_s", 0.0))
        self.self_s += self_time(span)

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.name!r}, n={self.count}, "
            f"total={self.total_s:.4f}s, self={self.self_s:.4f}s)"
        )


def aggregate_span_stats(roots: Sequence[dict]) -> dict[str, SpanStats]:
    """Per-name stats over every span in the given trees."""
    stats: dict[str, SpanStats] = {}
    pending = list(roots)
    while pending:
        span = pending.pop()
        entry = stats.get(span.get("name", "?"))
        if entry is None:
            entry = stats[span.get("name", "?")] = SpanStats(
                span.get("name", "?")
            )
        entry.add(span)
        pending.extend(span.get("children") or [])
    return stats


def top_spans(roots: Sequence[dict], k: int = 10) -> list[SpanStats]:
    """The k span names with the largest aggregate self time."""
    ranked = sorted(
        aggregate_span_stats(roots).values(),
        key=lambda s: s.self_s,
        reverse=True,
    )
    return ranked[: max(k, 0)]


def critical_path(root: dict) -> list[dict]:
    """Heaviest-child chain from ``root`` down to a leaf.

    Each element is the span dict itself; the chain answers "which single
    nesting of operations accounts for the run's duration".
    """
    path = [root]
    node = root
    while node.get("children"):
        node = max(
            node["children"], key=lambda c: float(c.get("duration_s", 0.0))
        )
        path.append(node)
    return path


# ------------------------------------------------------------------ rendering


class _Group:
    __slots__ = ("name", "count", "total", "self_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_s = 0.0
        self.children: list[dict] = []


def _render_tree(roots: Sequence[dict], lines: list[str], depth: int) -> None:
    groups: dict[str, _Group] = {}
    for span in roots:
        g = groups.get(span.get("name", "?"))
        if g is None:
            g = groups[span.get("name", "?")] = _Group(span.get("name", "?"))
        g.count += 1
        g.total += float(span.get("duration_s", 0.0))
        g.self_s += self_time(span)
        g.children.extend(span.get("children") or [])
    for g in groups.values():
        prefix = "  " * depth
        count = f"  x{g.count}" if g.count > 1 else ""
        lines.append(
            f"{prefix}{g.name}{count}  total {_fmt_seconds(g.total)}"
            f"  self {_fmt_seconds(g.self_s)}"
        )
        _render_tree(g.children, lines, depth + 1)


def render_critical_path(roots: Sequence[dict]) -> str:
    """The heaviest root's critical path, one hop per line."""
    if not roots:
        return "(no spans recorded)"
    heaviest = max(roots, key=lambda r: float(r.get("duration_s", 0.0)))
    lines = ["-- critical path --"]
    for hop, span in enumerate(critical_path(heaviest)):
        lines.append(
            f"{'  ' * hop}{span.get('name', '?')}  "
            f"{_fmt_seconds(float(span.get('duration_s', 0.0)))}"
            f"  (self {_fmt_seconds(self_time(span))})"
        )
    return "\n".join(lines)


def render_hot_spans(roots: Sequence[dict], top: int = 5) -> str:
    """The top-k span names by aggregate self time, one per line."""
    if not roots:
        return "(no spans recorded)"
    lines = [f"-- top {top} hot spans (by self time) --"]
    for stats in top_spans(roots, top):
        lines.append(
            f"{stats.name}  x{stats.count}  self {_fmt_seconds(stats.self_s)}"
            f"  total {_fmt_seconds(stats.total_s)}"
        )
    return "\n".join(lines)


def render_trace_report(roots: Sequence[dict], top: int = 5) -> str:
    """Span tree (self/total), critical path, and top-k hot spans."""
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = ["-- span tree (total / self) --"]
    _render_tree(roots, lines, 0)
    return "\n".join([
        "\n".join(lines),
        render_critical_path(roots),
        render_hot_spans(roots, top),
    ])


# ---------------------------------------------------------------- file input


def load_records(path: str | Path) -> list[dict]:
    """Parse a JSON-lines export (``--metrics-out`` format) into records."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no trace export at {path}")
    records: list[dict] = []
    with path.open() as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{lineno}: not a JSON record ({exc})"
                ) from exc
            if isinstance(record, dict):
                records.append(record)
    return records


def render_record_report(
    records: Iterable[dict],
    top: int = 5,
    name: str | None = None,
) -> str:
    """One trace report per record that carries spans.

    ``name`` filters to records whose ``name`` matches (a figure, usually).
    Records without spans still contribute a one-line elapsed summary, so a
    metrics-only export renders something useful.
    """
    parts: list[str] = []
    for record in records:
        rec_name = record.get("name", "?")
        if name is not None and rec_name != name:
            continue
        elapsed = float(record.get("elapsed_s", 0.0))
        parts.append(f"== {rec_name}: {_fmt_seconds(elapsed)} ==")
        spans = record.get("spans")
        if spans:
            parts.append(render_trace_report(spans, top=top))
    if not parts:
        scope = f" named {name!r}" if name else ""
        return f"(no records{scope})"
    return "\n".join(parts)
