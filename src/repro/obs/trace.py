"""Hierarchical wall-clock tracing spans with a zero-overhead off switch.

Usage::

    from repro.obs import get_tracer

    tracer = get_tracer()
    tracer.enable()
    with tracer.span("tree.build", method="rf"):
        with tracer.span("tree.level", level=0):
            ...
    print(render_span_tree(tracer.take_roots()))

When tracing is disabled (the default), :meth:`Tracer.span` returns one
shared :class:`NullSpan`, so an instrumented hot path pays a single method
call and no allocation beyond the keyword dict — small enough that the
figure drivers run within noise of the uninstrumented seed.

Spans may stay open across generator suspensions (the store's ``scan()``
holds one while yielding blocks); exit therefore removes the span from the
stack by identity rather than assuming strict LIFO order.

The span stack is **per thread**: a span opened inside a worker thread
nests under whatever that thread has open, never under another thread's
frame.  Worker-thread (and forked-worker) span trees re-attach under the
submitting span through :meth:`Tracer.adopt` — :class:`repro.exec.
ParallelExecutor` ships them back with the counter/histogram deltas, so a
``--trace --workers N`` run yields the same tree shape as a serial run,
nested under ``exec.map``/``exec.chunk``.

A profiler (see :mod:`repro.obs.profile`) may be installed with
:meth:`Tracer.set_profiler`; it is called on every span enter/exit while
tracing is enabled, and is how per-span resource gauges are sampled.
"""

from __future__ import annotations

import threading
import time

from .metrics import get_registry

__all__ = ["NullSpan", "Span", "Tracer", "get_tracer", "span"]


class Span:
    """One timed operation; a node of the trace tree."""

    __slots__ = ("name", "attrs", "start", "duration", "children", "_tracer")

    def __init__(self, name: str, tracer: "Tracer | None", attrs: dict):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.children: list[Span] = []
        self._tracer = tracer

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration = time.perf_counter() - self.start
        self._tracer._pop(self)
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, {self.attrs})"


class NullSpan:
    """The disabled recorder: accepts the whole Span surface, records nothing."""

    __slots__ = ()

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = NullSpan()


class Tracer:
    """Collects span trees while enabled; hands out the null span otherwise.

    Finished root spans accumulate until :meth:`take_roots` drains them.
    Each finished span also feeds the metrics registry histogram
    ``span.<name>.s`` so percentiles survive even when only metrics (not the
    span tree) are exported.
    """

    def __init__(self):
        self._enabled = False
        self._local = threading.local()
        self._roots: list[Span] = []
        self._registry = get_registry()
        self._profiler = None

    # ---------------------------------------------------------------- state

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop the calling thread's open spans and all finished roots.

        Forked workers call this first thing: the child inherits the
        parent's open stack and roots through fork, and its own spans must
        form fresh trees that ship back whole.
        """
        self._stack.clear()
        self._roots.clear()

    def set_profiler(self, profiler) -> None:
        """Install (or with ``None``, remove) the per-span profiler hook."""
        self._profiler = profiler

    @property
    def profiler(self):
        return self._profiler

    # ----------------------------------------------------------------- spans

    def span(self, name: str, **attrs):
        """A context manager timing one operation (no-op when disabled)."""
        if not self._enabled:
            return _NULL_SPAN
        return Span(name, self, attrs)

    def current_span(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack.append(span)
        if self._profiler is not None:
            self._profiler.on_enter(span)

    def _pop(self, span: Span) -> None:
        if self._profiler is not None:
            self._profiler.on_exit(span)
        stack = self._stack
        try:
            stack.remove(span)
        except ValueError:
            return  # tracer was reset while the span was open
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self._roots.append(span)
        self._registry.observe(f"span.{span.name}.s", span.duration)

    # ------------------------------------------------------------- adoption

    def mark_roots(self) -> int:
        """A high-water mark for :meth:`take_roots_since`."""
        return len(self._roots)

    def take_roots_since(self, mark: int) -> list[Span]:
        """Drain roots finished after ``mark`` (worker-thread chunk spans)."""
        out = self._roots[mark:]
        del self._roots[mark:]
        return out

    def adopt(self, spans: list[Span], parent: Span | None = None) -> None:
        """Attach already-finished span trees under ``parent`` (or as roots).

        Used to re-parent worker spans — deserialized from a forked process,
        or drained from worker threads — under the submitting span.  The
        spans' ``span.*.s`` observations are *not* replayed here: thread
        workers observed into the shared registry directly, and forked
        workers' observations arrive via
        :meth:`MetricsRegistry.merge_histogram_deltas`, so adopting never
        double-counts.
        """
        if parent is not None:
            parent.children.extend(spans)
        else:
            self._roots.extend(spans)

    # --------------------------------------------------------------- results

    @property
    def roots(self) -> list[Span]:
        """Finished top-level spans recorded so far (not drained)."""
        return list(self._roots)

    def take_roots(self) -> list[Span]:
        """Drain and return the finished top-level spans."""
        out = list(self._roots)
        self._roots.clear()
        return out


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented module binds to."""
    return _TRACER


def span(name: str, **attrs):
    """Shorthand for ``get_tracer().span(name, **attrs)``."""
    return _TRACER.span(name, **attrs)
