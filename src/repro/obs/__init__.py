"""Observability: metrics, tracing spans, exporters, and bench journaling.

The paper's efficiency claims are phrased in *scans of the entire training
data* (naive tree per (node, split), RF tree per level, cube once — Lemmas 1
and 2).  This package turns those claims, plus wall-clock and model-fit
counts, into measurements:

* :mod:`repro.obs.metrics` — process-wide registry of named counters, gauges
  and streaming histograms (p50/p95/p99 without raw-sample retention).  The
  storage layer folds its :class:`~repro.storage.IOStats` counters in as
  ``store.region_reads`` / ``store.full_scans`` / ``store.bytes_read``.
* :mod:`repro.obs.trace` — hierarchical wall-clock spans
  (``with span("tree.level", level=2): ...``).  Disabled by default: the
  null recorder returns a shared no-op span, so instrumented hot paths cost
  one call when tracing is off.
* :mod:`repro.obs.export` — human-readable span-tree / metrics tables for
  stderr, and JSON-lines records for files.
* :mod:`repro.obs.bench` — append-only journal of structured benchmark
  entries (``BENCH_*.json``), giving the repo a timing trajectory across
  PRs; every record is stamped with the :mod:`repro.obs.runinfo` identity
  (``run_id``, git sha, hostname, python).
* :mod:`repro.obs.profile` — :class:`ResourceProfiler`, the per-span hook
  sampling peak RSS, GC collections, and store read rate.
* :mod:`repro.obs.report` — trace analytics over span exports: self/total
  time, critical-path extraction, top-k hot spans
  (``python -m repro.obs report``).
* :mod:`repro.obs.journal` — schema'd parsing of the bench trajectory and
  the noise-aware regression sentinel (``python -m repro.obs sentinel``).
* :mod:`repro.obs.context` — :func:`observe`, the one-stop session used by
  ``python -m repro.experiments ... --trace --metrics-out``.

Nothing here imports the rest of :mod:`repro` (beyond the shared root
:mod:`repro.exceptions`); every other package may depend on this one.
"""

from .bench import BenchJournal
from .context import ObsReport, observe
from .export import (
    append_jsonl,
    render_metrics_table,
    render_span_tree,
    span_from_dict,
    span_to_dict,
)
from .journal import JournalRecord, Sentinel, SentinelReport, load_journal
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .profile import ResourceProfiler
from .report import render_trace_report
from .runinfo import current_run_id, run_context
from .trace import Span, Tracer, get_tracer, span

__all__ = [
    "BenchJournal",
    "Counter",
    "Gauge",
    "Histogram",
    "JournalRecord",
    "MetricsRegistry",
    "ObsReport",
    "ResourceProfiler",
    "Sentinel",
    "SentinelReport",
    "Span",
    "Tracer",
    "append_jsonl",
    "current_run_id",
    "get_registry",
    "get_tracer",
    "load_journal",
    "observe",
    "render_metrics_table",
    "render_span_tree",
    "render_trace_report",
    "run_context",
    "span",
    "span_from_dict",
    "span_to_dict",
]
