"""Observability: metrics, tracing spans, exporters, and bench journaling.

The paper's efficiency claims are phrased in *scans of the entire training
data* (naive tree per (node, split), RF tree per level, cube once — Lemmas 1
and 2).  This package turns those claims, plus wall-clock and model-fit
counts, into measurements:

* :mod:`repro.obs.metrics` — process-wide registry of named counters, gauges
  and streaming histograms (p50/p95/p99 without raw-sample retention).  The
  storage layer folds its :class:`~repro.storage.IOStats` counters in as
  ``store.region_reads`` / ``store.full_scans`` / ``store.bytes_read``.
* :mod:`repro.obs.trace` — hierarchical wall-clock spans
  (``with span("tree.level", level=2): ...``).  Disabled by default: the
  null recorder returns a shared no-op span, so instrumented hot paths cost
  one call when tracing is off.
* :mod:`repro.obs.export` — human-readable span-tree / metrics tables for
  stderr, and JSON-lines records for files.
* :mod:`repro.obs.bench` — append-only journal of structured benchmark
  entries (``BENCH_*.json``), giving the repo a timing trajectory across PRs.
* :mod:`repro.obs.context` — :func:`observe`, the one-stop session used by
  ``python -m repro.experiments ... --trace --metrics-out``.

Nothing here imports the rest of :mod:`repro`; every other package may
depend on this one.
"""

from .bench import BenchJournal
from .context import ObsReport, observe
from .export import (
    append_jsonl,
    render_metrics_table,
    render_span_tree,
    span_to_dict,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .trace import Span, Tracer, get_tracer, span

__all__ = [
    "BenchJournal",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsReport",
    "Span",
    "Tracer",
    "append_jsonl",
    "get_registry",
    "get_tracer",
    "observe",
    "render_metrics_table",
    "render_span_tree",
    "span",
    "span_to_dict",
]
