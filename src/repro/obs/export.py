"""Exporters: human-readable span trees / metrics tables, and JSON lines.

The span-tree renderer aggregates sibling spans that share a name — a basic
search evaluating 50 regions produces one ``store.scan`` line, not 50 —
while keeping exact counts and total/mean wall-clock, so the output stays
readable at any fan-out.  The JSON-lines writer appends one self-contained
object per line, the format the bench trajectory (``BENCH_*.json``) uses.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterable, Sequence
from pathlib import Path

from .metrics import MetricsRegistry
from .trace import Span

__all__ = [
    "append_jsonl",
    "render_metrics_table",
    "render_span_tree",
    "span_from_dict",
    "span_to_dict",
]


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.1f}ms"
    return f"{s * 1e6:.0f}us"


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in attrs.items())
    return f" {{{inner}}}"


class _Group:
    """Siblings sharing a name, merged for rendering."""

    __slots__ = ("name", "count", "total", "attrs", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.attrs: dict = {}
        self.children: list[Span] = []


def _group_siblings(spans: Sequence[Span]) -> list[_Group]:
    groups: dict[str, _Group] = {}
    for s in spans:
        g = groups.get(s.name)
        if g is None:
            g = groups[s.name] = _Group(s.name)
            g.attrs = dict(s.attrs)
        else:
            # keep only attributes identical across the whole group
            g.attrs = {k: v for k, v in g.attrs.items() if s.attrs.get(k) == v}
        g.count += 1
        g.total += s.duration
        g.children.extend(s.children)
    return list(groups.values())


def render_span_tree(roots: Sequence[Span], indent: str = "  ") -> str:
    """A per-phase wall-clock tree, siblings aggregated by span name."""
    lines: list[str] = []

    def walk(spans: Sequence[Span], depth: int) -> None:
        for g in _group_siblings(spans):
            prefix = indent * depth
            if g.count == 1:
                lines.append(
                    f"{prefix}{g.name}  {_fmt_seconds(g.total)}{_fmt_attrs(g.attrs)}"
                )
            else:
                lines.append(
                    f"{prefix}{g.name}  x{g.count}  total {_fmt_seconds(g.total)}"
                    f"  avg {_fmt_seconds(g.total / g.count)}{_fmt_attrs(g.attrs)}"
                )
            walk(g.children, depth + 1)

    walk(roots, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def span_to_dict(span: Span) -> dict:
    """A JSON-serializable view of one span subtree."""
    return {
        "name": span.name,
        "duration_s": span.duration,
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
        "children": [span_to_dict(c) for c in span.children],
    }


def span_from_dict(data: dict) -> Span:
    """Rebuild a finished :class:`Span` subtree from :func:`span_to_dict`.

    The result carries no tracer (it is never entered again); it exists to
    re-parent worker span trees shipped across a process boundary, and to
    let :mod:`repro.obs.report` analyses run on live and loaded traces
    alike.
    """
    span = Span(str(data.get("name", "?")), None, dict(data.get("attrs") or {}))
    span.duration = float(data.get("duration_s", 0.0))
    span.children = [span_from_dict(c) for c in data.get("children") or []]
    return span


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _fmt_value(v: float) -> str:
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.6g}"
    return f"{int(v)}"


def render_metrics_table(
    metrics: MetricsRegistry | dict[str, float],
    title: str = "metrics",
) -> str:
    """A two-column name/value table, sorted by metric name."""
    values = metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
    if not values:
        return f"{title}: (empty)"
    width = max(len(name) for name in values)
    lines = [f"-- {title} --"]
    lines.extend(
        f"{name.ljust(width)}  {_fmt_value(value)}"
        for name, value in sorted(values.items())
    )
    return "\n".join(lines)


def append_jsonl(path: str | Path, records: dict | Iterable[dict]) -> None:
    """Append record(s) as JSON lines, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if isinstance(records, dict):
        records = [records]
    with path.open("a") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True) + "\n")


def timestamp() -> str:
    """UTC wall-clock timestamp for journal records."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
