"""One-stop observation session: time a block, capture spans and metric deltas.

::

    from repro.obs import observe

    with observe("fig7", trace=True) as report:
        run_fig7()
    print(report.render())                 # span tree + metrics table
    report.append_to("bench.jsonl")        # one structured JSON line

The session snapshots the global registry on entry and diffs on exit, so
counters accumulated by *other* work don't pollute the report; tracing state
is restored to whatever it was before the block.
"""

from __future__ import annotations

import time
from pathlib import Path

from . import catalog
from .export import append_jsonl, render_metrics_table, render_span_tree, span_to_dict
from .metrics import get_registry
from .profile import ResourceProfiler
from .report import render_critical_path, render_hot_spans
from .trace import Span, get_tracer

__all__ = ["ObsReport", "observe"]


class ObsReport:
    """What one :func:`observe` session saw."""

    def __init__(self, name: str):
        self.name = name
        self.elapsed_s = 0.0
        self.spans: list[Span] = []
        self.metrics: dict[str, float] = {}

    def render(self, top: int = 5) -> str:
        parts = [f"== {self.name}: {self.elapsed_s:.3f}s =="]
        if self.spans:
            parts.append(render_span_tree(self.spans))
            dicts = [span_to_dict(s) for s in self.spans]
            parts.append(render_critical_path(dicts))
            parts.append(render_hot_spans(dicts, top=top))
        if self.metrics:
            parts.append(render_metrics_table(self.metrics, title="metrics (delta)"))
        return "\n".join(parts)

    def to_record(self, include_spans: bool = True) -> dict:
        record = {
            "name": self.name,
            "elapsed_s": round(self.elapsed_s, 6),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }
        if include_spans and self.spans:
            record["spans"] = [span_to_dict(s) for s in self.spans]
        return record

    def append_to(self, path: str | Path, include_spans: bool = True) -> None:
        append_jsonl(path, self.to_record(include_spans=include_spans))

    def summary_line(self) -> str:
        """One-line bench summary: elapsed plus the headline counters."""
        keys = (
            (catalog.STORE_FULL_SCANS, "full_scans"),
            (catalog.STORE_REGION_READS, "region_reads"),
            (catalog.ML_LINEAR_FITS, "fits"),
        )
        stats = "  ".join(
            f"{label}={int(self.metrics[k])}" for k, label in keys if k in self.metrics
        )
        return f"{self.name}: {self.elapsed_s:.2f}s  {stats}".rstrip()


class observe:
    """Context manager producing an :class:`ObsReport` for the block.

    ``profile=True`` additionally installs a
    :class:`~repro.obs.profile.ResourceProfiler` for the block, annotating
    every span with peak RSS / GC / store-read-rate deltas (and implies
    ``trace=True`` — the profiler samples at span boundaries).

    ``lockcheck=True`` enables the runtime lock checker
    (:mod:`repro.analysis.runtime`) for the block: every tracked lock
    acquisition feeds the lock-order graph and violations raise
    immediately.  The prior checker (usually none) is restored on exit.
    """

    def __init__(
        self,
        name: str,
        trace: bool = False,
        profile: bool = False,
        lockcheck: bool = False,
    ):
        self.name = name
        self.trace = trace or profile
        self.profile = profile
        self.lockcheck = lockcheck
        self._registry = get_registry()
        self._tracer = get_tracer()
        self._was_enabled = False
        self._prior_profiler = None
        self._prior_checker = None
        self._before: dict[str, float] = {}
        self._t0 = 0.0
        self.report = ObsReport(name)

    def __enter__(self) -> ObsReport:
        self._was_enabled = self._tracer.enabled
        if self.trace:
            self._tracer.take_roots()  # leftovers belong to earlier sessions
            self._tracer.enable()
        if self.profile:
            self._prior_profiler = self._tracer.profiler
            self._tracer.set_profiler(ResourceProfiler())
        if self.lockcheck:
            # Imported lazily: repro.analysis.runtime counts through this
            # package's registry, so a module-level import would cycle.
            from repro.analysis import runtime as _lockrt

            self._prior_checker = _lockrt.get_lockchecker()
            _lockrt.enable_lockcheck(strict=True)
        self._before = self._registry.as_dict()
        self._t0 = time.perf_counter()
        return self.report

    def __exit__(self, *exc) -> bool:
        self.report.elapsed_s = time.perf_counter() - self._t0
        if self.lockcheck:
            from repro.analysis import runtime as _lockrt

            if self._prior_checker is None:
                _lockrt.disable_lockcheck()
            else:
                _lockrt.set_lockchecker(self._prior_checker)
        if self.profile:
            self._tracer.set_profiler(self._prior_profiler)
        if self.trace:
            self.report.spans = self._tracer.take_roots()
            if not self._was_enabled:
                self._tracer.disable()
        self.report.metrics = self._registry.diff(self._before)
        return False
