"""Journal analytics: parse ``BENCH_figures.json``, baseline it, gate on it.

The bench journal is an append-only trajectory — every bench run adds one
JSON line — but until now nothing *read* it.  This module turns the
trajectory into an enforced perf contract:

* :func:`load_journal` parses the file into schema'd
  :class:`JournalRecord` objects (tolerant of pre-run-id history: older
  records simply carry ``run_id=None``);
* :func:`group_by_name` / :func:`group_by_run` recover per-bench series
  and per-run groups from the flat file;
* :class:`Sentinel` computes a **noise-aware baseline** per bench over the
  trailing window and checks the newest record against it.

Tolerance math
--------------
For a history ``h`` of values the acceptance band is::

    median(h) +/- max( k * 1.4826 * MAD(h),  rel * |median(h)|,  abs )

MAD (median absolute deviation) scaled by 1.4826 estimates a standard
deviation robustly — one historic outlier cannot widen the band the way it
would inflate a stddev — and the relative/absolute floors keep the band
honest when history is so stable that MAD is ~0 (op counters are usually
*exactly* stable).  ``elapsed_s`` is gated one-sided (faster is never a
regression); op-count metrics (catalogued counters such as
``ml.linear.fits`` or ``store.full_scans``) are gated both ways, because a
silent drop means work stopped happening — exactly the failure the Lemma
1/2 accounting exists to catch.  Benches with fewer than ``min_history``
prior records are reported as skipped, not failed: a fresh bench has no
contract yet.

``python -m repro.obs sentinel`` wraps :class:`Sentinel` and exits nonzero
on any regression; CI runs it as a blocking job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ConfigError

from . import catalog

__all__ = [
    "Band",
    "Finding",
    "JournalRecord",
    "Sentinel",
    "SentinelReport",
    "group_by_name",
    "group_by_run",
    "load_journal",
    "noise_band",
]

_IDENTITY_KEYS = ("run_id", "git_sha", "hostname", "python", "workers")


@dataclass(frozen=True)
class JournalRecord:
    """One parsed journal line."""

    name: str
    elapsed_s: float
    timestamp: str | None = None
    run_id: str | None = None
    git_sha: str | None = None
    hostname: str | None = None
    python: str | None = None
    workers: int | None = None
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_line(cls, raw: dict) -> "JournalRecord":
        known = {"name", "elapsed_s", "timestamp", "metrics", *_IDENTITY_KEYS}
        metrics = {
            k: float(v)
            for k, v in (raw.get("metrics") or {}).items()
            if isinstance(v, (int, float))
        }
        workers = raw.get("workers")
        return cls(
            name=str(raw.get("name", "?")),
            elapsed_s=float(raw.get("elapsed_s", 0.0)),
            timestamp=raw.get("timestamp"),
            run_id=raw.get("run_id"),
            git_sha=raw.get("git_sha"),
            hostname=raw.get("hostname"),
            python=raw.get("python"),
            workers=int(workers) if workers is not None else None,
            metrics=metrics,
            extra={k: v for k, v in raw.items() if k not in known},
        )


def load_journal(path: str | Path) -> list[JournalRecord]:
    """Parse a ``BENCH_*.json`` trajectory, preserving file (= time) order."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no bench journal at {path}")
    records: list[JournalRecord] = []
    with path.open() as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{lineno}: not a JSON record ({exc})"
                ) from exc
            if not isinstance(raw, dict) or "name" not in raw:
                raise ConfigError(
                    f"{path}:{lineno}: journal records need a 'name'"
                )
            records.append(JournalRecord.from_line(raw))
    return records


def group_by_name(records: list[JournalRecord]) -> dict[str, list[JournalRecord]]:
    """Bench name -> its chronological series."""
    out: dict[str, list[JournalRecord]] = {}
    for record in records:
        out.setdefault(record.name, []).append(record)
    return out


def group_by_run(records: list[JournalRecord]) -> dict[str | None, list[JournalRecord]]:
    """Run id -> that run's records (``None`` collects pre-run-id history)."""
    out: dict[str | None, list[JournalRecord]] = {}
    for record in records:
        out.setdefault(record.run_id, []).append(record)
    return out


# ------------------------------------------------------------ tolerance math


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class Band:
    """An acceptance interval around a robust center."""

    lo: float
    hi: float
    center: float
    n: int

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def noise_band(
    values: list[float],
    mad_k: float = 4.0,
    rel_floor: float = 0.0,
    abs_floor: float = 0.0,
) -> Band:
    """``median +/- max(mad_k * 1.4826 * MAD, rel_floor * |median|, abs_floor)``."""
    if not values:
        raise ConfigError("noise_band needs at least one value")
    med = _median(values)
    mad = _median([abs(v - med) for v in values])
    half = max(mad_k * 1.4826 * mad, rel_floor * abs(med), abs_floor)
    return Band(lo=med - half, hi=med + half, center=med, n=len(values))


# ------------------------------------------------------------------ sentinel


@dataclass(frozen=True)
class Finding:
    """One sentinel verdict: a bench/metric pair against its band."""

    bench: str
    metric: str          # "elapsed_s" or an op-counter name
    value: float
    band: Band | None
    status: str          # "ok" | "regression" | "skipped"
    detail: str = ""

    def line(self) -> str:
        tag = {"ok": "ok        ", "regression": "REGRESSION",
               "skipped": "skipped   "}[self.status]
        return f"{tag} {self.bench} :: {self.metric}  {self.detail}"


@dataclass
class SentinelReport:
    """Everything one sentinel pass concluded."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "regression"]

    @property
    def checked(self) -> int:
        return sum(1 for f in self.findings if f.status != "skipped")

    @property
    def skipped(self) -> int:
        return sum(1 for f in self.findings if f.status == "skipped")

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self, verbose: bool = False) -> str:
        lines = [
            f.line()
            for f in self.findings
            if verbose or f.status == "regression"
        ]
        lines.append(
            f"sentinel: {self.checked} checks, "
            f"{len(self.regressions)} regressions, {self.skipped} skipped"
        )
        return "\n".join(lines)


class Sentinel:
    """Checks each bench's newest record against its trailing baseline.

    Parameters
    ----------
    window:
        How many prior records form the baseline (trailing, per bench).
    min_history:
        Baselines need at least this many prior records; thinner series
        are skipped — a new bench has no contract to enforce yet.
    mad_k / elapsed_rel / elapsed_abs:
        Elapsed-time band: ``median + max(mad_k*1.4826*MAD,
        elapsed_rel*median, elapsed_abs)`` as a one-sided upper bound.
    ops_rel / ops_abs:
        Op-counter band (two-sided); counters are near-deterministic, so
        the defaults are tight.
    """

    def __init__(
        self,
        window: int = 10,
        min_history: int = 3,
        mad_k: float = 4.0,
        elapsed_rel: float = 0.5,
        elapsed_abs: float = 0.25,
        ops_rel: float = 0.10,
        ops_abs: float = 2.0,
    ):
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        if min_history < 1:
            raise ConfigError(f"min_history must be >= 1, got {min_history}")
        self.window = window
        self.min_history = min_history
        self.mad_k = mad_k
        self.elapsed_rel = elapsed_rel
        self.elapsed_abs = elapsed_abs
        self.ops_rel = ops_rel
        self.ops_abs = ops_abs
        self._op_names = frozenset(catalog.COUNTERS)

    # ------------------------------------------------------------- checking

    def check(self, records: list[JournalRecord]) -> SentinelReport:
        """Gate the newest record of every bench series in ``records``."""
        report = SentinelReport()
        for bench, series in group_by_name(records).items():
            candidate = series[-1]
            history = series[:-1][-self.window:]
            if len(history) < self.min_history:
                report.findings.append(Finding(
                    bench=bench,
                    metric="elapsed_s",
                    value=candidate.elapsed_s,
                    band=None,
                    status="skipped",
                    detail=(
                        f"{len(history)} prior record(s); "
                        f"baseline needs {self.min_history}"
                    ),
                ))
                continue
            report.findings.append(self._check_elapsed(bench, candidate, history))
            report.findings.extend(self._check_ops(bench, candidate, history))
        return report

    def _check_elapsed(
        self,
        bench: str,
        candidate: JournalRecord,
        history: list[JournalRecord],
    ) -> Finding:
        band = noise_band(
            [r.elapsed_s for r in history],
            mad_k=self.mad_k,
            rel_floor=self.elapsed_rel,
            abs_floor=self.elapsed_abs,
        )
        value = candidate.elapsed_s
        if value > band.hi:
            status = "regression"
            detail = (
                f"{value:.3f}s > {band.hi:.3f}s allowed "
                f"(median {band.center:.3f}s over {band.n} runs)"
            )
        else:
            status = "ok"
            detail = (
                f"{value:.3f}s <= {band.hi:.3f}s "
                f"(median {band.center:.3f}s over {band.n} runs)"
            )
        return Finding(
            bench=bench, metric="elapsed_s", value=value,
            band=band, status=status, detail=detail,
        )

    def _check_ops(
        self,
        bench: str,
        candidate: JournalRecord,
        history: list[JournalRecord],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for metric in sorted(candidate.metrics):
            if metric not in self._op_names:
                continue  # histogram summaries, gauges: not op contracts
            past = [r.metrics[metric] for r in history if metric in r.metrics]
            if len(past) < self.min_history:
                continue
            band = noise_band(
                past,
                mad_k=self.mad_k,
                rel_floor=self.ops_rel,
                abs_floor=self.ops_abs,
            )
            value = candidate.metrics[metric]
            if band.contains(value):
                status, rel = "ok", "within"
            else:
                status, rel = "regression", "outside"
            findings.append(Finding(
                bench=bench, metric=metric, value=value, band=band,
                status=status,
                detail=(
                    f"{value:g} {rel} [{band.lo:g}, {band.hi:g}] "
                    f"(median {band.center:g} over {band.n} runs)"
                ),
            ))
        return findings
