"""Observability CLI: trace reports and the bench-regression sentinel.

Usage::

    python -m repro.obs report runs.jsonl              # span analytics
    python -m repro.obs report runs.jsonl --top 10 --name fig7

    python -m repro.obs sentinel                       # gate BENCH_figures.json
    python -m repro.obs sentinel --journal path.json --verbose
    python -m repro.obs sentinel --list                # show runs, no gating

``report`` loads a ``--metrics-out`` JSON-lines export and prints, per
record, the span tree with self/total time, the critical path, and the
top-k hot spans.

``sentinel`` loads a bench journal, baselines each bench over its trailing
history (median ± MAD bands, see :mod:`repro.obs.journal`), checks the
newest record, and exits 1 on any regression — the blocking CI contract
that keeps the trajectory honest.
"""

from __future__ import annotations

import argparse
import sys

from .journal import Sentinel, group_by_run, load_journal
from .report import load_records, render_record_report


def _cmd_report(args: argparse.Namespace) -> int:
    records = load_records(args.path)
    print(render_record_report(records, top=args.top, name=args.name))
    return 0


def _cmd_sentinel(args: argparse.Namespace) -> int:
    records = load_journal(args.journal)
    if args.list:
        for run_id, group in group_by_run(records).items():
            first = group[0]
            where = first.hostname or "?"
            sha = first.git_sha or "?"
            print(
                f"{run_id or '(pre-run-id)'}  {len(group)} record(s)  "
                f"git={sha}  host={where}  python={first.python or '?'}"
            )
        return 0
    sentinel = Sentinel(
        window=args.window,
        min_history=args.min_history,
        mad_k=args.mad_k,
        elapsed_rel=args.elapsed_rel,
        elapsed_abs=args.elapsed_abs,
        ops_rel=args.ops_rel,
        ops_abs=args.ops_abs,
    )
    report = sentinel.check(records)
    print(report.render(verbose=args.verbose))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace reports and the bench-regression sentinel.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="analyze a --metrics-out JSON-lines trace export"
    )
    report.add_argument("path", help="JSON-lines export to analyze")
    report.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="hot spans to list per record (default 5)",
    )
    report.add_argument(
        "--name", default=None, metavar="NAME",
        help="only report records with this name (e.g. fig7)",
    )
    report.set_defaults(func=_cmd_report)

    sentinel = sub.add_parser(
        "sentinel", help="gate the newest bench records against the trajectory"
    )
    sentinel.add_argument(
        "--journal", default="BENCH_figures.json", metavar="PATH",
        help="bench journal to check (default BENCH_figures.json)",
    )
    sentinel.add_argument(
        "--window", type=int, default=10, metavar="N",
        help="trailing records forming each baseline (default 10)",
    )
    sentinel.add_argument(
        "--min-history", type=int, default=3, metavar="N",
        help="prior records required before a bench is gated (default 3)",
    )
    sentinel.add_argument(
        "--mad-k", type=float, default=4.0, metavar="K",
        help="MAD multiplier in the tolerance band (default 4.0)",
    )
    sentinel.add_argument(
        "--elapsed-rel", type=float, default=0.5, metavar="F",
        help="relative slack floor on elapsed_s (default 0.5)",
    )
    sentinel.add_argument(
        "--elapsed-abs", type=float, default=0.25, metavar="S",
        help="absolute slack floor on elapsed_s, seconds (default 0.25)",
    )
    sentinel.add_argument(
        "--ops-rel", type=float, default=0.10, metavar="F",
        help="relative slack floor on op counters (default 0.10)",
    )
    sentinel.add_argument(
        "--ops-abs", type=float, default=2.0, metavar="N",
        help="absolute slack floor on op counters (default 2.0)",
    )
    sentinel.add_argument(
        "--verbose", action="store_true",
        help="print ok/skipped findings, not just regressions",
    )
    sentinel.add_argument(
        "--list", action="store_true",
        help="list the journal's runs (run_id, git sha, host) and exit",
    )
    sentinel.set_defaults(func=_cmd_sentinel)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away (| head, a closed pager): exit quietly instead
        # of tracebacking; re-point stdout at devnull so the interpreter's
        # shutdown flush doesn't raise again
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
