"""Append-only journal of structured benchmark entries (``BENCH_*.json``).

Each entry is one JSON line: what ran, how long it took, and the metric
deltas observed while it ran.  Benchmarks append to the same file across
PRs, so the repo accumulates a timing trajectory instead of a single
overwritten number.
"""

from __future__ import annotations

from pathlib import Path

from .export import append_jsonl, timestamp

__all__ = ["BenchJournal"]


class BenchJournal:
    """Writes bench entries to one JSON-lines file.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on the first record.  The
        conventional location is a ``BENCH_<suite>.json`` at the repo root.
    context:
        Constant key/values merged into every entry (e.g. python version).
    """

    def __init__(self, path: str | Path, context: dict | None = None):
        self.path = Path(path)
        self.context = dict(context or {})

    def record(
        self,
        name: str,
        elapsed_s: float,
        metrics: dict[str, float] | None = None,
        **extra,
    ) -> dict:
        """Append one entry; returns the record written."""
        record = {
            "name": name,
            "elapsed_s": round(float(elapsed_s), 6),
            "timestamp": timestamp(),
            **self.context,
            **extra,
        }
        if metrics:
            record["metrics"] = {k: metrics[k] for k in sorted(metrics)}
        append_jsonl(self.path, record)
        return record
