"""Append-only journal of structured benchmark entries (``BENCH_*.json``).

Each entry is one JSON line: what ran, how long it took, and the metric
deltas observed while it ran.  Benchmarks append to the same file across
PRs, so the repo accumulates a timing trajectory instead of a single
overwritten number.

Every record is stamped with the :mod:`repro.obs.runinfo` identity keys —
``run_id`` (stable per process), ``git_sha``, ``hostname``, ``python`` —
so :mod:`repro.obs.journal` can group the trajectory per run and the
sentinel can compare like with like.  Callers that fan out should include
``workers`` via ``context`` or a per-record extra (the obs package cannot
read :mod:`repro.exec` defaults itself — it is a leaf).
"""

from __future__ import annotations

from pathlib import Path

from .export import append_jsonl, timestamp
from .runinfo import run_context

__all__ = ["BenchJournal"]


class BenchJournal:
    """Writes bench entries to one JSON-lines file.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on the first record.  The
        conventional location is a ``BENCH_<suite>.json`` at the repo root.
    context:
        Constant key/values merged into every entry; these override the
        automatic run-identity stamp on key collision (a harness may pin
        its own ``python`` or ``workers``).
    stamp_run:
        Stamp ``run_id``/``git_sha``/``hostname``/``python`` onto every
        record (default).  Disable only for fixtures that need bytes-stable
        output.
    """

    def __init__(
        self,
        path: str | Path,
        context: dict | None = None,
        stamp_run: bool = True,
    ):
        self.path = Path(path)
        self.stamp_run = stamp_run
        self.context = dict(context or {})

    def record(
        self,
        name: str,
        elapsed_s: float,
        metrics: dict[str, float] | None = None,
        **extra,
    ) -> dict:
        """Append one entry; returns the record written."""
        record = {
            "name": name,
            "elapsed_s": round(float(elapsed_s), 6),
            "timestamp": timestamp(),
            **(run_context() if self.stamp_run else {}),
            **self.context,
            **extra,
        }
        if metrics:
            record["metrics"] = {k: metrics[k] for k in sorted(metrics)}
        append_jsonl(self.path, record)
        return record
