"""Run identity: who produced a journal record, and in which process run.

``BENCH_figures.json`` accumulates records across PRs, machines, and
interpreter versions; without a run identity those lines are an undifferen-
tiated soup.  Every :class:`~repro.obs.bench.BenchJournal` record is stamped
with this module's context:

* ``run_id`` — one random 12-hex token per *process*, so all records a
  single bench session writes group together;
* ``git_sha`` — the checked-out commit (short sha), tying a record to the
  code that produced it; ``None`` outside a git work tree;
* ``hostname`` / ``python`` — where and on what the record was measured.

``workers`` deliberately does **not** live here: :mod:`repro.obs` is a leaf
package and may not import :mod:`repro.exec`, so callers that fan out pass
their worker count explicitly (``run_context(workers=...)`` or a per-record
extra).
"""

from __future__ import annotations

import platform
import subprocess
import uuid

__all__ = ["current_run_id", "git_sha", "run_context"]

_RUN_ID: str | None = None
_GIT_SHA: str | None | bool = False  # False = not probed yet


def current_run_id() -> str:
    """A 12-hex token minted once per process (stable across calls)."""
    global _RUN_ID
    if _RUN_ID is None:
        _RUN_ID = uuid.uuid4().hex[:12]
    return _RUN_ID


def git_sha() -> str | None:
    """The short sha of HEAD, or ``None`` when git/worktree is unavailable."""
    global _GIT_SHA
    if _GIT_SHA is False:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            )
            _GIT_SHA = out.stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = None
    return _GIT_SHA


def run_context(workers: int | None = None) -> dict:
    """The identity keys stamped onto every journal record."""
    context = {
        "run_id": current_run_id(),
        "git_sha": git_sha(),
        "hostname": platform.node(),
        "python": platform.python_version(),
    }
    if workers is not None:
        context["workers"] = int(workers)
    return context
