"""A process-wide metrics registry: counters, gauges, streaming histograms.

Instruments are created on demand and live for the life of the process;
:meth:`MetricsRegistry.reset` zeroes values *in place* so call sites may bind
an instrument once at import time (the hot-path pattern used by
:class:`~repro.ml.LinearRegression` and :class:`~repro.storage.IOStats`).

Histograms are streaming: observations land in geometric buckets (8 per
decade), so quantiles are available at any moment without retaining raw
samples.  Interpolation error is bounded by the bucket width (~15%), which
is plenty for p50/p95/p99 latency reporting.

Everything is single-threaded by design, like the rest of the
reproduction; increments are plain ``+=`` with no locking.  Parallel
executors (see :mod:`repro.exec`) keep counters truthful by computing
counter deltas inside each worker process (:meth:`counter_values`) and
merging them back into the parent (:meth:`merge_counter_deltas`).
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


# Geometric bucket grid shared by every histogram: 8 buckets per decade over
# [1e-9, 1e9) — fine enough for sub-microsecond spans and hour-long runs.
_BUCKETS_PER_DECADE = 8
_MIN_EXP = -9
_MAX_EXP = 9
_N_BUCKETS = (_MAX_EXP - _MIN_EXP) * _BUCKETS_PER_DECADE


def _bucket_index(value: float) -> int:
    """Bucket holding ``value``; 0 also holds everything below 1e-9."""
    if value < 10.0 ** _MIN_EXP:
        return 0
    idx = int((math.log10(value) - _MIN_EXP) * _BUCKETS_PER_DECADE)
    return min(max(idx, 0), _N_BUCKETS - 1)


def _bucket_upper(idx: int) -> float:
    return 10.0 ** (_MIN_EXP + (idx + 1) / _BUCKETS_PER_DECADE)


class Histogram:
    """Streaming histogram over positive values (negatives clamp to 0).

    Tracks exact count/sum/min/max plus geometric bucket counts, from which
    :meth:`quantile` interpolates without keeping samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = max(float(value), 0.0)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = _bucket_index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                # clamp the bucket's upper edge to the true observed range
                return min(max(_bucket_upper(idx), self.min), self.max)
        return self.max

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets.clear()

    # ------------------------------------------------------- state transfer
    #
    # Forked workers inherit the parent's histogram contents and keep
    # observing; the parent recovers the worker's *new* observations by
    # diffing states and merging the delta back (see repro.exec).  States
    # are plain dicts so they cross the pool pipe without custom pickling.

    def state(self) -> dict:
        """Mergeable snapshot: count/total/min/max plus bucket counts."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self._buckets),
        }

    @staticmethod
    def diff_states(before: dict | None, after: dict) -> dict | None:
        """Observations recorded between two :meth:`state` snapshots.

        Returns ``None`` when nothing was observed in the window.  ``min`` /
        ``max`` only appear in the delta when the window actually extended
        the range — an inherited extreme is already present wherever the
        delta is merged.
        """
        if before is None:
            before = {"count": 0, "total": 0.0,
                      "min": math.inf, "max": -math.inf, "buckets": {}}
        count = after["count"] - before["count"]
        if count <= 0:
            return None
        prior = before["buckets"]
        buckets = {
            idx: n - prior.get(idx, 0)
            for idx, n in after["buckets"].items()
            if n != prior.get(idx, 0)
        }
        delta = {
            "count": count,
            "total": after["total"] - before["total"],
            "buckets": buckets,
        }
        if after["min"] < before["min"]:
            delta["min"] = after["min"]
        if after["max"] > before["max"]:
            delta["max"] = after["max"]
        return delta

    def merge_state(self, delta: dict) -> None:
        """Fold a :meth:`diff_states` delta into this histogram."""
        self.count += delta["count"]
        self.total += delta["total"]
        if "min" in delta and delta["min"] < self.min:
            self.min = delta["min"]
        if "max" in delta and delta["max"] > self.max:
            self.max = delta["max"]
        for idx, n in delta["buckets"].items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named instruments, created on first use and stable thereafter."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ---------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name)
            return h

    def _check_free(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ConfigError(
                    f"metric {name!r} already registered with a different type"
                )

    # ---------------------------------------------------------- conveniences

    def inc(self, name: str, n: int | float = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -------------------------------------------------------------- snapshot

    def counter_values(self) -> dict[str, float]:
        """Counter name -> value only (the mergeable instruments)."""
        return {name: c.value for name, c in self._counters.items()}

    def merge_counter_deltas(self, deltas: dict[str, float]) -> None:
        """Fold worker-side counter increments into this registry.

        Counters are sums of work done, so worker deltas add directly.
        Histograms merge through :meth:`histogram_states` /
        :meth:`merge_histogram_deltas`; gauges are point-in-time samples
        and never merge across processes.
        """
        for name, delta in deltas.items():
            if delta:
                self.counter(name).inc(delta)

    def histogram_states(self) -> dict[str, dict]:
        """Histogram name -> mergeable :meth:`Histogram.state` snapshot."""
        return {name: h.state() for name, h in self._histograms.items()}

    def diff_histogram_states(self, before: dict[str, dict]) -> dict[str, dict]:
        """Per-histogram observation deltas versus a states snapshot.

        Histograms with no new observations are dropped, so the result is
        exactly the payload a worker ships back across the pool pipe.
        """
        out: dict[str, dict] = {}
        for name, h in self._histograms.items():
            delta = Histogram.diff_states(before.get(name), h.state())
            if delta is not None:
                out[name] = delta
        return out

    def merge_histogram_deltas(self, deltas: dict[str, dict]) -> None:
        """Fold worker-side histogram observations into this registry.

        Bucket counts, counts, and totals add; min/max extend the range only
        when the worker actually observed a new extreme.  After the merge,
        ``span.*.s`` percentiles reflect worker spans exactly as if they had
        been observed in this process.
        """
        for name, delta in deltas.items():
            self.histogram(name).merge_state(delta)

    def as_dict(self) -> dict[str, float]:
        """Flat name -> value view (histograms expand to summary stats)."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            if h.count == 0:
                continue
            out[f"{name}.count"] = h.count
            out[f"{name}.sum"] = h.total
            out[f"{name}.p50"] = h.quantile(0.50)
            out[f"{name}.p95"] = h.quantile(0.95)
            out[f"{name}.p99"] = h.quantile(0.99)
        return out

    def diff(self, before: dict[str, float]) -> dict[str, float]:
        """Changed-value view versus an earlier :meth:`as_dict` snapshot.

        Counters report deltas; gauges and histogram summaries report their
        current value.  Unchanged entries are dropped.
        """
        now = self.as_dict()
        out: dict[str, float] = {}
        for name, value in now.items():
            prev = before.get(name, 0.0)
            if name in self._counters:
                if value != prev:
                    out[name] = value - prev
            elif value != prev:
                out[name] = value
        return out

    def reset(self) -> None:
        """Zero every instrument in place (bound references stay valid)."""
        for kind in (self._counters, self._gauges, self._histograms):
            for instrument in kind.values():
                instrument.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module binds to."""
    return _REGISTRY
