"""Root exception types shared by every ``repro`` package.

The repo's exception discipline (enforced statically by rule RPR006 in
:mod:`repro.analysis`) is that public ``repro.*`` APIs raise ``repro``
exception types, never bare builtins — a caller that writes
``except ReproError`` is guaranteed to see every failure the reproduction
itself can produce, while genuine bugs (``AttributeError``, ...) still
propagate untouched.

Each package keeps its own hierarchy (``StorageError``, ``ModelError``,
``DimensionError``, ``TableError``, ``BellwetherError``); all of them root
here.  :class:`ConfigError` additionally subclasses :class:`ValueError`, the
same dual-inheritance idiom as :class:`repro.table.ColumnNotFoundError`
(which is also a :class:`KeyError`), so pre-existing callers that catch the
builtin keep working; :class:`VerificationError` likewise doubles as
:class:`AssertionError` for the ``verify.assert_same_*`` helpers.
"""

__all__ = ["ConfigError", "ReproError", "VerificationError"]


class ReproError(Exception):
    """Root of every exception type raised by ``repro`` code."""


class ConfigError(ReproError, ValueError):
    """An invalid argument or configuration value (also a ``ValueError``)."""


class VerificationError(ReproError, AssertionError):
    """Two execution paths disagreed where equivalence is promised.

    Also an ``AssertionError`` so the ``assert_same_*`` diff helpers remain
    drop-in replacements for inline asserts in tests.
    """
