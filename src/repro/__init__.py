"""Reproduction of *Bellwether Analysis: Predicting Global Aggregates from
Local Regions* (Chen, Ramakrishnan, Shavlik, Tamma - VLDB 2006).

Quick tour
----------
>>> from repro.datasets import make_mailorder
>>> from repro.core import BasicBellwetherSearch, build_store
>>> ds = make_mailorder(n_items=100)
>>> store, costs, coverage = build_store(ds.task)
>>> result = BasicBellwetherSearch(ds.task, store, costs=costs).run(budget=60.0)
>>> result.bellwether.region       # doctest: +SKIP
Region([1-7, MD])

Packages
--------
* :mod:`repro.table` - columnar relational engine (joins, group-by, CUBE,
  iceberg cubes, star schemas).
* :mod:`repro.dimensions` - hierarchies, interval dimensions, regions,
  costs, item-hierarchy lattices.
* :mod:`repro.ml` - WLS/OLS linear regression on sufficient statistics
  (Theorem 1), error estimators with confidence intervals, regression trees.
* :mod:`repro.storage` - in-memory / disk-resident training-data stores with
  I/O accounting.
* :mod:`repro.core` - the paper's contribution: basic bellwether search,
  bellwether trees, bellwether cubes, item-centric prediction.
* :mod:`repro.datasets` - synthetic substitutes for the paper's datasets.
* :mod:`repro.experiments` - drivers regenerating every evaluation figure.
* :mod:`repro.analysis` - AST-based invariant linter for this repo's own
  contracts (``python -m repro.analysis``).

Every exception raised by ``repro`` code roots at :class:`ReproError`
(see :mod:`repro.exceptions`; enforced by lint rule RPR006).
"""

from .exceptions import ConfigError, ReproError, VerificationError

from .core import (
    BasicBellwetherSearch,
    BellwetherCubeBuilder,
    BellwetherTask,
    BellwetherTreeBuilder,
    Criterion,
    DirectTask,
    build_store,
)

__version__ = "1.0.0"

__all__ = [
    "BasicBellwetherSearch",
    "BellwetherCubeBuilder",
    "BellwetherTask",
    "BellwetherTreeBuilder",
    "ConfigError",
    "Criterion",
    "DirectTask",
    "ReproError",
    "VerificationError",
    "__version__",
    "build_store",
]
