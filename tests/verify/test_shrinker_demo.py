"""The acceptance demo: a planted fault is caught, shrunk, and replayable.

A deliberately injected bug — merge-mode refresh skipping one suffstats
retraction — must be flagged by the ``cube-refresh`` oracle class, shrunk
to the 3-item/2-month floor, and serialized as an artifact that reproduces
the failure (with the fault planted) and passes clean (without it).
"""

import json

from repro.verify import (
    DeltaOp,
    Workload,
    get_class,
    inject,
    replay_artifact,
    run_class,
    shrink,
    write_artifact,
)

DEMO = Workload(
    name="demo",
    seed=3,
    kind="mailorder",
    n_items=12,
    n_months=3,
    base_month=2,
    deltas=(DeltaOp("retract_reappend", region_rank=0, n_victims=2),),
)
CLS = get_class("cube-refresh")


def test_workload_is_green_without_the_fault():
    result = run_class(CLS, DEMO)
    assert result.ok, "\n".join(str(m) for m in result.mismatches)


def test_skipped_retraction_is_caught_shrunk_and_replayable(tmp_path):
    with inject("skip-retraction"):
        result = run_class(CLS, DEMO)
        assert not result.ok
        # The discrete stack audit flags it: example counts disagree.
        assert any(".n:" in str(m) for m in result.mismatches)

        shrunk = shrink(DEMO, CLS)
        assert shrunk.n_items <= 3
        assert shrunk.n_months <= 2

        path = write_artifact(
            tmp_path,
            shrunk,
            CLS.name,
            run_class(CLS, shrunk).mismatches,
            note="demo: skip-retraction fault",
        )
        payload = json.loads(path.read_text())
        assert payload["oracle_class"] == CLS.name
        assert payload["mismatches"]

        # Replaying with the fault still planted reproduces the failure...
        assert not replay_artifact(path).ok

    # ...and the very same artifact is green once the fault is removed.
    assert replay_artifact(path).ok
