"""The fig7/fig9 experiment configurations as fixed conformance workloads."""

import pytest

from repro.verify import fixed_workloads, get_class, run_class


def test_fixed_workloads_cover_both_datasets():
    fixed = fixed_workloads()
    assert {w.kind for w in fixed.values()} == {"mailorder", "bookstore"}
    assert all(w.deltas for w in fixed.values())


@pytest.mark.parametrize(
    ("name", "class_name"),
    [
        ("fig7", "search-refresh"),
        ("fig7", "exec-workers"),
        ("fig9", "cube-refresh"),
        ("fig9", "store-delta"),
    ],
)
def test_fixed_workload_is_green(name, class_name):
    workload = fixed_workloads()[name]
    result = run_class(get_class(class_name), workload)
    assert result.ok, "\n".join(str(m) for m in result.mismatches)
