"""Nightly-scale fuzz: the full oracle registry over random workloads.

The tier-1 run replays the pinned corpus; this is the in-tree face of
the conformance-nightly job (``python -m repro.verify --rounds 50``) at
a pytest-friendly round count.  Marked ``slow``: run with ``-m slow``.
"""

import pytest

from repro.verify import registry
from repro.verify.runner import run_rounds

ROUNDS = 6


@pytest.mark.slow
def test_fuzz_rounds_all_oracles_green(tmp_path):
    # Shrunk artifacts for any failure land in tmp_path (inspect on red),
    # never in the committed corpus.
    failures = run_rounds(
        seed=20260808, rounds=ROUNDS, out=tmp_path, report=lambda *__: None
    )
    assert failures == 0, (
        f"{failures} failing (class, workload) pair(s); shrunk artifacts "
        f"in {tmp_path}"
    )
    # The registry the fuzz iterated includes the approximate-tier oracle.
    assert "aqp-tolerance" in registry()
