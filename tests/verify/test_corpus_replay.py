"""Deterministically replay the committed conformance corpus.

Every artifact under ``tests/verify/corpus/`` pins one (workload, oracle
class) pair that must stay green; ``python -m repro.verify --replay`` runs
the same check from the command line.
"""

import json
from pathlib import Path

import pytest

from repro.verify import Workload, registry, replay_artifact

CORPUS = Path(__file__).parent / "corpus"
ARTIFACTS = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert ARTIFACTS, f"no committed artifacts under {CORPUS}"


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_artifact_replays_green(path):
    result = replay_artifact(path)
    assert result.ok, "\n".join(str(m) for m in result.mismatches)


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_artifact_is_well_formed(path):
    payload = json.loads(path.read_text())
    assert payload["schema"] == 1
    assert payload["oracle_class"] in registry()
    workload = Workload.from_dict(payload["workload"])
    # The artifact round-trips: replaying serializes to the same workload.
    assert Workload.from_dict(workload.to_dict()) == workload
