"""Coverage for the degenerate paths the fuzzer rarely lands on exactly:

* singular design matrices going through the stacked solver's pinv
  fallback (bit-identical to the per-problem fallback),
* empty feasible-region sets in :class:`BasicBellwetherSearch`,
* :class:`StaleCacheError` recovery — a maintainer warm-starting from a
  cache written at an older store version must rebuild, not serve it.
"""

import numpy as np
import pytest

from repro.core import (
    AggregateTargetQuery,
    BasicBellwetherSearch,
    BellwetherCubeBuilder,
    BellwetherTask,
    Criterion,
    FactAggregate,
    build_store,
)
from repro.dimensions import (
    HierarchicalDimension,
    IntervalDimension,
    ItemHierarchies,
    ProductCostModel,
    RegionSpace,
)
from repro.incremental import StaleCacheError, SuffStatsCache
from repro.ml import LinearSuffStats, TrainingSetEstimator, add_intercept
from repro.ml.suffstats import StackedSuffStats
from repro.storage import BlockDelta, StoreDelta
from repro.table import Database, Table
from repro.verify import (
    EXACT,
    assert_same_cube,
    assert_same_stacks,
    counters_snapshot,
)

N_ITEMS = 16
N_WEEKS = 3
STATES = ("WI", "IL", "NY", "MD")


@pytest.fixture(scope="module")
def singular_task() -> BellwetherTask:
    """A task whose item feature ``rd`` is constant zero, so every design
    matrix carries a zero column next to the intercept — singular X'WX."""
    rng = np.random.default_rng(17)
    n = 600
    fact = Table(
        {
            "item": rng.integers(1, N_ITEMS + 1, n),
            "week": rng.integers(1, N_WEEKS + 1, n),
            "state": rng.choice(STATES, n).astype(object),
            "profit": rng.lognormal(2.0, 0.6, n),
        }
    )
    time = IntervalDimension("week", N_WEEKS, unit="week")
    loc = HierarchicalDimension.from_spec(
        "state",
        {"MW": ["WI", "IL"], "NE": ["NY", "MD"]},
        level_names=("All", "Division", "State"),
    )
    space = RegionSpace([time, loc])
    items = Table(
        {
            "item": np.arange(1, N_ITEMS + 1),
            "category": rng.choice(["a", "b"], N_ITEMS).astype(object),
            "rd": np.zeros(N_ITEMS),
        }
    )
    return BellwetherTask(
        Database(fact, []),
        space,
        items,
        "item",
        target=AggregateTargetQuery("sum", "profit", "item"),
        regional_features=[FactAggregate("sum", "profit", "reg_profit")],
        item_feature_attrs=("category", "rd"),
        cost_model=ProductCostModel(
            space, {s: 1.0 for s in STATES}
        ),
        criterion=Criterion(min_coverage=0.2),
        error_estimator=TrainingSetEstimator(),
    )


@pytest.fixture(scope="module")
def singular_hierarchies() -> ItemHierarchies:
    return ItemHierarchies(
        [
            HierarchicalDimension.from_spec(
                "category", ["a", "b"], level_names=("Any", "Category")
            )
        ]
    )


class TestSingularDesigns:
    def test_stacked_pinv_matches_per_problem_pinv(self):
        """The batched solver's singular fallback is the scalar fallback."""
        rng = np.random.default_rng(23)
        x = add_intercept(rng.normal(size=(12, 2)))
        x[:, 2] = x[:, 1]  # duplicated column: rank-deficient design
        y = rng.normal(size=12)
        singular = LinearSuffStats.from_data(x, y)
        regular = LinearSuffStats.from_data(
            add_intercept(rng.normal(size=(12, 2))), rng.normal(size=12)
        )
        assert np.linalg.matrix_rank(singular.xtwx) < singular.p
        stack = StackedSuffStats.from_stats([singular, regular])
        batched = stack.solve()
        assert np.array_equal(batched[0], singular.solve())
        assert np.array_equal(batched[1], regular.solve())
        assert np.array_equal(stack.sse(), np.array(
            [singular.sse(), regular.sse()]
        ))

    def test_singular_cube_batched_equals_serial(
        self, singular_task, singular_hierarchies
    ):
        """A cube full of singular designs: optimized == serial, bit for bit."""
        store, __, __ = build_store(singular_task)
        builder = BellwetherCubeBuilder(
            singular_task,
            store,
            singular_hierarchies,
            min_subset_size=2,
            min_examples=2,
        )
        before = counters_snapshot()
        serial = builder.build("optimized_serial")
        batched = builder.build("optimized")
        solved = counters_snapshot()["ml.linear.batched_problems"] - before.get(
            "ml.linear.batched_problems", 0
        )
        assert solved > 0
        assert any(
            batched.entry(s).error is not None for s in batched.subsets
        )
        assert_same_cube(serial, batched, EXACT)


class TestEmptyFeasibleSets:
    def test_impossible_budget_finds_nothing(self, singular_task):
        store, costs, coverage = build_store(singular_task)
        search = BasicBellwetherSearch(
            singular_task, store, costs=costs, coverage=coverage
        )
        result = search.run(budget=0.0)
        assert not result.found
        assert result.bellwether is None
        assert result.feasible == ()
        assert np.isnan(result.average_error())

    def test_feasibility_returns_at_a_workable_budget(self, singular_task):
        store, costs, coverage = build_store(singular_task)
        search = BasicBellwetherSearch(
            singular_task, store, costs=costs, coverage=coverage
        )
        assert search.run(budget=max(costs.values())).found


class TestStaleCacheRecovery:
    def test_stale_cache_raises(self, singular_task, singular_hierarchies, tmp_path):
        store, __, __ = build_store(singular_task)
        builder = BellwetherCubeBuilder(
            singular_task,
            store,
            singular_hierarchies,
            min_subset_size=2,
            min_examples=2,
        )
        maintainer = builder.incremental(cache_dir=tmp_path)
        maintainer.refresh()
        cache = SuffStatsCache(tmp_path)
        with pytest.raises(StaleCacheError):
            cache.load(store.version + 1, maintainer._n_cells, maintainer._p)

    def test_recovery_patches_instead_of_serving_stale(
        self, singular_task, singular_hierarchies, tmp_path
    ):
        """After a store delta, a fresh maintainer must never serve the
        on-disk snapshot as-is: it adopts it as a warm start, patches the
        dirty cells forward through the changelog (cache hit, **no full
        scan**), and agrees with a scratch build bit for bit."""
        store, __, __ = build_store(singular_task)

        def make_builder():
            return BellwetherCubeBuilder(
                singular_task,
                store,
                singular_hierarchies,
                min_subset_size=2,
                min_examples=2,
            )

        make_builder().incremental(cache_dir=tmp_path).refresh()

        region = next(iter(store.regions()))
        victim = store.read(region).item_ids[:1]
        store.apply_delta(StoreDelta({region: BlockDelta(retract_ids=victim)}))

        before = counters_snapshot()
        scans0 = store.stats.full_scans
        cold = make_builder().incremental(cache_dir=tmp_path)
        refreshed = cold.refresh()
        after = counters_snapshot()
        assert after["incr.cache_hits"] - before.get("incr.cache_hits", 0) == 1
        assert after.get("incr.cache_misses", 0) == before.get("incr.cache_misses", 0)
        assert store.stats.full_scans == scans0

        scratch_builder = make_builder()
        assert_same_cube(scratch_builder.build("optimized"), refreshed, EXACT)

        from repro.verify import scratch_stacks

        assert_same_stacks(
            scratch_stacks(scratch_builder), cold._stacks, EXACT
        )
