"""The aqp-tolerance oracle: approx answers within tolerance of exact.

Two pinned workloads (the aqp-smoke CI pair) drive the full lifecycle:
exact workload -> train -> approx replay (tolerance conformance, feasible
set equality, ε-optimal winners, bit-equal artifacts) -> novel-subset
fallback -> mid-flight delta (fallback-then-retrain).
"""

import pytest

from repro.verify import Workload, get_class, registry, run_class
from repro.verify.workload import DeltaOp

WORKLOADS = [
    Workload(
        name="aqp-mailorder",
        seed=7,
        kind="mailorder",
        n_items=16,
        n_months=4,
        base_month=3,
        deltas=(DeltaOp("retract_reappend", region_rank=0, n_victims=2),),
        budgets=(10.0, 40.0),
        min_subset_size=2,
        min_examples=3,
    ),
    Workload(
        name="aqp-bookstore",
        seed=23,
        kind="bookstore",
        n_items=12,
        n_months=3,
        base_month=2,
        deltas=(DeltaOp("retract", region_rank=1, n_victims=1),),
        budgets=(5.0, 30.0, 80.0),
        min_subset_size=2,
        min_examples=3,
    ),
]


def test_aqp_tolerance_is_registered_for_corpus_and_fuzz():
    # The corpus runner and the nightly fuzz iterate the full registry, so
    # registration alone wires the oracle into both.
    assert "aqp-tolerance" in registry()


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_aqp_tolerance_oracle_is_green(workload):
    result = run_class(get_class("aqp-tolerance"), workload)
    assert result.ok, "\n".join(str(m) for m in result.mismatches)
