"""Concurrent-client correctness: 32 threads, bit-identical to serial.

A mixed query stream is answered once serially (which also warms every
profile), then replayed by 32 concurrent clients.  Every concurrent
response must equal the serial payload exactly — same winner, same float
bits, same feasible ordering — i.e. the RW-locked shared state never
bleeds a partially-updated answer.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.incremental import month_append_delta, month_split_store
from repro.serve import ServeClient, ServeHTTPError, ServerState, serve_in_thread

from .conftest import N_MONTHS, SUBSET

N_THREADS = 32
SUBSET2 = list(range(5, 19))

STREAM = (
    ("bellwether", 30.0, None),
    ("bellwether", 30.0, SUBSET),
    ("bellwether", 70.0, SUBSET),
    ("bellwether", 70.0, SUBSET2),
    ("predict", 90.0, SUBSET),
    ("predict", 90.0, SUBSET2),
    ("regions", None, None),
    ("model", None, None),
)


def _issue(client, query):
    kind, budget, items = query
    if kind == "bellwether":
        return client.bellwether(budget=budget, items=items)
    if kind == "predict":
        return client.predict(items=items, budget=budget)
    if kind == "regions":
        return client.regions()
    return client.model()


def test_32_concurrent_clients_match_serial_bits(served, lockcheck):
    with ServeClient(served.host, served.port) as probe:
        expected = [_issue(probe, q) for q in STREAM]

    def worker(index: int) -> list:
        with ServeClient(served.host, served.port) as client:
            # Stagger the walk so different threads hit different
            # endpoints at the same instant.
            n = len(STREAM)
            return [_issue(client, STREAM[(index + k) % n]) for k in range(n)]

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        all_answers = list(pool.map(worker, range(N_THREADS)))

    for index, answers in enumerate(all_answers):
        n = len(STREAM)
        for k, got in enumerate(answers):
            want = expected[(index + k) % n]
            assert got == want, f"thread {index} query {(index + k) % n}"


@pytest.mark.slow
def test_lockcheck_hammer_under_delta_stream(dataset, tmp_path, lockcheck):
    """Nightly race detector: 32 readers race writers under the checker.

    A mixed endpoint storm runs while the main thread lands month-append
    deltas (each adoption takes the write lock, the caches' IO locks and
    the instrument lock).  The strict checker raises out of any handler
    on an inversion / re-acquire / failed assert, so the pass criterion
    is simply: every request answers and the checker recorded zero
    violations across the full lock-acquisition graph it observed.
    """
    base_month = 3
    gen, regions, store = month_split_store(dataset.task, base_month)
    state = ServerState(
        dataset.task,
        store,
        dataset.hierarchies,
        tables_dir=tmp_path / "tables",
        dataset_name="mailorder",
        min_subset_size=3,
    )
    stop = threading.Event()
    failures: list[str] = []
    record = threading.Lock()

    def storm(handle, index):
        with ServeClient(handle.host, handle.port) as client:
            k = index
            while not stop.is_set():
                query = STREAM[k % len(STREAM)]
                k += 1
                try:
                    _issue(client, query)
                except ServeHTTPError as exc:
                    # Infeasible-at-this-version is a legal outcome of a
                    # racing delta; anything else (especially the 500 a
                    # LockCheckError would surface as) fails the hammer.
                    if exc.status != 409:
                        with record:
                            failures.append(
                                f"thread {index}: HTTP {exc.status} "
                                f"{exc.payload}"
                            )

    with serve_in_thread(state) as handle:
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            futures = [
                pool.submit(storm, handle, i) for i in range(N_THREADS)
            ]
            for month in range(base_month + 1, N_MONTHS + 1):
                time.sleep(0.5)
                state.apply_delta(month_append_delta(gen, regions, month))
            time.sleep(0.5)
            stop.set()
            for future in futures:
                future.result(timeout=120)

    assert failures == []
    snapshot = lockcheck.snapshot()
    assert snapshot["violations"] == []
    observed = {(e["from"], e["to"]) for e in snapshot["edges"]}
    # The serve stack's one sanctioned nesting must have been exercised.
    assert ("serve.state.rw", "serve.instrument") in observed
