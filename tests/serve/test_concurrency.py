"""Concurrent-client correctness: 32 threads, bit-identical to serial.

A mixed query stream is answered once serially (which also warms every
profile), then replayed by 32 concurrent clients.  Every concurrent
response must equal the serial payload exactly — same winner, same float
bits, same feasible ordering — i.e. the RW-locked shared state never
bleeds a partially-updated answer.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.serve import ServeClient

from .conftest import SUBSET

N_THREADS = 32
SUBSET2 = list(range(5, 19))

STREAM = (
    ("bellwether", 30.0, None),
    ("bellwether", 30.0, SUBSET),
    ("bellwether", 70.0, SUBSET),
    ("bellwether", 70.0, SUBSET2),
    ("predict", 90.0, SUBSET),
    ("predict", 90.0, SUBSET2),
    ("regions", None, None),
    ("model", None, None),
)


def _issue(client, query):
    kind, budget, items = query
    if kind == "bellwether":
        return client.bellwether(budget=budget, items=items)
    if kind == "predict":
        return client.predict(items=items, budget=budget)
    if kind == "regions":
        return client.regions()
    return client.model()


def test_32_concurrent_clients_match_serial_bits(served):
    with ServeClient(served.host, served.port) as probe:
        expected = [_issue(probe, q) for q in STREAM]

    def worker(index: int) -> list:
        with ServeClient(served.host, served.port) as client:
            # Stagger the walk so different threads hit different
            # endpoints at the same instant.
            n = len(STREAM)
            return [_issue(client, STREAM[(index + k) % n]) for k in range(n)]

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        all_answers = list(pool.map(worker, range(N_THREADS)))

    for index, answers in enumerate(all_answers):
        n = len(STREAM)
        for k, got in enumerate(answers):
            want = expected[(index + k) % n]
            assert got == want, f"thread {index} query {(index + k) % n}"
